//! Prints the coalescing/L2 report for the paper's Figure 9 GEMM shapes.
//!
//! ```sh
//! cargo run -p echo-cachesim --example coalescing_report --release
//! ```

fn main() {
    use echo_cachesim::*;
    for (name, b, h, o) in [
        ("LSTM", 64usize, 512usize, 2048usize),
        ("GRU", 64, 1024, 3072),
    ] {
        let rm = simulate_gemm(
            &TiledGemmSpec::fc_row_major(b, h, o),
            &CacheConfig::titan_xp_l2(),
        );
        let cm = simulate_gemm(
            &TiledGemmSpec::fc_col_major(b, h, o),
            &CacheConfig::titan_xp_l2(),
        );
        for (v, r) in [("Y=XW^T", rm), ("Y^T=WX^T", cm)] {
            println!(
                "{name} {v}: loadtx={} storetx={} l1hit={:.3} l2hit={:.3} dram={}KB coal={:.3}",
                r.load_transactions,
                r.store_transactions,
                r.l1.hit_rate(),
                r.l2_hit_rate(),
                r.total_dram_bytes() / 1024,
                r.coalescing_efficiency()
            );
        }
    }
}
