//! Set-associative LRU cache model.

use serde::{Deserialize, Serialize};

/// Geometry of a simulated cache.
///
/// All sizes are in bytes. `line_bytes` and the set count must be powers of
/// two so the index/tag split is a simple shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The 3 MiB, 128-byte-line, 16-way L2 of a Titan Xp (Pascal GP102).
    pub fn titan_xp_l2() -> Self {
        CacheConfig {
            capacity_bytes: 3 * 1024 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// The 4.5 MiB L2 of a Titan V (Volta GV100).
    pub fn titan_v_l2() -> Self {
        CacheConfig {
            capacity_bytes: 4608 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// The 5.5 MiB L2 of an RTX 2080 Ti (Turing TU102).
    pub fn rtx_2080_ti_l2() -> Self {
        CacheConfig {
            capacity_bytes: 5632 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.ways).max(1)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::titan_xp_l2()
    }
}

/// Hit/miss counters accumulated by a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled a line).
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    /// Monotonic timestamp of last touch, for LRU.
    last_used: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; any access touches exactly one line (the
/// coalescer has already split wide requests into transactions).
///
/// # Example
///
/// ```
/// use echo_cachesim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { capacity_bytes: 256, line_bytes: 64, ways: 2 });
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(16));      // same line
/// assert!(!c.access(4096));   // different line
/// assert!(c.stats().hit_rate() > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![vec![Line::default(); config.ways]; config.num_sets()];
        Cache {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses the line containing `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Fill: pick an invalid way or evict the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used } else { 0 })
            .expect("ways >= 1");
        if victim.valid {
            self.stats.evictions += 1;
        }
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = self.clock;
        false
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(CacheConfig::titan_xp_l2().num_sets(), 1536);
    }

    #[test]
    fn same_line_hits() {
        let mut c = tiny();
        assert!(!c.access(100));
        assert!(c.access(101));
        assert!(c.access(127));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256).
        c.access(0);
        c.access(256);
        c.access(0); // refresh line 0 so line 256 is LRU
        c.access(512); // evicts 256
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(256), "line 256 was evicted");
        assert_eq!(c.stats().evictions, 2); // 512 evicted 256; 256 evicted 512
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_pass() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "addr {a} should hit on second pass");
        }
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn streaming_larger_than_capacity_thrashes() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..32).map(|i| i * 64).collect(); // 4x capacity
        for _ in 0..2 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert_eq!(c.stats().hits, 0, "LRU streaming over capacity never hits");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.access(0));
    }
}
