//! Warp-level memory coalescing.
//!
//! NVIDIA GPUs service a warp's 32 lane addresses by merging them into
//! aligned 32-byte transactions; a fully coalesced warp load of consecutive
//! `f32`s needs 4 transactions, while a strided pattern can need up to 32.
//! The factor between those two extremes is precisely the "cache/memory
//! utilization" lever behind the paper's Figure 9.

use serde::{Deserialize, Serialize};

/// Size of one memory transaction segment in bytes (NVIDIA L2 sector).
pub const TRANSACTION_BYTES: u64 = 32;

/// Number of lanes in a warp.
pub const WARP_LANES: usize = 32;

/// Counters accumulated by a [`Coalescer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalesceStats {
    /// Warp-level load/store instructions issued.
    pub requests: u64,
    /// 32-byte transactions generated after coalescing.
    pub transactions: u64,
    /// Lane accesses observed (≤ `requests * 32`; tail warps are partial).
    pub lanes: u64,
}

impl CoalesceStats {
    /// Average transactions per warp request (1 is impossible for `f32`
    /// loads; 4 is fully coalesced; 32 is fully scattered).
    pub fn transactions_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.transactions as f64 / self.requests as f64
        }
    }

    /// Efficiency in `[0, 1]`: ideal transaction count over actual.
    ///
    /// Overlapping lane addresses (broadcast reads) can need *fewer*
    /// transactions than the dense-packing ideal; such patterns are
    /// clamped to 1.0.
    pub fn efficiency(&self) -> f64 {
        if self.transactions == 0 {
            return 1.0;
        }
        // Ideal: every active lane's 4 bytes packed densely into 32-byte
        // segments.
        let ideal = (self.lanes * 4).div_ceil(TRANSACTION_BYTES);
        (ideal as f64 / self.transactions as f64).min(1.0)
    }
}

/// Merges warp lane addresses into aligned 32-byte transactions.
///
/// # Example
///
/// ```
/// use echo_cachesim::Coalescer;
///
/// let mut c = Coalescer::new();
/// // 32 consecutive f32 addresses: 4 bytes * 32 = 128 bytes = 4 transactions.
/// let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// let segments = c.warp_access(&addrs);
/// assert_eq!(segments.len(), 4);
///
/// // Stride-128 addresses: every lane lands in its own segment.
/// let strided: Vec<u64> = (0..32).map(|i| i * 128).collect();
/// assert_eq!(c.warp_access(&strided).len(), 32);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Coalescer {
    stats: CoalesceStats,
    scratch: Vec<u64>,
}

impl Coalescer {
    /// Creates a coalescer with zeroed statistics.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoalesceStats {
        &self.stats
    }

    /// Coalesces one warp's lane byte-addresses (each lane reads 4 bytes)
    /// and returns the distinct aligned segment base addresses.
    ///
    /// Fewer than 32 addresses models a partially-active warp.
    pub fn warp_access(&mut self, lane_addrs: &[u64]) -> Vec<u64> {
        debug_assert!(lane_addrs.len() <= WARP_LANES);
        self.stats.requests += 1;
        self.stats.lanes += lane_addrs.len() as u64;
        self.scratch.clear();
        for &a in lane_addrs {
            // Lane accesses 4 bytes which may straddle a segment boundary.
            let first = a / TRANSACTION_BYTES;
            let last = (a + 3) / TRANSACTION_BYTES;
            self.scratch.push(first);
            if last != first {
                self.scratch.push(last);
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.stats.transactions += self.scratch.len() as u64;
        self.scratch
            .iter()
            .map(|&s| s * TRANSACTION_BYTES)
            .collect()
    }

    /// Resets statistics.
    pub fn reset(&mut self) {
        self.stats = CoalesceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_floats_fully_coalesce() {
        let mut c = Coalescer::new();
        let addrs: Vec<u64> = (0..32).map(|i| 1024 + i * 4).collect();
        assert_eq!(c.warp_access(&addrs).len(), 4);
        assert!((c.stats().efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_stride_fully_scatters() {
        let mut c = Coalescer::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 512).collect();
        assert_eq!(c.warp_access(&addrs).len(), 32);
        assert!(c.stats().efficiency() < 0.2);
    }

    #[test]
    fn moderate_stride_partial_coalescing() {
        let mut c = Coalescer::new();
        // Stride of 8 floats (32 bytes): one transaction per lane but
        // aligned — exactly 32 segments; stride of 2 floats: 8 segments.
        let stride2: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(c.warp_access(&stride2).len(), 8);
    }

    #[test]
    fn straddling_access_touches_two_segments() {
        let mut c = Coalescer::new();
        // One lane reading 4 bytes at offset 30 crosses the 32-byte line.
        assert_eq!(c.warp_access(&[30]).len(), 2);
    }

    #[test]
    fn partial_warp_counts_lanes() {
        let mut c = Coalescer::new();
        c.warp_access(&[0, 4, 8, 12]);
        assert_eq!(c.stats().lanes, 4);
        assert_eq!(c.stats().requests, 1);
        assert_eq!(c.stats().transactions, 1);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let mut c = Coalescer::new();
        let addrs = vec![0u64; 32]; // broadcast read
        assert_eq!(c.warp_access(&addrs).len(), 1);
    }
}
