//! GPU memory-hierarchy simulation: warp coalescing and a set-associative
//! L2 cache, driven by access traces of tiled GEMM kernels.
//!
//! The paper's data layout optimization (§4.2, Figure 9) rests on a
//! microarchitectural fact: for the skewed matrices of an LSTM's
//! fully-connected layers, `Y = XWᵀ` and `Yᵀ = WXᵀ` perform identical
//! arithmetic but stream memory differently, so one formulation enjoys
//! better cache utilization and fewer DRAM transactions. Without real GPU
//! hardware we reproduce that mechanism from first principles:
//!
//! 1. [`trace`] generates the global-memory access stream of a documented
//!    block-tiled GEMM kernel schema under each operand layout;
//! 2. [`coalesce`] merges each warp's 32 lane addresses into 32-byte memory
//!    transactions exactly the way NVIDIA hardware does;
//! 3. [`cache`] replays the transaction stream through a set-associative
//!    LRU cache sized like a Titan Xp L2 (3 MiB, 128 B lines);
//! 4. [`GemmMemReport`] summarizes transactions, hit rates and DRAM bytes,
//!    which `echo-device` turns into simulated kernel time.
//!
//! # Example
//!
//! ```
//! use echo_cachesim::{simulate_gemm, CacheConfig, TiledGemmSpec};
//!
//! // The paper's LSTM shape: X [64 x 512], W [2048 x 512], Y = X Wᵀ.
//! let row_major = TiledGemmSpec::fc_row_major(64, 512, 2048);
//! let col_major = TiledGemmSpec::fc_col_major(64, 512, 2048);
//! let l2 = CacheConfig::titan_xp_l2();
//! let a = simulate_gemm(&row_major, &l2);
//! let b = simulate_gemm(&col_major, &l2);
//! // The column-major formulation issues no more transactions.
//! assert!(b.load_transactions <= a.load_transactions);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalesce::{CoalesceStats, Coalescer};
pub use trace::{simulate_gemm, GemmMemReport, MatLayout, TiledGemmSpec};
