//! Access-trace generation for a block-tiled GEMM kernel schema.
//!
//! # Kernel schema
//!
//! We model the canonical shared-memory GEMM: the output `C [m x n]` is
//! covered by `TILE_M x TILE_N` block tiles; each block marches over the
//! reduction dimension in `TILE_K` steps, cooperatively staging an
//! `A`-subtile (`TILE_M x TILE_K`, scanned k-fastest) and a `B`-subtile
//! (`TILE_K x TILE_N`, scanned n-fastest) from global memory. Staging loads
//! are issued by 32-lane warps; the hardware coalescer merges lane addresses
//! into 32-byte transactions ([`crate::coalesce`]). Transactions then probe
//! a per-SM L1 and the chip-wide L2 ([`crate::cache`]); L2 misses cost DRAM
//! sector traffic.
//!
//! Whether a staging scan is contiguous — and therefore coalesces — depends
//! only on the operand's storage layout, which is exactly the paper's data
//! layout lever: in `Y = XWᵀ` the weight operand is scanned against its
//! storage order, while in `Yᵀ = WXᵀ` (with the `[T, H, B]` input layout)
//! every operand is scanned along its contiguous axis.
//!
//! Blocks are executed in waves of `concurrent_blocks` with their k-steps
//! round-robin interleaved, so L2 reuse between concurrently-running blocks
//! (e.g. every block re-reading the small `X` matrix) is captured.
//!
//! For very large problems the trace is *sampled*: only the first
//! `sample_block_limit` blocks are simulated and extensive counters are
//! scaled by the true block count. Cache hit *rates* are taken from the
//! sampled region.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::coalesce::{Coalescer, TRANSACTION_BYTES, WARP_LANES};
use serde::{Deserialize, Serialize};

/// Storage order of a GEMM operand.
///
/// This mirrors `echo_tensor::MatrixLayout` but lives here so the simulator
/// has no dependency on the tensor crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MatLayout {
    /// Rows contiguous.
    #[default]
    RowMajor,
    /// Columns contiguous.
    ColMajor,
}

impl MatLayout {
    fn strides(self, rows: usize, cols: usize) -> (u64, u64) {
        match self {
            MatLayout::RowMajor => (cols as u64, 1),
            MatLayout::ColMajor => (1, rows as u64),
        }
    }
}

/// Output tile height.
pub const TILE_M: usize = 64;
/// Output tile width.
pub const TILE_N: usize = 64;
/// Reduction tile depth.
pub const TILE_K: usize = 16;

/// A GEMM problem (`C[m x n] = A[m x k] · B[k x n]`) plus the storage layout
/// of each operand, ready for trace simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TiledGemmSpec {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Layout of `A [m x k]`.
    pub layout_a: MatLayout,
    /// Layout of `B [k x n]`.
    pub layout_b: MatLayout,
    /// Layout of `C [m x n]`.
    pub layout_c: MatLayout,
    /// How many blocks run concurrently (≈ number of SMs).
    pub concurrent_blocks: usize,
    /// Simulate at most this many blocks and extrapolate the rest.
    pub sample_block_limit: usize,
    /// Simulate at most this many k-steps per block and extrapolate the
    /// rest (bounds trace cost for very deep reductions).
    pub sample_k_limit: usize,
}

impl TiledGemmSpec {
    /// Creates a spec with all-row-major operands and default sampling.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        TiledGemmSpec {
            m,
            n,
            k,
            layout_a: MatLayout::RowMajor,
            layout_b: MatLayout::RowMajor,
            layout_c: MatLayout::RowMajor,
            concurrent_blocks: 30, // Titan Xp SM count
            sample_block_limit: 60,
            sample_k_limit: 24,
        }
    }

    /// The paper's row-major fully-connected layer `Y = XWᵀ` for input
    /// `X [batch x hidden]` (row-major) and weight `W [out x hidden]`
    /// (row-major): the `B` operand of the product is `Wᵀ`, whose storage is
    /// column-major, so its staging scan is strided.
    pub fn fc_row_major(batch: usize, hidden: usize, out: usize) -> Self {
        TiledGemmSpec {
            layout_b: MatLayout::ColMajor,
            ..TiledGemmSpec::new(batch, out, hidden)
        }
    }

    /// The paper's column-major fully-connected layer `Yᵀ = WXᵀ` with the
    /// EcoRNN `[T, H, B]` input layout: `Xᵀ [hidden x batch]` is physically
    /// row-major, so every operand is scanned along its contiguous axis.
    pub fn fc_col_major(batch: usize, hidden: usize, out: usize) -> Self {
        TiledGemmSpec::new(out, batch, hidden)
    }

    /// Total floating-point operations (2·m·n·k).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Number of output block tiles.
    pub fn num_blocks(&self) -> usize {
        self.m.div_ceil(TILE_M) * self.n.div_ceil(TILE_N)
    }
}

/// Memory-system summary of one simulated GEMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GemmMemReport {
    /// Warp-level load requests (scaled to the full problem).
    pub load_requests: u64,
    /// Coalesced 32-byte load transactions (scaled).
    pub load_transactions: u64,
    /// Coalesced 32-byte store transactions (scaled).
    pub store_transactions: u64,
    /// L1 statistics over the sampled region.
    pub l1: CacheStats,
    /// L2 statistics over the sampled region.
    pub l2: CacheStats,
    /// DRAM bytes read (scaled).
    pub dram_read_bytes: u64,
    /// DRAM bytes written (scaled).
    pub dram_write_bytes: u64,
    /// Floating-point operations of the full problem.
    pub flops: u64,
    /// Fraction of blocks actually simulated.
    pub sampled_fraction: f64,
}

impl GemmMemReport {
    /// L2 hit rate over the sampled region.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// Coalescing efficiency: ideal transactions over issued transactions.
    pub fn coalescing_efficiency(&self) -> f64 {
        let issued = self.load_transactions + self.store_transactions;
        if issued == 0 {
            return 1.0;
        }
        let lanes = self.load_requests * WARP_LANES as u64; // upper bound
        let ideal = (lanes * 4).div_ceil(TRANSACTION_BYTES);
        (ideal as f64 / issued as f64).min(1.0)
    }

    /// Total DRAM traffic.
    pub fn total_dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Per-SM L1 geometry (Pascal: 48 KiB, 128-byte lines).
fn l1_config() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 48 * 1024,
        line_bytes: 128,
        ways: 4,
    }
}

struct BlockCursor {
    tile_row: usize,
    tile_col: usize,
    k_step: usize,
    l1: Cache,
    done: bool,
}

/// Simulates the access trace of `spec` against an L2 with geometry `l2`.
///
/// See the [module documentation](self) for the kernel schema. The result's
/// extensive counters (transactions, DRAM bytes) cover the whole problem
/// even when the trace was sampled.
pub fn simulate_gemm(spec: &TiledGemmSpec, l2_config: &CacheConfig) -> GemmMemReport {
    let elem = 4u64;
    let a_base = 0x1000_0000u64;
    let b_base = a_base + (spec.m * spec.k) as u64 * elem;
    let b_base = b_base.next_multiple_of(256);
    let c_base = b_base + (spec.k * spec.n) as u64 * elem;
    let c_base = c_base.next_multiple_of(256);

    let (ars, acs) = spec.layout_a.strides(spec.m, spec.k);
    let (brs, bcs) = spec.layout_b.strides(spec.k, spec.n);
    let (crs, ccs) = spec.layout_c.strides(spec.m, spec.n);

    let tiles_m = spec.m.div_ceil(TILE_M);
    let tiles_n = spec.n.div_ceil(TILE_N);
    let total_blocks = tiles_m * tiles_n;
    let simulated_blocks = total_blocks.min(spec.sample_block_limit.max(1));
    let k_steps = spec.k.div_ceil(TILE_K).max(1);
    let simulated_k_steps = k_steps.min(spec.sample_k_limit.max(1));

    let mut l2 = Cache::new(*l2_config);
    let mut coalescer = Coalescer::new();
    let mut l1_agg = CacheStats::default();
    let mut dram_read = 0u64;
    let mut dram_write = 0u64;
    let mut store_tx = 0u64;

    let mut lane_buf: Vec<u64> = Vec::with_capacity(WARP_LANES);

    // Issues one tile-staging scan: elements enumerated with `fast` varying
    // fastest, grouped into warps, coalesced, then sent through L1 + L2.
    let mut stage_tile = |coalescer: &mut Coalescer,
                          l1: &mut Cache,
                          l2: &mut Cache,
                          dram_read: &mut u64,
                          base: u64,
                          rs: u64,
                          cs: u64,
                          rows: std::ops::Range<usize>,
                          cols: std::ops::Range<usize>,
                          row_limit: usize,
                          col_limit: usize| {
        let mut lanes = 0usize;
        lane_buf.clear();
        let flush = |buf: &mut Vec<u64>,
                     coalescer: &mut Coalescer,
                     l1: &mut Cache,
                     l2: &mut Cache,
                     dram_read: &mut u64| {
            if buf.is_empty() {
                return;
            }
            for seg in coalescer.warp_access(buf) {
                if !l1.access(seg) && !l2.access(seg) {
                    *dram_read += u64::from(l2.config().line_bytes as u32);
                }
            }
            buf.clear();
        };
        for r in rows.clone() {
            if r >= row_limit {
                continue;
            }
            for c in cols.clone() {
                if c >= col_limit {
                    continue;
                }
                lane_buf.push(base + (r as u64 * rs + c as u64 * cs) * elem);
                lanes += 1;
                if lanes.is_multiple_of(WARP_LANES) {
                    flush(&mut lane_buf, coalescer, l1, l2, dram_read);
                }
            }
        }
        flush(&mut lane_buf, coalescer, l1, l2, dram_read);
    };

    // Wave execution: `concurrent_blocks` blocks progress in lockstep, one
    // k-step per round, sharing the L2.
    let mut block_ids: Vec<usize> = (0..simulated_blocks).collect();
    while !block_ids.is_empty() {
        let wave: Vec<usize> = block_ids
            .drain(..block_ids.len().min(spec.concurrent_blocks.max(1)))
            .collect();
        let mut cursors: Vec<BlockCursor> = wave
            .iter()
            .map(|&id| BlockCursor {
                tile_row: (id / tiles_n) * TILE_M,
                tile_col: (id % tiles_n) * TILE_N,
                k_step: 0,
                l1: Cache::new(l1_config()),
                done: false,
            })
            .collect();
        loop {
            let mut progressed = false;
            for cur in cursors.iter_mut() {
                if cur.done {
                    continue;
                }
                progressed = true;
                let k0 = cur.k_step * TILE_K;
                // A subtile: rows [tile_row, +TILE_M), k [k0, +TILE_K),
                // scanned k-fastest.
                stage_tile(
                    &mut coalescer,
                    &mut cur.l1,
                    &mut l2,
                    &mut dram_read,
                    a_base,
                    ars,
                    acs,
                    cur.tile_row..cur.tile_row + TILE_M,
                    k0..k0 + TILE_K,
                    spec.m,
                    spec.k,
                );
                // B subtile: k [k0, +TILE_K), cols [tile_col, +TILE_N),
                // scanned n-fastest.
                stage_tile(
                    &mut coalescer,
                    &mut cur.l1,
                    &mut l2,
                    &mut dram_read,
                    b_base,
                    brs,
                    bcs,
                    k0..k0 + TILE_K,
                    cur.tile_col..cur.tile_col + TILE_N,
                    spec.k,
                    spec.n,
                );
                cur.k_step += 1;
                if cur.k_step >= simulated_k_steps {
                    cur.done = true;
                    // Epilogue: write the C tile, n-fastest, streaming
                    // through the coalescer straight to DRAM sectors.
                    let mut lanes = Vec::with_capacity(WARP_LANES);
                    for r in cur.tile_row..(cur.tile_row + TILE_M).min(spec.m) {
                        for c in cur.tile_col..(cur.tile_col + TILE_N).min(spec.n) {
                            lanes.push(c_base + (r as u64 * crs + c as u64 * ccs) * elem);
                            if lanes.len() == WARP_LANES {
                                let segs = coalescer.warp_access(&lanes);
                                store_tx += segs.len() as u64;
                                dram_write += segs.len() as u64 * TRANSACTION_BYTES;
                                lanes.clear();
                            }
                        }
                    }
                    if !lanes.is_empty() {
                        let segs = coalescer.warp_access(&lanes);
                        store_tx += segs.len() as u64;
                        dram_write += segs.len() as u64 * TRANSACTION_BYTES;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        for cur in cursors {
            let s = cur.l1.stats();
            l1_agg.accesses += s.accesses;
            l1_agg.hits += s.hits;
            l1_agg.misses += s.misses;
            l1_agg.evictions += s.evictions;
        }
    }

    let scale = (total_blocks as f64 / simulated_blocks as f64)
        * (k_steps as f64 / simulated_k_steps as f64);
    let scale_u = |v: u64| -> u64 { (v as f64 * scale).round() as u64 };
    let block_scale = total_blocks as f64 / simulated_blocks as f64;
    let scale_blocks = |v: u64| -> u64 { (v as f64 * block_scale).round() as u64 };
    let cstats = *coalescer.stats();
    // Store transactions were counted inside `store_tx`; the coalescer's
    // `transactions` counter includes them, so derive load transactions by
    // subtraction.
    let load_tx = cstats.transactions - store_tx;
    let load_requests = cstats.requests; // includes store warps; close enough for efficiency metrics

    GemmMemReport {
        load_requests: scale_u(load_requests),
        load_transactions: scale_u(load_tx),
        store_transactions: scale_blocks(store_tx),
        l1: l1_agg,
        l2: *l2.stats(),
        dram_read_bytes: scale_u(dram_read),
        dram_write_bytes: scale_blocks(dram_write),
        flops: spec.flops(),
        sampled_fraction: 1.0 / scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> CacheConfig {
        CacheConfig::titan_xp_l2()
    }

    #[test]
    fn all_row_major_is_fully_coalesced_on_b() {
        // A is scanned k-fastest: for row-major A that is contiguous; B is
        // scanned n-fastest: contiguous for row-major B.
        let spec = TiledGemmSpec::new(64, 256, 128);
        let r = simulate_gemm(&spec, &l2());
        assert!(
            r.coalescing_efficiency() > 0.9,
            "efficiency {}",
            r.coalescing_efficiency()
        );
    }

    #[test]
    fn lstm_shape_row_major_issues_more_transactions() {
        // Paper Figure 9(a): X [64 x 512], W [2048 x 512].
        let rm = simulate_gemm(&TiledGemmSpec::fc_row_major(64, 512, 2048), &l2());
        let cm = simulate_gemm(&TiledGemmSpec::fc_col_major(64, 512, 2048), &l2());
        assert!(
            rm.load_transactions > cm.load_transactions * 2,
            "row-major {} vs col-major {}",
            rm.load_transactions,
            cm.load_transactions
        );
        // Identical arithmetic.
        assert_eq!(rm.flops, cm.flops);
    }

    #[test]
    fn gru_shape_shows_same_direction() {
        // Paper Figure 9(b): W [3072 x 1024], X [64 x 1024].
        let rm = simulate_gemm(&TiledGemmSpec::fc_row_major(64, 1024, 3072), &l2());
        let cm = simulate_gemm(&TiledGemmSpec::fc_col_major(64, 1024, 3072), &l2());
        assert!(rm.load_transactions > cm.load_transactions);
    }

    #[test]
    fn dram_traffic_close_to_footprint_for_streaming() {
        // For a coalesced, non-reusing problem DRAM reads should be within a
        // small factor of the operand footprint.
        let spec = TiledGemmSpec::new(256, 256, 256);
        let r = simulate_gemm(&spec, &l2());
        let footprint = (3 * 256 * 256 * 4) as u64;
        assert!(r.total_dram_bytes() < footprint * 4);
        assert!(r.total_dram_bytes() > footprint / 4);
    }

    #[test]
    fn sampling_extrapolates_counts() {
        let mut big = TiledGemmSpec::new(2048, 2048, 64);
        big.sample_block_limit = 64;
        let sampled = simulate_gemm(&big, &l2());
        assert!(sampled.sampled_fraction < 1.0);
        let mut full = big.clone();
        full.sample_block_limit = usize::MAX;
        let exact = simulate_gemm(&full, &l2());
        let ratio = sampled.load_transactions as f64 / exact.load_transactions as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_problem_single_block() {
        let spec = TiledGemmSpec::new(8, 8, 8);
        let r = simulate_gemm(&spec, &l2());
        assert_eq!(r.sampled_fraction, 1.0);
        assert!(r.load_requests > 0);
        assert!(r.dram_write_bytes >= (8 * 8 * 4) as u64);
    }
}
