//! Property tests for the cache and coalescing simulators.

use echo_cachesim::{simulate_gemm, Cache, CacheConfig, Coalescer, TiledGemmSpec};
use proptest::prelude::*;

proptest! {
    /// A warp of 32 f32 lane accesses always produces between 1 and 64
    /// transactions (up to 2 per lane when straddling), and repeating the
    /// same addresses is idempotent in count.
    #[test]
    fn coalescer_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..=32)) {
        let mut c = Coalescer::new();
        let n1 = c.warp_access(&addrs).len();
        prop_assert!(n1 >= 1);
        prop_assert!(n1 <= 2 * addrs.len());
        let n2 = c.warp_access(&addrs).len();
        prop_assert_eq!(n1, n2);
    }

    /// Coalescer efficiency stays within [0, 1] for any address pattern.
    #[test]
    fn coalescer_efficiency_is_normalized(
        stride in 1u64..600, base in 0u64..10_000, lanes in 1usize..=32,
    ) {
        let mut c = Coalescer::new();
        let addrs: Vec<u64> = (0..lanes as u64).map(|i| base + i * stride).collect();
        c.warp_access(&addrs);
        let eff = c.stats().efficiency();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eff), "eff {}", eff);
    }

    /// Cache invariants: hits + misses = accesses; a second pass over a
    /// working set within capacity is all hits.
    #[test]
    fn cache_counters_are_consistent(
        addrs in proptest::collection::vec(0u64..100_000, 1..200),
        ways in 1usize..8,
    ) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 64 * 64 * ways,
            line_bytes: 64,
            ways,
        });
        for &a in &addrs {
            cache.access(a);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
    }

    /// Second pass over a small working set hits fully (true LRU, within
    /// capacity).
    #[test]
    fn resident_set_hits_on_second_pass(lines in 1usize..16) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 16 * 64 * 4,
            line_bytes: 64,
            ways: 4,
        });
        let addrs: Vec<u64> = (0..lines as u64).map(|i| i * 64).collect();
        for &a in &addrs {
            cache.access(a);
        }
        for &a in &addrs {
            prop_assert!(cache.access(a));
        }
    }

    /// GEMM trace reports behave monotonically: more work → at least as
    /// many transactions; flops are exact; DRAM traffic at least covers
    /// the output write once.
    #[test]
    fn gemm_report_sanity(m in 1usize..96, n in 1usize..96, k in 1usize..96) {
        let l2 = CacheConfig::titan_xp_l2();
        let small = simulate_gemm(&TiledGemmSpec::new(m, n, k), &l2);
        prop_assert_eq!(small.flops, 2 * (m * n * k) as u64);
        prop_assert!(small.dram_write_bytes >= (m * n * 4) as u64 / 2);
        let bigger = simulate_gemm(&TiledGemmSpec::new(m, n, k * 2), &l2);
        prop_assert!(bigger.load_transactions >= small.load_transactions);
    }

    /// The row-major FC formulation never beats the column-major one in
    /// load transactions for the paper's skewed shapes (H ≥ 4B).
    #[test]
    fn skewed_shapes_always_favor_col_major(
        b in 1usize..3, h_mult in 2usize..8, o_mult in 2usize..6,
    ) {
        let batch = b * 32;
        let hidden = batch * h_mult;
        let out = hidden * o_mult;
        let l2 = CacheConfig::titan_xp_l2();
        let rm = simulate_gemm(&TiledGemmSpec::fc_row_major(batch, hidden, out), &l2);
        let cm = simulate_gemm(&TiledGemmSpec::fc_col_major(batch, hidden, out), &l2);
        prop_assert!(
            rm.load_transactions >= cm.load_transactions,
            "B={} H={} O={}: rm {} < cm {}",
            batch, hidden, out, rm.load_transactions, cm.load_transactions
        );
    }
}
