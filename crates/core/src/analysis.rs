//! Whole-graph shape inference — the static analysis the Echo pass runs
//! over the MXNet-style graph before making stashing decisions.

use echo_graph::{Graph, GraphError, NodeId, Result};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Shapes of every node in a graph, indexed densely by node id.
#[derive(Debug, Clone)]
pub struct ShapeTable {
    shapes: Vec<Shape>,
}

impl ShapeTable {
    /// The shape of `node`.
    pub fn shape(&self, node: NodeId) -> &Shape {
        &self.shapes[node.index()]
    }

    /// Bytes of `node`'s output.
    pub fn bytes(&self, node: NodeId) -> u64 {
        self.shapes[node.index()].num_bytes() as u64
    }

    /// The largest op-output byte size in the table, restricted by a
    /// predicate over node ids.
    pub fn max_bytes_where(&self, mut pred: impl FnMut(NodeId) -> bool) -> u64 {
        self.shapes
            .iter()
            .enumerate()
            .filter(|&(i, _)| pred(NodeId::from_index(i)))
            .map(|(_, s)| s.num_bytes() as u64)
            .max()
            .unwrap_or(0)
    }
}

/// Infers the shape of every node from input bindings and parameter
/// shapes.
///
/// `bindings` supplies input-node tensors (only their shapes are read);
/// `param_shapes` supplies parameter shapes.
///
/// # Errors
///
/// Returns [`GraphError::MissingBinding`] when an input or parameter has
/// no shape, or operator errors when shapes are inconsistent.
pub fn infer_shapes(
    graph: &Graph,
    bindings: &HashMap<NodeId, Tensor>,
    param_shapes: &HashMap<NodeId, Shape>,
) -> Result<ShapeTable> {
    let binding_shapes: HashMap<NodeId, Shape> = bindings
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    infer_shapes_from(graph, &binding_shapes, param_shapes)
}

/// Like [`infer_shapes`], but taking input shapes directly rather than
/// bound tensors — the form the unified pass-pipeline front end uses,
/// since compilation never needs input *values*.
///
/// # Errors
///
/// Returns [`GraphError::MissingBinding`] when an input or parameter has
/// no shape, or operator errors when shapes are inconsistent.
pub fn infer_shapes_from(
    graph: &Graph,
    binding_shapes: &HashMap<NodeId, Shape>,
    param_shapes: &HashMap<NodeId, Shape>,
) -> Result<ShapeTable> {
    let mut shapes: Vec<Shape> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let shape = match &node.kind {
            echo_graph::NodeKind::Input => {
                binding_shapes
                    .get(&node.id)
                    .cloned()
                    .ok_or_else(|| GraphError::MissingBinding {
                        name: node.name.clone(),
                    })?
            }
            echo_graph::NodeKind::Param => {
                param_shapes
                    .get(&node.id)
                    .cloned()
                    .ok_or_else(|| GraphError::MissingBinding {
                        name: node.name.clone(),
                    })?
            }
            echo_graph::NodeKind::Op { op, inputs } => {
                let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| &shapes[i.index()]).collect();
                op.infer_shape(&in_shapes)?
            }
        };
        shapes.push(shape);
    }
    Ok(ShapeTable { shapes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_memory::LayerKind;
    use echo_ops::{Add, FullyConnected};
    use std::sync::Arc;

    #[test]
    fn propagates_through_ops() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let w = g.param("w", LayerKind::Other);
        let b = g.param("b", LayerKind::Other);
        let fc = g.apply(
            "fc",
            Arc::new(FullyConnected::new(8)),
            &[x, w, b],
            LayerKind::Other,
        );
        let sum = g.apply("sum", Arc::new(Add), &[fc, fc], LayerKind::Other);

        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::zeros(Shape::d2(4, 3)));
        let mut params = HashMap::new();
        params.insert(w, Shape::d2(8, 3));
        params.insert(b, Shape::d1(8));
        let table = infer_shapes(&g, &bindings, &params).unwrap();
        assert_eq!(table.shape(fc), &Shape::d2(4, 8));
        assert_eq!(table.shape(sum), &Shape::d2(4, 8));
        assert_eq!(table.bytes(sum), 4 * 8 * 4);
    }

    #[test]
    fn missing_binding_is_reported() {
        let mut g = Graph::new();
        let _x = g.input("x", LayerKind::Other);
        let err = infer_shapes(&g, &HashMap::new(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, GraphError::MissingBinding { .. }));
    }
}
