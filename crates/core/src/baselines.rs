//! Baseline recomputation strategies the paper compares against (§7).
//!
//! Chen et al., *Training Deep Nets with Sublinear Memory Cost*
//! (arXiv:1604.06174), checkpoints every `k`-th activation and recomputes
//! the rest, irrespective of what the intermediates cost to regenerate.
//! The paper's criticism is that LSTM runtime is *not* evenly distributed
//! across layers: indiscriminate recomputation drags fully-connected
//! layers into the replay and loses performance, while Echo's O-shape
//! analysis recomputes only cheap subgraphs.
//!
//! This module implements that baseline over the same graph IR so the
//! comparison is apples-to-apples: [`chen_sqrt_plan`] produces a
//! [`StashPlan`] that drops every eligible activation except evenly spaced
//! checkpoints.

use crate::analysis::ShapeTable;
use echo_graph::{Graph, NodeId, NodeKind, SegmentId, StashPlan, StashPolicy};
use std::collections::HashSet;

/// Summary of a Chen-style plan.
#[derive(Debug, Clone)]
pub struct ChenReport {
    /// Nodes marked for recomputation.
    pub recomputed: usize,
    /// Checkpoint nodes kept stashed.
    pub checkpoints: usize,
    /// Feature-map bytes dropped.
    pub dropped_bytes: u64,
    /// Of the dropped bytes, how many belong to GEMM-adjacent (expensive
    /// to recompute) operators — the source of Chen et al.'s slowdown.
    pub expensive_recompute_nodes: usize,
}

/// Whether Chen-style checkpointing may drop this node (anything with a
/// recomputable op; unlike Echo it does **not** exclude expensive
/// categories).
fn droppable(graph: &Graph, id: NodeId, protected: &HashSet<NodeId>) -> bool {
    if protected.contains(&id) {
        return false;
    }
    matches!(graph.nodes()[id.index()].kind, NodeKind::Op { .. })
}

/// Builds a sublinear-memory plan: walk the op nodes in topological order
/// and keep only every `stride`-th one as a checkpoint (`stride ≈ √N` for
/// the classic bound). Dropped spans between checkpoints become
/// recomputation segments; boundary inputs that are themselves dropped are
/// handled by the executor's recursive replay.
pub fn chen_sqrt_plan(
    graph: &Graph,
    shapes: &ShapeTable,
    protected: &[NodeId],
    stride: usize,
) -> (StashPlan, ChenReport) {
    let protected: HashSet<NodeId> = protected.iter().copied().collect();
    let stride = stride.max(2);
    let mut plan = StashPlan::stash_all();
    let mut report = ChenReport {
        recomputed: 0,
        checkpoints: 0,
        dropped_bytes: 0,
        expensive_recompute_nodes: 0,
    };

    let mut segment = 0usize;
    let mut in_window = 0usize;
    for node in graph.nodes() {
        if !droppable(graph, node.id, &protected) {
            continue;
        }
        in_window += 1;
        if in_window.is_multiple_of(stride) {
            // Checkpoint: stays stashed; next window starts a new segment.
            report.checkpoints += 1;
            segment += 1;
            continue;
        }
        // Terminal consumers (nothing downstream) cannot be regenerated
        // lazily by anyone; keep them stashed too.
        if graph.consumers(node.id).is_empty() {
            report.checkpoints += 1;
            continue;
        }
        // Long-lived values (consumed far downstream) are checkpointed —
        // practical implementations of Chen et al. only drop activations
        // of the sequential backbone, since dropping a widely shared value
        // would keep its whole replay window alive for most of backward.
        let farthest = graph
            .consumers(node.id)
            .iter()
            .map(|c| c.index())
            .max()
            .unwrap_or(node.id.index());
        if farthest > node.id.index() + 2 * stride {
            report.checkpoints += 1;
            continue;
        }
        plan.set(
            node.id,
            StashPolicy::Recompute(SegmentId {
                id: segment,
                // Chen's generic scheme has no cross-step structure to
                // exploit: every segment gets its own workspace.
                pool: segment,
            }),
        );
        report.recomputed += 1;
        report.dropped_bytes += shapes.bytes(node.id);
        if let Some(op) = graph.nodes()[node.id.index()].op() {
            if matches!(op.category(), echo_device::KernelCategory::FullyConnected) {
                report.expensive_recompute_nodes += 1;
            }
        }
    }
    (plan, report)
}

/// The √N stride for a graph (Chen et al.'s canonical setting).
pub fn sqrt_stride(graph: &Graph) -> usize {
    let ops = graph.nodes().iter().filter(|n| n.op().is_some()).count();
    ((ops as f64).sqrt().ceil() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::infer_shapes;
    use echo_graph::{ExecOptions, Executor};
    use echo_memory::DeviceMemory;
    use echo_models::{NmtHyper, NmtModel};
    use std::sync::Arc;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(8 << 30, 0, 0.0)
    }

    fn tiny() -> (NmtModel, echo_data::NmtBatch) {
        let corpus = echo_data::ParallelCorpus::synthetic(
            echo_data::Vocab::new(80),
            echo_data::Vocab::new(70),
            16,
            4..=8,
            3,
        );
        let model = NmtModel::build(NmtHyper::tiny(80, 70));
        let batch = echo_data::NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
        (model, batch)
    }

    #[test]
    fn chen_plan_is_bit_exact_but_replays_gemms() {
        let (model, batch) = tiny();
        let bindings = model.bindings(&batch);
        let shapes = infer_shapes(&model.graph, &bindings, &model.param_shapes()).unwrap();
        let (plan, report) = chen_sqrt_plan(
            &model.graph,
            &shapes,
            &[model.loss, model.logits],
            sqrt_stride(&model.graph),
        );
        assert!(report.recomputed > report.checkpoints);
        assert!(
            report.expensive_recompute_nodes > 0,
            "Chen indiscriminately recomputes fully-connected layers"
        );

        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
            model.bind_params(&mut exec, 5).unwrap();
            let stats = exec
                .train_step(&bindings, model.loss, ExecOptions::default(), None)
                .unwrap();
            (stats, m.peak_bytes())
        };
        let (base, peak_base) = run(StashPlan::stash_all());
        let (chen, peak_chen) = run(plan);
        assert_eq!(base.loss, chen.loss, "checkpointing must stay bit-exact");
        assert!(chen.replays > 0);
        assert!(
            peak_chen < peak_base,
            "chen {peak_chen} vs baseline {peak_base}"
        );
    }

    #[test]
    fn echo_recomputes_no_gemms_unlike_chen() {
        let (model, batch) = tiny();
        let bindings = model.bindings(&batch);
        let shapes = infer_shapes(&model.graph, &bindings, &model.param_shapes()).unwrap();
        let (_, chen) = chen_sqrt_plan(
            &model.graph,
            &shapes,
            &[model.loss, model.logits],
            sqrt_stride(&model.graph),
        );
        let compiled = crate::EchoCompiler::new(crate::EchoConfig::default())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        // Echo's plan never touches a FullyConnected node.
        for node in model.graph.nodes() {
            if let StashPolicy::Recompute(_) = compiled.plan.policy(node.id) {
                let cat = node.op().expect("ops only").category();
                assert_ne!(cat, echo_device::KernelCategory::FullyConnected);
            }
        }
        assert!(chen.expensive_recompute_nodes > 0);
    }

    #[test]
    fn stride_controls_the_tradeoff() {
        let (model, batch) = tiny();
        let bindings = model.bindings(&batch);
        let shapes = infer_shapes(&model.graph, &bindings, &model.param_shapes()).unwrap();
        let dropped = |stride: usize| {
            chen_sqrt_plan(&model.graph, &shapes, &[model.loss], stride)
                .1
                .dropped_bytes
        };
        assert!(
            dropped(16) > dropped(2),
            "larger stride drops more activations"
        );
    }
}
