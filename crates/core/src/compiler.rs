//! The Echo compiler front-end.

use crate::analysis::{infer_shapes_from, ShapeTable};
use crate::oshape::{build_plan, find_segments, OshapeConfig, SegmentInfo};
use crate::pipeline::{run_structural_passes, stage_trace, PipelineMode};
use crate::search::{SearchConfig, SearchReport, StashSearch};
use echo_graph::{
    partition_stages, ExecOptions, ExecPlan, Graph, GraphError, NodeId, PassTrace, StagePartition,
    StashPlan,
};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors from compilation.
#[derive(Debug)]
#[non_exhaustive]
pub enum EchoError {
    /// Shape inference or plan validation failed.
    Graph(GraphError),
}

impl fmt::Display for EchoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EchoError::Graph(e) => write!(f, "echo compilation failed: {e}"),
        }
    }
}

impl std::error::Error for EchoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EchoError::Graph(e) => Some(e),
        }
    }
}

impl From<GraphError> for EchoError {
    fn from(e: GraphError) -> Self {
        EchoError::Graph(e)
    }
}

impl EchoError {
    /// Unwraps the underlying graph error (all current variants carry
    /// one).
    pub fn into_graph_error(self) -> GraphError {
        match self {
            EchoError::Graph(e) => e,
        }
    }
}

/// How the recomputation set is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StashSelection {
    /// The paper's O-shape heuristic alone (ratio and size thresholds).
    #[default]
    Heuristic,
    /// Cost-model search over candidate stash sets
    /// ([`StashSearch`](crate::StashSearch)): every candidate is scored by
    /// its execution plan's exact planned peak, and the minimum wins
    /// subject to a recompute-FLOP budget. Needs concrete binding shapes
    /// and a target; without them compilation falls back to the heuristic.
    Search {
        /// Replay-FLOP budget as a multiplier over the FLOPs of one
        /// no-recompute training step.
        flop_budget: f64,
    },
}

/// Compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct EchoConfig {
    /// Enable the recomputation (partial-forward-propagation) pass.
    pub recompute: bool,
    /// O-shape detector tunables.
    pub oshape: OshapeConfig,
    /// Share one workspace pool between structurally identical segments
    /// (§4.1.2). Disable only for the ablation study.
    pub share_workspace: bool,
    /// Heuristic stash selection, or exact-cost search over stash sets.
    pub selection: StashSelection,
    /// Run the LSTM-cell and elementwise-chain fusion passes. Off by
    /// default: fusion rewrites the graph, so the compiled plan carries a
    /// replacement graph ([`CompiledPlan::graph`]) the executor must swap
    /// in — [`EchoCompiler::attach`] does that automatically.
    pub fusion: bool,
    /// Run the CSE pass: detect duplicate subexpressions (training
    /// pipelines, reported in the pass trace) or merge them (inference
    /// pipelines, where forward-only execution keeps the rewrite
    /// bit-exact).
    pub cse: bool,
    /// Run device-sim-driven layout selection over operators advertising
    /// [`layout_variants`](echo_graph::Operator::layout_variants).
    pub layout_select: bool,
    /// Pretty-print the GIR before the pipeline and after each pass that
    /// changed it (also enabled by the `ECHO_DUMP_IR` env var).
    pub dump_ir: bool,
    /// Partition the graph into this many pipeline stages after the
    /// structural passes (GPipe-style model parallelism; `1` disables).
    /// The partition is returned in [`CompiledPlan::partition`] and
    /// summarized in [`PassReport::stages`]; cuts never split a
    /// parameter's consumer span or a protected interface.
    pub pipeline_stages: usize,
}

impl Default for EchoConfig {
    fn default() -> Self {
        EchoConfig {
            recompute: true,
            oshape: OshapeConfig::default(),
            share_workspace: true,
            selection: StashSelection::Heuristic,
            fusion: false,
            cse: false,
            layout_select: false,
            dump_ir: false,
            pipeline_stages: 1,
        }
    }
}

impl EchoConfig {
    /// A configuration with the pass disabled (framework-default
    /// stash-everything behaviour) — the paper's baseline.
    pub fn baseline() -> Self {
        EchoConfig {
            recompute: false,
            ..EchoConfig::default()
        }
    }
}

/// Human/machine-readable summary of one discovered segment.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Names of the recomputed nodes.
    pub node_names: Vec<String>,
    /// Intermediate bytes freed from the feature-map footprint.
    pub intermediate_bytes: u64,
    /// Boundary input bytes that must stay stashed.
    pub boundary_bytes: u64,
    /// Shared workspace pool.
    pub pool: usize,
}

/// Per-pipeline-stage metrics recorded when
/// [`EchoConfig::pipeline_stages`] > 1.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Stage index in `0..P`.
    pub index: usize,
    /// Operator nodes owned by the stage.
    pub ops: usize,
    /// Parameters owned by the stage.
    pub params: usize,
    /// Activation bytes sent across the cut to the next stage (0 for the
    /// last stage).
    pub send_bytes: u64,
}

/// What the pass did, with enough detail for EXPERIMENTS.md tables.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// One entry per accepted segment.
    pub segments: Vec<SegmentReport>,
    /// Static peak device bytes of the ahead-of-time execution plan, when
    /// one was built (requires concrete binding shapes and a target).
    pub planned_peak_bytes: Option<u64>,
    /// Number of reusable transient buffer slots in the execution plan.
    pub slot_count: Option<usize>,
    /// Stash-set search statistics (candidates explored, searched vs
    /// heuristic peak, recompute FLOPs), when
    /// [`StashSelection::Search`] ran.
    pub search: Option<SearchReport>,
    /// One trace per pipeline stage that ran, in execution order:
    /// structural passes (CSE, fusion, layout) followed by stash
    /// selection and lowering. Each entry carries the stage's rewrite
    /// count, live-cone metric deltas, wall time and the result of the
    /// structural equivalence check.
    pub passes: Vec<PassTrace>,
    /// Per-stage metrics of the pipeline partition, when one was
    /// requested ([`EchoConfig::pipeline_stages`] > 1).
    pub stages: Vec<StageSummary>,
}

impl PassReport {
    /// Total feature-map bytes the plan avoids stashing.
    pub fn total_saved_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.intermediate_bytes).sum()
    }

    /// Peak extra workspace the plan needs: the largest segment per pool
    /// (segments in one pool share one buffer).
    pub fn workspace_bytes(&self) -> u64 {
        let mut per_pool: HashMap<usize, u64> = HashMap::new();
        for s in &self.segments {
            let e = per_pool.entry(s.pool).or_default();
            *e = (*e).max(s.intermediate_bytes);
        }
        per_pool.values().sum()
    }

    /// Net footprint reduction (saved feature maps minus retained
    /// workspace).
    pub fn net_saved_bytes(&self) -> i64 {
        self.total_saved_bytes() as i64 - self.workspace_bytes() as i64
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "echo pass: {} segments, {:.1} MiB feature maps -> {:.1} MiB workspace",
            self.segments.len(),
            self.total_saved_bytes() as f64 / (1 << 20) as f64,
            self.workspace_bytes() as f64 / (1 << 20) as f64,
        )?;
        if let (Some(peak), Some(slots)) = (self.planned_peak_bytes, self.slot_count) {
            writeln!(
                f,
                "  exec plan: {:.1} MiB planned peak, {slots} reusable slots",
                peak as f64 / (1 << 20) as f64,
            )?;
        }
        if let Some(s) = &self.search {
            writeln!(
                f,
                "  search: {} candidates, {:.1} MiB searched vs {:.1} MiB heuristic, \
                 {:.3} GFLOP replays (budget {:.3})",
                s.candidates_explored,
                s.searched_peak_bytes as f64 / (1 << 20) as f64,
                s.heuristic_peak_bytes as f64 / (1 << 20) as f64,
                s.recompute_flops as f64 / 1e9,
                s.budget_flops as f64 / 1e9,
            )?;
        }
        for (i, s) in self.segments.iter().enumerate() {
            writeln!(
                f,
                "  segment {i} (pool {}): {:?} [{} KiB / boundary {} KiB]",
                s.pool,
                s.node_names,
                s.intermediate_bytes >> 10,
                s.boundary_bytes >> 10
            )?;
        }
        for s in &self.stages {
            writeln!(
                f,
                "  stage {}: {} ops, {} params, {} KiB cut",
                s.index,
                s.ops,
                s.params,
                s.send_bytes >> 10,
            )?;
        }
        for p in &self.passes {
            writeln!(
                f,
                "  pass {}: {} rewrites, launches {} -> {}, {:.0} us{}",
                p.pass,
                p.rewrites,
                p.fwd_launches_before,
                p.fwd_launches_after,
                p.wall_us,
                if p.bit_exact {
                    ""
                } else {
                    " (flagged: not bit-exact)"
                },
            )?;
        }
        Ok(())
    }
}

/// The result of compilation: an executor-ready plan plus the report.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Stash policies for the executor.
    pub plan: StashPlan,
    /// What the pass found.
    pub report: PassReport,
    /// Ahead-of-time execution plan for training the first protected
    /// target with the compile-time binding shapes. `None` when compilation
    /// had no target or ran from a bare shape table
    /// ([`EchoCompiler::compile_with_shapes`]). Shareable across replicas.
    pub exec_plan: Option<Arc<ExecPlan>>,
    /// The rewritten graph, when a structural pass (fusion, CSE merging,
    /// layout selection) changed it. Node ids are preserved, so existing
    /// bindings, parameters and targets stay valid — but the executor
    /// must swap this graph in ([`Executor::set_graph`]
    /// (echo_graph::Executor::set_graph)) before using the plan;
    /// [`EchoCompiler::attach`] does so automatically. `None` means the
    /// caller's graph is untouched.
    pub graph: Option<Arc<Graph>>,
    /// The pipeline-stage partition, when [`EchoConfig::pipeline_stages`]
    /// exceeds 1 and compilation ran a training pipeline. Built over the
    /// final (possibly rewritten) graph, so its stage graphs are
    /// consistent with [`CompiledPlan::graph`].
    pub partition: Option<StagePartition>,
}

/// The Echo compiler.
///
/// # Example
///
/// ```
/// use echo::{EchoCompiler, EchoConfig};
/// use echo_models::{NmtHyper, NmtModel};
///
/// let model = NmtModel::build(NmtHyper::tiny(100, 90));
/// let compiled = EchoCompiler::new(EchoConfig::default()).compile(
///     &model.graph,
///     &model.symbolic_bindings(4),
///     &model.param_shapes(),
///     &[model.loss, model.logits],
/// )?;
/// assert_eq!(compiled.report.segments.len(), model.hyper.decoder_steps());
/// # Ok::<(), echo::EchoError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EchoCompiler {
    config: EchoConfig,
}

impl EchoCompiler {
    /// Creates a compiler.
    pub fn new(config: EchoConfig) -> Self {
        EchoCompiler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EchoConfig {
        &self.config
    }

    /// Shared pipeline front end: clones the caller's graph behind an
    /// `Arc`, runs the configured structural passes (CSE, fusion, layout
    /// selection), and re-derives the shape table from the rewritten IR.
    fn front_end(
        &self,
        graph: &Graph,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        protected: &[NodeId],
        mode: PipelineMode,
    ) -> Result<(crate::pipeline::StructuralOutput, ShapeTable), EchoError> {
        let out = run_structural_passes(
            &self.config,
            Arc::new(graph.clone()),
            binding_shapes,
            param_shapes,
            protected,
            mode,
        )?;
        let shapes = infer_shapes_from(out.gir.graph(), binding_shapes, param_shapes)?;
        Ok((out, shapes))
    }

    /// Compiles for training: runs the structural pass pipeline, then the
    /// O-shape (or searched) stash-selection pass, then lowers to an
    /// execution plan when a target is given.
    ///
    /// `protected` nodes (execution targets such as the loss or logits)
    /// are never recomputed or fused away.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference, pass-equivalence and plan-validation
    /// failures.
    pub fn compile(
        &self,
        graph: &Graph,
        bindings: &HashMap<NodeId, Tensor>,
        param_shapes: &HashMap<NodeId, Shape>,
        protected: &[NodeId],
    ) -> Result<CompiledPlan, EchoError> {
        let binding_shapes: HashMap<NodeId, Shape> = bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let (fe, shapes) = self.front_end(
            graph,
            &binding_shapes,
            param_shapes,
            protected,
            PipelineMode::Training,
        )?;
        let graph_r = Arc::clone(fe.gir.graph());
        let mut passes = fe.passes;

        // Pipeline-stage partitioning runs on the final IR, before stash
        // selection: the partition depends only on the graph structure,
        // and the per-stage stash plans are later derived from whatever
        // plan this compilation produces
        // ([`StagePartition::stage_plans`]).
        let mut partition = None;
        let mut stage_summaries = Vec::new();
        if self.config.pipeline_stages > 1 {
            let start = Instant::now();
            let part = partition_stages(&fe.gir, self.config.pipeline_stages)?;
            let cut_bytes = part.cut_bytes();
            stage_summaries = part
                .stages()
                .iter()
                .map(|sp| StageSummary {
                    index: sp.index,
                    ops: sp.owned_ops(),
                    params: sp.params.len(),
                    send_bytes: cut_bytes.get(sp.index).copied().unwrap_or(0),
                })
                .collect();
            passes.push(stage_trace(
                &fe.gir,
                "stage-partition",
                self.config.pipeline_stages,
                start.elapsed().as_secs_f64() * 1e6,
            ));
            partition = Some(part);
        }

        // Stash-selection stage. The exact-cost search needs a target (it
        // scores candidates by their lowered plans, so selection and
        // lowering run together inside it); without one it falls back to
        // the heuristic below.
        let start = Instant::now();
        if let (true, StashSelection::Search { flop_budget }, Some(_)) = (
            self.config.recompute,
            self.config.selection,
            protected.first(),
        ) {
            let outcome = StashSearch::new(SearchConfig {
                flop_budget,
                ..SearchConfig::default()
            })
            .run(
                &graph_r,
                &shapes,
                &binding_shapes,
                param_shapes,
                protected,
                &self.config.oshape,
                self.config.share_workspace,
                ExecOptions::default(),
            )?;
            let mut report = self.report(&graph_r, &outcome.segments);
            report.planned_peak_bytes = Some(outcome.exec_plan.planned_peak_bytes());
            report.slot_count = Some(outcome.exec_plan.slot_count());
            report.search = Some(outcome.report);
            passes.push(stage_trace(
                &fe.gir,
                "stash-select(search)+lower",
                report.segments.len(),
                start.elapsed().as_secs_f64() * 1e6,
            ));
            report.passes = passes;
            report.stages = stage_summaries;
            return Ok(CompiledPlan {
                plan: outcome.plan,
                report,
                exec_plan: Some(outcome.exec_plan),
                graph: fe.rewritten.then_some(graph_r),
                partition,
            });
        }
        let (plan, mut report) = if self.config.recompute {
            let segments = find_segments(&graph_r, &shapes, &self.config.oshape, protected);
            let plan = build_plan(&segments, self.config.share_workspace);
            let report = self.report(&graph_r, &segments);
            (plan, report)
        } else {
            (StashPlan::stash_all(), PassReport::default())
        };
        passes.push(stage_trace(
            &fe.gir,
            "stash-select",
            report.segments.len(),
            start.elapsed().as_secs_f64() * 1e6,
        ));

        // Lowering stage: GIR -> launch-level ExecPlan tables.
        let mut exec_plan = None;
        if let Some(&target) = protected.first() {
            let start = Instant::now();
            let lowered = ExecPlan::build(
                &graph_r,
                &plan,
                ExecOptions::default(),
                &binding_shapes,
                param_shapes,
                target,
            )?;
            report.planned_peak_bytes = Some(lowered.planned_peak_bytes());
            report.slot_count = Some(lowered.slot_count());
            passes.push(stage_trace(
                &fe.gir,
                "lower",
                lowered.launch_count(),
                start.elapsed().as_secs_f64() * 1e6,
            ));
            exec_plan = Some(Arc::new(lowered));
        }
        report.passes = passes;
        report.stages = stage_summaries;
        Ok(CompiledPlan {
            plan,
            report,
            exec_plan,
            graph: fe.rewritten.then_some(graph_r),
            partition,
        })
    }

    /// Compiles and installs the plan into an executor in one step — the
    /// "recompile with Echo" entry point model code uses:
    ///
    /// ```
    /// use echo::{EchoCompiler, EchoConfig};
    /// use echo_graph::Executor;
    /// use echo_memory::DeviceMemory;
    /// use echo_models::{NmtHyper, NmtModel};
    /// use std::sync::Arc;
    ///
    /// let model = NmtModel::build(NmtHyper::tiny(100, 90));
    /// let mut exec = Executor::new(
    ///     Arc::clone(&model.graph),
    ///     echo_graph::StashPlan::stash_all(),
    ///     DeviceMemory::titan_xp(),
    /// );
    /// let report = EchoCompiler::new(EchoConfig::default()).attach(
    ///     &mut exec,
    ///     &model.symbolic_bindings(4),
    ///     &model.param_shapes(),
    ///     &[model.loss, model.logits],
    /// )?;
    /// assert!(!report.segments.is_empty());
    /// # Ok::<(), echo::EchoError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures; on error the executor's plan is
    /// left untouched.
    pub fn attach(
        &self,
        exec: &mut crate::Executor,
        bindings: &HashMap<NodeId, Tensor>,
        param_shapes: &HashMap<NodeId, Shape>,
        protected: &[NodeId],
    ) -> Result<PassReport, EchoError> {
        let compiled = self.compile(exec.graph(), bindings, param_shapes, protected)?;
        if let Some(graph) = &compiled.graph {
            exec.set_graph(Arc::clone(graph))?;
        }
        exec.set_plan(compiled.plan);
        if let Some(exec_plan) = compiled.exec_plan {
            exec.set_exec_plan(exec_plan)?;
        }
        Ok(compiled.report)
    }

    /// Compiles an inference-mode execution plan over `outputs`.
    ///
    /// Serving has no backward pass, so the recomputation pass is moot
    /// (there is nothing to rematerialize *for*) and the stash plan is
    /// trivially stash-all with zero stash traffic: the resulting
    /// [`ExecPlan`] carries no backward schedule, no stash table and no
    /// gradient slots, which is why its slot arena and launch table are
    /// strictly smaller than the training plan's for the same graph and
    /// shapes. `outputs` is the full set of values a serving step needs —
    /// e.g. logits plus each layer's final recurrent state.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and plan-validation failures; `outputs`
    /// must be non-empty.
    pub fn compile_inference(
        &self,
        graph: &Graph,
        bindings: &HashMap<NodeId, Tensor>,
        param_shapes: &HashMap<NodeId, Shape>,
        outputs: &[NodeId],
    ) -> Result<CompiledPlan, EchoError> {
        let binding_shapes: HashMap<NodeId, Shape> = bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let (fe, _) = self.front_end(
            graph,
            &binding_shapes,
            param_shapes,
            outputs,
            PipelineMode::Inference,
        )?;
        let graph_r = Arc::clone(fe.gir.graph());
        let mut passes = fe.passes;
        let start = Instant::now();
        let exec_plan =
            ExecPlan::build_inference(&graph_r, &binding_shapes, param_shapes, outputs)?;
        passes.push(stage_trace(
            &fe.gir,
            "lower",
            exec_plan.launch_count(),
            start.elapsed().as_secs_f64() * 1e6,
        ));
        let report = PassReport {
            planned_peak_bytes: Some(exec_plan.planned_peak_bytes()),
            slot_count: Some(exec_plan.slot_count()),
            passes,
            ..PassReport::default()
        };
        Ok(CompiledPlan {
            plan: StashPlan::stash_all(),
            report,
            exec_plan: Some(Arc::new(exec_plan)),
            graph: fe.rewritten.then_some(graph_r),
            partition: None,
        })
    }

    /// Compiles an inference plan and installs it into `exec` in one step
    /// — the serving counterpart of [`EchoCompiler::attach`].
    ///
    /// # Errors
    ///
    /// Propagates compilation failures; on error the executor is left
    /// untouched.
    pub fn attach_inference(
        &self,
        exec: &mut crate::Executor,
        bindings: &HashMap<NodeId, Tensor>,
        param_shapes: &HashMap<NodeId, Shape>,
        outputs: &[NodeId],
    ) -> Result<PassReport, EchoError> {
        let compiled = self.compile_inference(exec.graph(), bindings, param_shapes, outputs)?;
        if let Some(graph) = &compiled.graph {
            exec.set_graph(Arc::clone(graph))?;
        }
        exec.set_plan(compiled.plan);
        if let Some(exec_plan) = compiled.exec_plan {
            exec.set_exec_plan(exec_plan)?;
        }
        Ok(compiled.report)
    }

    /// Like [`EchoCompiler::compile`] but reusing an existing shape table
    /// and never lowering (no execution plan is built). Same pipeline,
    /// training configuration.
    ///
    /// # Panics
    ///
    /// Panics if a structural pass fails on a graph whose shapes already
    /// inferred — a pipeline bug, not an input condition.
    pub fn compile_with_shapes(
        &self,
        graph: &Graph,
        shapes: &ShapeTable,
        protected: &[NodeId],
    ) -> CompiledPlan {
        let mut binding_shapes: HashMap<NodeId, Shape> = HashMap::new();
        let mut param_shapes: HashMap<NodeId, Shape> = HashMap::new();
        for node in graph.nodes() {
            match &node.kind {
                echo_graph::NodeKind::Input => {
                    binding_shapes.insert(node.id, shapes.shape(node.id).clone());
                }
                echo_graph::NodeKind::Param => {
                    param_shapes.insert(node.id, shapes.shape(node.id).clone());
                }
                echo_graph::NodeKind::Op { .. } => {}
            }
        }
        let (fe, shapes_r) = self
            .front_end(
                graph,
                &binding_shapes,
                &param_shapes,
                protected,
                PipelineMode::Training,
            )
            .expect("structural passes failed on a shape-checked graph");
        let graph_r = Arc::clone(fe.gir.graph());
        let mut passes = fe.passes;
        let start = Instant::now();
        let (plan, mut report) = if self.config.recompute {
            let segments = find_segments(&graph_r, &shapes_r, &self.config.oshape, protected);
            let plan = build_plan(&segments, self.config.share_workspace);
            let report = self.report(&graph_r, &segments);
            (plan, report)
        } else {
            (StashPlan::stash_all(), PassReport::default())
        };
        passes.push(stage_trace(
            &fe.gir,
            "stash-select",
            report.segments.len(),
            start.elapsed().as_secs_f64() * 1e6,
        ));
        report.passes = passes;
        CompiledPlan {
            plan,
            report,
            exec_plan: None,
            graph: fe.rewritten.then_some(graph_r),
            partition: None,
        }
    }

    fn report(&self, graph: &Graph, segments: &[SegmentInfo]) -> PassReport {
        PassReport {
            segments: segments
                .iter()
                .map(|s| SegmentReport {
                    node_names: s
                        .nodes
                        .iter()
                        .map(|&n| graph.nodes()[n.index()].name.clone())
                        .collect(),
                    intermediate_bytes: s.intermediate_bytes,
                    boundary_bytes: s.boundary_bytes,
                    pool: s.pool,
                })
                .collect(),
            planned_peak_bytes: None,
            slot_count: None,
            search: None,
            passes: Vec::new(),
            stages: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_graph::{ExecOptions, Executor, StashPolicy};
    use echo_memory::DeviceMemory;
    use echo_models::{NmtHyper, NmtModel};
    use std::sync::Arc;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(8 << 30, 0, 0.0)
    }

    fn tiny_nmt() -> NmtModel {
        NmtModel::build(NmtHyper::tiny(120, 100))
    }

    #[test]
    fn pass_discovers_every_decoder_attention_segment() {
        let model = tiny_nmt();
        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &model.symbolic_bindings(8),
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        assert_eq!(
            compiled.report.segments.len(),
            model.hyper.decoder_steps(),
            "one segment per decoder step:\n{}",
            compiled.report
        );
        // All segments share one workspace pool (identical structure).
        let pools: std::collections::HashSet<usize> =
            compiled.report.segments.iter().map(|s| s.pool).collect();
        assert_eq!(pools.len(), 1);
        // The discovered nodes are exactly the hand-identified scoring
        // interiors (broadcast-add, layernorm, tanh — the score vector
        // itself is small and stays stashed).
        for (seg, hand) in compiled
            .report
            .segments
            .iter()
            .zip(&model.attention_segments)
        {
            let hand_names: Vec<String> = hand
                .iter()
                .map(|&n| model.graph.nodes()[n.index()].name.clone())
                .collect();
            for name in &seg.node_names {
                assert!(
                    hand_names.contains(name),
                    "pass found unexpected node {name}; hand set {hand_names:?}"
                );
            }
            assert!(seg.node_names.len() >= 3, "{:?}", seg.node_names);
        }
    }

    #[test]
    fn baseline_config_stashes_everything() {
        let model = tiny_nmt();
        let compiled = EchoCompiler::new(EchoConfig::baseline())
            .compile(
                &model.graph,
                &model.symbolic_bindings(8),
                &model.param_shapes(),
                &[],
            )
            .unwrap();
        assert_eq!(compiled.plan.recompute_count(), 0);
        assert!(compiled.report.segments.is_empty());
    }

    #[test]
    fn compiled_plan_runs_bit_exact_and_smaller() {
        let model = tiny_nmt();
        let corpus = echo_data::ParallelCorpus::synthetic(
            echo_data::Vocab::new(120),
            echo_data::Vocab::new(100),
            40,
            4..=12,
            3,
        );
        let batches = echo_data::NmtBatch::bucketed(corpus.pairs(), 8);
        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &model.bindings(&batches[0]),
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();

        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
            model.bind_params(&mut exec, 9).unwrap();
            let stats = exec
                .train_step(
                    &model.bindings(&batches[0]),
                    model.loss,
                    ExecOptions::default(),
                    None,
                )
                .unwrap();
            (stats, m.peak_bytes())
        };
        let (base, peak_base) = run(StashPlan::stash_all());
        let (opt, peak_opt) = run(compiled.plan.clone());
        assert_eq!(base.loss, opt.loss, "bit-exact training");
        assert!(opt.replays >= 1);
        assert!(
            peak_opt < peak_base,
            "compiled plan must shrink the footprint: {peak_opt} vs {peak_base}"
        );
        assert!(compiled.report.net_saved_bytes() > 0);
    }

    #[test]
    fn compile_builds_exec_plan_and_attach_installs_it() {
        let model = tiny_nmt();
        let bindings = model.symbolic_bindings(8);
        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        let exec_plan = compiled.exec_plan.as_ref().expect("plan built");
        assert_eq!(
            compiled.report.planned_peak_bytes,
            Some(exec_plan.planned_peak_bytes())
        );
        assert_eq!(compiled.report.slot_count, Some(exec_plan.slot_count()));
        assert!(exec_plan.slot_count() > 0);
        // Echo's planned peak sits strictly below the stash-all baseline's.
        let baseline = EchoCompiler::new(EchoConfig::baseline())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        assert!(
            compiled.report.planned_peak_bytes < baseline.report.planned_peak_bytes,
            "echo {:?} vs stash-all {:?}",
            compiled.report.planned_peak_bytes,
            baseline.report.planned_peak_bytes
        );
        // attach() wires the same plan into the executor.
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        let report = EchoCompiler::new(EchoConfig::default())
            .attach(
                &mut exec,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        assert_eq!(
            report.planned_peak_bytes,
            compiled.report.planned_peak_bytes
        );
        let installed = exec.exec_plan().expect("attach installs exec plan");
        assert_eq!(
            installed.planned_peak_bytes(),
            exec_plan.planned_peak_bytes()
        );
        assert!(report.to_string().contains("exec plan:"));
    }

    #[test]
    fn inference_compile_is_leaner_and_attaches() {
        use echo_models::{WordLmDecoder, WordLmHyper};
        let dec = WordLmDecoder::build(WordLmHyper::tiny(29, echo_rnn::LstmBackend::Default));
        let bindings = dec.symbolic_bindings(4);
        let mut exec = Executor::new(Arc::clone(&dec.graph), StashPlan::stash_all(), mem());
        dec.bind_params(&mut exec, 3).unwrap();
        let param_shapes: HashMap<echo_graph::NodeId, echo_tensor::Shape> = exec
            .param_ids()
            .into_iter()
            .map(|id| (id, exec.param(id).unwrap().shape().clone()))
            .collect();
        let compiler = EchoCompiler::new(EchoConfig::default());
        let report = compiler
            .attach_inference(&mut exec, &bindings, &param_shapes, dec.outputs())
            .unwrap();
        let installed = exec.exec_plan().expect("attach installs the plan");
        assert!(!installed.training());
        assert_eq!(
            report.planned_peak_bytes,
            Some(installed.planned_peak_bytes())
        );
        // Training compilation of the same graph/shapes must plan a
        // strictly larger footprint than inference.
        let training = compiler
            .compile(&dec.graph, &bindings, &param_shapes, &[dec.logits])
            .unwrap();
        assert!(
            report.planned_peak_bytes < training.report.planned_peak_bytes,
            "inference {:?} vs training {:?}",
            report.planned_peak_bytes,
            training.report.planned_peak_bytes
        );
    }

    #[test]
    fn report_displays_summary() {
        let model = tiny_nmt();
        let compiled = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &model.symbolic_bindings(4),
                &model.param_shapes(),
                &[model.loss],
            )
            .unwrap();
        let text = compiled.report.to_string();
        assert!(text.contains("segments"));
        assert!(text.contains("attn_e0"));
        // Every recompute policy references a valid pool.
        for seg in &compiled.report.segments {
            let _ = seg.pool;
        }
        let policies_set = compiled.plan.recompute_count();
        assert!(policies_set >= compiled.report.segments.len() * 3);
        // Sanity: at least one node of segment 0 has Recompute policy.
        let first = model.attention_segments[0][0];
        assert!(matches!(
            compiled.plan.policy(first),
            StashPolicy::Recompute(_)
        ));
    }
}
