//! Echo: compiler-based GPU memory footprint reduction for LSTM RNN
//! training.
//!
//! This crate is the paper's primary contribution — a compiler over the
//! [`echo_graph`] IR that makes two optimizations transparently:
//!
//! 1. **Selective recomputation** (*partial forward propagation*, paper
//!    §4.1; the "Echo" pass of the ISCA'20 version). [`analysis`] infers
//!    every node's shape; [`oshape`] finds *O-shape* segments — connected
//!    regions of cheap (GEMM-free) operators whose stashed intermediates
//!    dwarf their boundary inputs — and produces a
//!    [`StashPlan`](echo_graph::StashPlan) that drops those intermediates
//!    in the forward pass and replays the segment during backward, with
//!    structurally identical segments (one per decoder time step) sharing
//!    a single workspace pool.
//! 2. **Data layout selection** (§4.2, §5.4). [`mod@autotune`] re-exports the
//!    microbenchmark that transparently picks between the `Default`,
//!    `CuDNN` and `EcoRNN` LSTM backends for the user's hyperparameters.
//!
//! The [`EchoCompiler`] front-end ties both together.
//!
//! # Example
//!
//! ```
//! use echo::{EchoCompiler, EchoConfig};
//! use echo_models::{NmtHyper, NmtModel};
//! use echo_rnn::LstmBackend;
//!
//! let model = NmtModel::build(NmtHyper::tiny(100, 90));
//! let compiler = EchoCompiler::new(EchoConfig::default());
//! let compiled = compiler.compile(
//!     &model.graph,
//!     &model.symbolic_bindings(4),
//!     &model.param_shapes(),
//!     &[model.loss, model.logits],
//! )?;
//! // One recomputation segment per decoder step was discovered.
//! assert_eq!(compiled.report.segments.len(), model.hyper.decoder_steps());
//! # Ok::<(), echo::EchoError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
pub mod compiler;
pub mod oshape;
pub mod pipeline;
pub mod search;

pub use analysis::ShapeTable;
pub use baselines::{chen_sqrt_plan, sqrt_stride, ChenReport};
pub use compiler::{
    CompiledPlan, EchoCompiler, EchoConfig, EchoError, PassReport, SegmentReport, StageSummary,
    StashSelection,
};
pub use oshape::{OshapeConfig, SegmentInfo};
pub use pipeline::PipelineMode;
pub use search::{segments_from_plan, SearchConfig, SearchOutcome, SearchReport, StashSearch};

/// Re-export of the autotuning microbenchmark (paper §5.4).
pub use echo_rnn::autotune;

/// Re-export of the executor the compiled plans run on.
pub use echo_graph::Executor;

/// Re-exports of the graph-level IR the pass pipeline rewrites.
pub use echo_graph::{Gir, PassTrace};
