//! O-shape segment detection — the analysis at the heart of the Echo
//! pass (paper §4.1.1).
//!
//! A subgraph is *O-shape* when its boundary inputs and outputs are small
//! but its stashed intermediates are large. The detector:
//!
//! 1. marks **candidate nodes**: GEMM-free operator categories
//!    (element-wise, activation, attention, transpose) whose output (plus
//!    operator-private saved tensors) is large — at least
//!    `size_fraction` of the largest op output in the graph, so cheap glue
//!    ops (gate slices, score vectors) never merge segments across time
//!    steps;
//! 2. groups connected candidates into **segments** (union-find over graph
//!    edges);
//! 3. keeps a segment only when its intermediate bytes exceed
//!    `ratio_threshold ×` its boundary-input bytes — the O-shape test;
//! 4. assigns segments with identical structural **signatures** (same op
//!    sequence and shapes — i.e. the same computation at different time
//!    steps) to one workspace pool, which is what keeps the recomputation
//!    workspace `O(B·T·H)` (§4.1.2).

use crate::analysis::ShapeTable;
use echo_device::KernelCategory;
use echo_graph::{Graph, NodeId, NodeKind, SegmentId, StashPlan, StashPolicy};
use echo_tensor::Shape;
use std::collections::{HashMap, HashSet};

/// Tunables of the detector.
#[derive(Debug, Clone, Copy)]
pub struct OshapeConfig {
    /// A node is a candidate only if its intermediate bytes are at least
    /// this fraction of the graph's largest op output.
    pub size_fraction: f64,
    /// A segment is kept only if `intermediate / boundary ≥` this ratio.
    pub ratio_threshold: f64,
}

impl Default for OshapeConfig {
    fn default() -> Self {
        OshapeConfig {
            size_fraction: 0.5,
            ratio_threshold: 2.0,
        }
    }
}

impl OshapeConfig {
    /// A permissive configuration for candidate *generation* rather than
    /// final judgement: the ratio test is disabled entirely. Used by the
    /// stash-set search ([`crate::StashSearch`]), where the exact plan
    /// cost model replaces the proxy the ratio threshold implements — a
    /// segment the heuristic would reject can still be pure savings once
    /// its workspace is pool-shared with its siblings.
    pub fn relaxed(size_fraction: f64) -> Self {
        OshapeConfig {
            size_fraction,
            ratio_threshold: 0.0,
        }
    }
}

/// One discovered O-shape segment.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Nodes to recompute, in topological order.
    pub nodes: Vec<NodeId>,
    /// Bytes of intermediates (outputs + saved) the plan avoids stashing.
    pub intermediate_bytes: u64,
    /// Bytes of the segment's boundary inputs.
    pub boundary_bytes: u64,
    /// Workspace pool shared with structurally identical segments.
    pub pool: usize,
    /// Structural signature (op name + output shape per node).
    pub signature: Vec<(String, Shape)>,
}

impl SegmentInfo {
    /// The O-shape ratio.
    pub fn ratio(&self) -> f64 {
        self.intermediate_bytes as f64 / self.boundary_bytes.max(1) as f64
    }
}

/// Operator categories eligible for recomputation: cheap relative to the
/// fully-connected layers, per the paper's §4.1 requirement that the
/// replayed subgraph contain no GEMMs.
fn eligible(category: KernelCategory) -> bool {
    matches!(
        category,
        KernelCategory::Elementwise
            | KernelCategory::Activation
            | KernelCategory::Attention
            | KernelCategory::Transpose
    )
}

struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Per-node intermediate bytes: output plus operator-private saved state.
fn intermediate_bytes(graph: &Graph, shapes: &ShapeTable, id: NodeId) -> u64 {
    let node = &graph.nodes()[id.index()];
    let out = shapes.bytes(id);
    match &node.kind {
        NodeKind::Op { op, inputs } => {
            let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| shapes.shape(i)).collect();
            out + op.saved_bytes(&in_shapes, shapes.shape(id))
        }
        _ => out,
    }
}

/// Runs the detector over `graph` with `protected` nodes never recomputed
/// (execution targets such as the loss and logits).
pub fn find_segments(
    graph: &Graph,
    shapes: &ShapeTable,
    config: &OshapeConfig,
    protected: &[NodeId],
) -> Vec<SegmentInfo> {
    let protected: HashSet<NodeId> = protected.iter().copied().collect();
    // Size reference: the largest output among *eligible-category* ops, so
    // huge GEMM products (logits, hidden sequences) don't skew the filter.
    let max_out = shapes.max_bytes_where(|id| {
        id.index() < graph.len()
            && graph.nodes()[id.index()]
                .op()
                .is_some_and(|op| eligible(op.category()))
    });
    let threshold = (max_out as f64 * config.size_fraction) as u64;

    // 1. Candidates.
    let candidate: Vec<bool> = graph
        .nodes()
        .iter()
        .map(|node| {
            if protected.contains(&node.id) {
                return false;
            }
            match &node.kind {
                NodeKind::Op { op, .. } => {
                    eligible(op.category())
                        && intermediate_bytes(graph, shapes, node.id) >= threshold.max(1)
                }
                _ => false,
            }
        })
        .collect();

    // 2. Connected components among candidates.
    let mut uf = UnionFind::new(graph.len());
    for node in graph.nodes() {
        if !candidate[node.id.index()] {
            continue;
        }
        for &input in node.inputs() {
            if candidate[input.index()] {
                uf.union(node.id.index(), input.index());
            }
        }
    }
    let mut components: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for node in graph.nodes() {
        if candidate[node.id.index()] {
            components
                .entry(uf.find(node.id.index()))
                .or_default()
                .push(node.id);
        }
    }

    // 3. O-shape test per component, with *amortized* boundary costs: a
    // boundary tensor shared by many components (the projected encoder
    // keys, identical across all decoder steps) only charges each
    // component its share — the paper's "average storage complexity is
    // only O(B x H)" argument (§4.1.1).
    let mut component_list: Vec<Vec<NodeId>> = components.into_values().collect();
    for nodes in &mut component_list {
        nodes.sort();
    }
    component_list.sort_by_key(|nodes| nodes[0]);
    let mut boundary_uses: HashMap<NodeId, u64> = HashMap::new();
    let mut component_boundaries: Vec<HashSet<NodeId>> = Vec::new();
    for nodes in &component_list {
        let members: HashSet<NodeId> = nodes.iter().copied().collect();
        let mut boundary: HashSet<NodeId> = HashSet::new();
        for &id in nodes {
            for &input in graph.nodes()[id.index()].inputs() {
                if !members.contains(&input) {
                    boundary.insert(input);
                }
            }
        }
        for &b in &boundary {
            *boundary_uses.entry(b).or_default() += 1;
        }
        component_boundaries.push(boundary);
    }

    let mut segments = Vec::new();
    for (nodes, boundary) in component_list.into_iter().zip(component_boundaries) {
        let inter: u64 = nodes
            .iter()
            .map(|&id| intermediate_bytes(graph, shapes, id))
            .sum();
        let boundary_bytes: u64 = boundary
            .iter()
            .map(|&b| shapes.bytes(b) / boundary_uses[&b].max(1))
            .sum();
        if (inter as f64) < config.ratio_threshold * boundary_bytes.max(1) as f64 {
            continue;
        }
        let signature: Vec<(String, Shape)> = nodes
            .iter()
            .map(|&id| {
                let node = &graph.nodes()[id.index()];
                (
                    node.op().map(|o| o.name().to_string()).unwrap_or_default(),
                    shapes.shape(id).clone(),
                )
            })
            .collect();
        segments.push(SegmentInfo {
            nodes,
            intermediate_bytes: inter,
            boundary_bytes,
            pool: 0, // assigned below
            signature,
        });
    }

    // Deterministic order, then pool assignment by signature.
    segments.sort_by_key(|s| s.nodes[0]);
    let mut pools: HashMap<Vec<(String, Shape)>, usize> = HashMap::new();
    for seg in &mut segments {
        let next = pools.len();
        seg.pool = *pools.entry(seg.signature.clone()).or_insert(next);
    }
    segments
}

/// Turns discovered segments into an executor [`StashPlan`].
///
/// With `share_workspace` disabled (an ablation), every segment leases
/// from its own pool — reproducing the `O(B·T²·H)` workspace spike the
/// paper warns about in §4.1.2... except that the executor's sequential
/// backward keeps only one lease alive at a time, so the cost shows up as
/// per-pool retained buffers instead.
pub fn build_plan(segments: &[SegmentInfo], share_workspace: bool) -> StashPlan {
    let mut plan = StashPlan::stash_all();
    for (id, seg) in segments.iter().enumerate() {
        let pool = if share_workspace { seg.pool } else { id };
        for &node in &seg.nodes {
            plan.set(node, StashPolicy::Recompute(SegmentId { id, pool }));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::infer_shapes;
    use echo_memory::LayerKind;
    use echo_ops::{Activation, BroadcastAddQuery, FullyConnected, ScoreReduce};
    use echo_tensor::Tensor;
    use std::sync::Arc;

    /// keys [T,B,H] shared by two decoder steps, each: broadcast -> tanh
    /// -> score — the textbook O-shape (amortization over steps is what
    /// makes the inputs "small", paper §4.1.1).
    type OshapeFixture = (
        Graph,
        HashMap<NodeId, Tensor>,
        HashMap<NodeId, Shape>,
        Vec<Vec<NodeId>>,
    );

    fn oshape_graph() -> OshapeFixture {
        let mut g = Graph::new();
        let keys = g.input("keys", LayerKind::Attention);
        let v = g.param("v", LayerKind::Attention);
        let mut steps = Vec::new();
        let mut bindings = HashMap::new();
        bindings.insert(keys, Tensor::zeros(Shape::d3(50, 4, 64)));
        for t in 0..2 {
            let query = g.input(format!("query{t}"), LayerKind::Attention);
            bindings.insert(query, Tensor::zeros(Shape::d2(4, 64)));
            let e = g.apply(
                format!("e{t}"),
                Arc::new(BroadcastAddQuery),
                &[keys, query],
                LayerKind::Attention,
            );
            let th = g.apply(
                format!("th{t}"),
                Arc::new(Activation::tanh()),
                &[e],
                LayerKind::Attention,
            );
            let score = g.apply(
                format!("score{t}"),
                Arc::new(ScoreReduce),
                &[th, v],
                LayerKind::Attention,
            );
            steps.push(vec![e, th, score]);
        }
        let mut params = HashMap::new();
        params.insert(v, Shape::d1(64));
        (g, bindings, params, steps)
    }

    #[test]
    fn detects_the_attention_scoring_segments() {
        let (g, bindings, params, expected) = oshape_graph();
        let shapes = infer_shapes(&g, &bindings, &params).unwrap();
        let segments = find_segments(&g, &shapes, &OshapeConfig::default(), &[]);
        assert_eq!(segments.len(), 2);
        for (seg, exp) in segments.iter().zip(&expected) {
            // e and th are large candidates; score [B,T] is small and
            // excluded.
            assert_eq!(seg.nodes, exp[..2].to_vec());
            assert!(seg.ratio() > 2.0, "ratio {}", seg.ratio());
        }
        assert_eq!(segments[0].pool, segments[1].pool);
    }

    #[test]
    fn fully_connected_is_never_recomputed() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let w = g.param("w", LayerKind::Rnn);
        let fc = g.apply(
            "fc",
            Arc::new(FullyConnected::new(2048).without_bias()),
            &[x, w],
            LayerKind::Rnn,
        );
        let _th = g.apply("th", Arc::new(Activation::tanh()), &[fc], LayerKind::Rnn);
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::zeros(Shape::d2(64, 512)));
        let mut params = HashMap::new();
        params.insert(w, Shape::d2(2048, 512));
        let shapes = infer_shapes(&g, &bindings, &params).unwrap();
        let segments = find_segments(&g, &shapes, &OshapeConfig::default(), &[]);
        // {th} alone: intermediate [64x2048] vs boundary fc output
        // [64x2048] → ratio 1 → rejected.
        assert!(segments.is_empty(), "{segments:?}");
        let plan = build_plan(&segments, true);
        assert_eq!(plan.policy(fc), StashPolicy::Stash);
    }

    #[test]
    fn protected_nodes_are_skipped() {
        let (g, bindings, params, expected) = oshape_graph();
        let shapes = infer_shapes(&g, &bindings, &params).unwrap();
        let protect: Vec<NodeId> = expected.iter().map(|s| s[0]).collect();
        let segments = find_segments(&g, &shapes, &OshapeConfig::default(), &protect);
        // With each `e` protected only `th` remains per step; its boundary
        // is e's same-sized output, so the ratio test rejects everything.
        assert!(segments.is_empty());
    }

    #[test]
    fn identical_segments_share_a_pool() {
        let mut g = Graph::new();
        let keys = g.input("keys", LayerKind::Attention);
        let mut step_nodes = Vec::new();
        for t in 0..3 {
            let q = g.input(format!("q{t}"), LayerKind::Attention);
            let e = g.apply(
                format!("e{t}"),
                Arc::new(BroadcastAddQuery),
                &[keys, q],
                LayerKind::Attention,
            );
            let th = g.apply(
                format!("th{t}"),
                Arc::new(Activation::tanh()),
                &[e],
                LayerKind::Attention,
            );
            step_nodes.push((q, e, th));
        }
        let mut bindings = HashMap::new();
        bindings.insert(keys, Tensor::zeros(Shape::d3(50, 4, 64)));
        for &(q, _, _) in &step_nodes {
            bindings.insert(q, Tensor::zeros(Shape::d2(4, 64)));
        }
        let shapes = infer_shapes(&g, &bindings, &HashMap::new()).unwrap();
        let segments = find_segments(&g, &shapes, &OshapeConfig::default(), &[]);
        assert_eq!(segments.len(), 3);
        let pools: HashSet<usize> = segments.iter().map(|s| s.pool).collect();
        assert_eq!(pools.len(), 1, "identical segments must share one pool");
        let plan = build_plan(&segments, true);
        assert_eq!(plan.recompute_count(), 6);
        assert_eq!(plan.segment_count(), 3);
    }
}
