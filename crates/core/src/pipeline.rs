//! The explicit pass pipeline: ordered, individually-reported structural
//! rewrites over the graph-level IR.
//!
//! Compilation runs in three stages. First the **structural passes** here
//! rewrite the GIR — CSE, LSTM-cell fusion, elementwise-chain fusion,
//! layout selection, in that order, each one gated by its
//! [`EchoConfig`] flag and defaulting to off so the pipeline is
//! behaviour-preserving unless asked otherwise. Then **stash selection**
//! (the O-shape heuristic or the exact-cost [`StashSearch`]
//! (crate::StashSearch)) chooses the recompute set over the rewritten
//! graph, and finally the GIR **lowers** to the launch-level
//! [`ExecPlan`](echo_graph::ExecPlan) tables. The compiler records every
//! stage as a [`PassTrace`] in the [`PassReport`]
//! (crate::PassReport).
//!
//! After each structural pass the driver re-checks **structural
//! equivalence** ([`echo_graph::check_equivalence`]): same node ids and
//! kinds, identical protected interface, identical protected shapes. A
//! pass that fails the check aborts compilation — every shipped transform
//! is bit-exact by construction or explicitly flagged via
//! [`PassTrace::bit_exact`] (CSE merging, which re-associates gradient
//! accumulation, only runs in inference pipelines where it is exact).
//!
//! Set `ECHO_DUMP_IR=1` (or [`EchoConfig::dump_ir`]) to pretty-print the
//! IR before the pipeline and after every pass that changed it.

use crate::compiler::{EchoConfig, EchoError};
use echo_graph::gir::{
    check_equivalence, common_subexpr_elim, fuse_elementwise_chains, fuse_lstm_cells,
    select_layouts, Gir, PassTrace,
};
use echo_graph::{Graph, NodeId, Result as GraphResult};
use echo_tensor::Shape;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Whether the pipeline compiles for training or forward-only serving —
/// the one knob that separates `compile` from `compile_inference`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Forward + backward: stash selection runs, CSE merging is unsafe.
    Training,
    /// Forward only: no stashing to choose, CSE may merge freely.
    Inference,
}

/// What the structural stage produced: the (possibly rewritten) GIR,
/// one trace per pass that ran, and whether any rewrite happened.
pub(crate) struct StructuralOutput {
    /// The IR after all structural passes.
    pub gir: Gir,
    /// Per-pass traces, in execution order.
    pub passes: Vec<PassTrace>,
    /// True when some pass rewrote the graph — the compiled plan must
    /// then carry the rewritten graph for the executor to swap in.
    pub rewritten: bool,
}

/// Runs the configured structural passes over `graph`.
pub(crate) fn run_structural_passes(
    config: &EchoConfig,
    graph: Arc<Graph>,
    binding_shapes: &HashMap<NodeId, Shape>,
    param_shapes: &HashMap<NodeId, Shape>,
    protected: &[NodeId],
    mode: PipelineMode,
) -> Result<StructuralOutput, EchoError> {
    let dump = config.dump_ir || env_dump();
    let mut gir =
        Gir::from_graph(graph, binding_shapes, param_shapes, protected).map_err(EchoError::from)?;
    if dump {
        eprintln!("== GIR (pipeline input)\n{}", gir.dump());
    }
    let original = Arc::clone(gir.graph());
    let mut passes = Vec::new();
    if config.cse {
        // Merging re-associates gradient accumulation on the surviving
        // node, so training pipelines only *detect* duplicates (the trace
        // reports the count); inference pipelines merge — forward-only
        // execution makes the rewrite bit-exact.
        let merge = mode == PipelineMode::Inference;
        run_pass(&mut gir, &mut passes, "cse", true, dump, |g| {
            common_subexpr_elim(g, merge)
        })?;
    }
    if config.fusion {
        run_pass(
            &mut gir,
            &mut passes,
            "fuse-lstm-cell",
            true,
            dump,
            fuse_lstm_cells,
        )?;
        run_pass(
            &mut gir,
            &mut passes,
            "fuse-ewise-chain",
            true,
            dump,
            fuse_elementwise_chains,
        )?;
    }
    if config.layout_select {
        run_pass(&mut gir, &mut passes, "layout", true, dump, select_layouts)?;
    }
    let rewritten = !Arc::ptr_eq(&original, gir.graph());
    Ok(StructuralOutput {
        gir,
        passes,
        rewritten,
    })
}

/// Wraps one structural pass: snapshot metrics, time it, verify
/// structural equivalence, dump the IR when it changed, record the trace.
fn run_pass(
    gir: &mut Gir,
    passes: &mut Vec<PassTrace>,
    name: &str,
    bit_exact: bool,
    dump: bool,
    pass: impl FnOnce(&mut Gir) -> GraphResult<usize>,
) -> Result<(), EchoError> {
    let before = gir.clone();
    let (ops_b, launches_b, flops_b, bytes_b) = metrics(gir);
    let start = Instant::now();
    let rewrites = pass(gir).map_err(EchoError::from)?;
    let wall_us = start.elapsed().as_secs_f64() * 1e6;
    check_equivalence(&before, gir).map_err(EchoError::from)?;
    let (ops_a, launches_a, flops_a, bytes_a) = metrics(gir);
    if dump && !Arc::ptr_eq(before.graph(), gir.graph()) {
        eprintln!("== GIR after {name}\n{}", gir.dump());
    }
    passes.push(PassTrace {
        pass: name.to_string(),
        rewrites,
        live_ops_before: ops_b,
        live_ops_after: ops_a,
        fwd_launches_before: launches_b,
        fwd_launches_after: launches_a,
        fwd_flops_before: flops_b,
        fwd_flops_after: flops_a,
        live_bytes_before: bytes_b,
        live_bytes_after: bytes_a,
        wall_us,
        bit_exact,
        equivalence_ok: true,
    });
    Ok(())
}

/// A trace entry for a non-structural stage (stash selection, lowering):
/// the graph is untouched, so before/after metrics coincide.
pub(crate) fn stage_trace(gir: &Gir, name: &str, rewrites: usize, wall_us: f64) -> PassTrace {
    let (ops, launches, flops, bytes) = metrics(gir);
    PassTrace {
        pass: name.to_string(),
        rewrites,
        live_ops_before: ops,
        live_ops_after: ops,
        fwd_launches_before: launches,
        fwd_launches_after: launches,
        fwd_flops_before: flops,
        fwd_flops_after: flops,
        live_bytes_before: bytes,
        live_bytes_after: bytes,
        wall_us,
        bit_exact: true,
        equivalence_ok: true,
    }
}

fn metrics(gir: &Gir) -> (usize, usize, u64, u64) {
    (
        gir.live_ops(),
        gir.forward_launch_count(),
        gir.forward_flops(),
        gir.live_bytes(),
    )
}

fn env_dump() -> bool {
    std::env::var("ECHO_DUMP_IR").is_ok_and(|v| !v.is_empty() && v != "0")
}
