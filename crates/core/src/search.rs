//! Cost-model-driven stash-set search (ROADMAP item: principled
//! recomputation-set selection).
//!
//! The O-shape pass ([`crate::oshape`]) picks recomputation targets with
//! the paper's ratio heuristic. Since the ahead-of-time planner
//! ([`echo_graph::ExecPlan`]) scores any candidate stash set statically
//! and byte-accurately (`planned_peak_bytes` replays the interpreter's
//! exact allocator event sequence), a principled search is just a loop
//! over plans:
//!
//! 1. **Candidate generation.** The heuristic's segment partition, plus
//!    the same detector re-run under *relaxed* configurations (ratio
//!    threshold dropped, size fraction lowered) — the exact cost model
//!    replaces the proxy that those thresholds implement — plus Chen-style
//!    √N checkpoint plans at several strides as cross-checks.
//! 2. **Enumeration.** Within one partition, segments with identical
//!    structural signatures (the same computation at different unrolled
//!    time steps) are interchangeable, so LSTM/GRU chains are searched as
//!    a DP over per-signature-group *counts* along the time axis rather
//!    than over raw subsets. Graphs without that structure (many singleton
//!    groups) fall back to branch-and-bound over segments with the
//!    stash-all peak as the incumbent and an optimistic savings bound for
//!    pruning.
//! 3. **Scoring.** Every surviving candidate is compiled to an
//!    [`ExecPlan`] and judged by its `planned_peak_bytes`, subject to a
//!    recompute-FLOP budget expressed as a multiplier over the
//!    no-recompute step's FLOPs ([`ExecPlan::planned_step_flops`]).
//!
//! The stash-all plan (zero recompute FLOPs, always admissible) and the
//! heuristic plan are scored first, so whenever the heuristic fits the
//! budget the search result dominates it by construction:
//! `searched peak ≤ heuristic peak ≤ stash-all peak`. Degenerate graphs
//! (too few steps, no recomputable interior) produce no candidates; the
//! search then returns the heuristic plan instead of an empty set.

use crate::analysis::ShapeTable;
use crate::baselines::{chen_sqrt_plan, sqrt_stride};
use crate::compiler::EchoError;
use crate::oshape::{build_plan, find_segments, OshapeConfig, SegmentInfo};
use echo_graph::{
    launch_flops, ExecOptions, ExecPlan, Graph, GraphError, NodeId, NodeKind, StashPlan,
    StashPolicy,
};
use echo_tensor::Shape;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tunables of the stash-set search.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Recompute-FLOP budget as a multiplier over the FLOPs of one
    /// no-recompute training step: a candidate whose exact replay FLOPs
    /// exceed `flop_budget × step_flops` is rejected however small its
    /// peak.
    pub flop_budget: f64,
    /// Maximum number of exact plan evaluations (each builds a full
    /// [`ExecPlan`]). The search never exceeds it; hitting it is reported
    /// as `capped`, not silently ignored.
    pub max_plans: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            flop_budget: 0.5,
            max_plans: 512,
        }
    }
}

/// What the search did and found — the numbers behind the
/// [`PassReport`](crate::PassReport) search fields.
#[derive(Debug, Clone, Default)]
pub struct SearchReport {
    /// Exact plan evaluations performed (stash-all and heuristic
    /// baselines included).
    pub candidates_explored: usize,
    /// Planned peak of the chosen plan.
    pub searched_peak_bytes: u64,
    /// Planned peak of the heuristic Echo plan over the same inputs.
    pub heuristic_peak_bytes: u64,
    /// Planned peak of the stash-all baseline.
    pub stash_all_peak_bytes: u64,
    /// Exact replay FLOPs of the chosen plan (from the plan's static
    /// accounting timeline).
    pub recompute_flops: u64,
    /// FLOPs of one no-recompute step — the budget's reference quantity.
    pub step_flops: u64,
    /// The absolute budget: `flop_budget × step_flops`.
    pub budget_flops: u64,
    /// Whether enumeration hit `max_plans` and stopped early.
    pub capped: bool,
    /// Whether the graph was degenerate (no candidate segments anywhere)
    /// and the heuristic plan was returned unsearched.
    pub fell_back_to_heuristic: bool,
}

/// The chosen plan with its exact score and provenance.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Stash policies of the winning candidate.
    pub plan: StashPlan,
    /// The winning candidate's execution plan (the object that scored it).
    pub exec_plan: Arc<ExecPlan>,
    /// Segment descriptions of the winning plan, for reporting.
    pub segments: Vec<SegmentInfo>,
    /// Search statistics.
    pub report: SearchReport,
}

/// One scored candidate.
struct Candidate {
    plan: StashPlan,
    exec_plan: ExecPlan,
    peak: u64,
    flops: u64,
}

/// Enumerates and prunes candidate stash sets for a `(Graph, ExecOptions,
/// binding shapes)` triple, scoring each by its [`ExecPlan`]'s
/// `planned_peak_bytes` and returning the admissible minimum.
#[derive(Debug, Clone, Default)]
pub struct StashSearch {
    config: SearchConfig,
}

impl StashSearch {
    /// Creates a search with the given tunables.
    pub fn new(config: SearchConfig) -> Self {
        StashSearch { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search. `protected` nodes are never recomputed and its
    /// first entry is the execution target the candidate plans are scored
    /// against; `oshape` is the heuristic configuration the baseline plan
    /// (and the strictest candidate family) uses.
    ///
    /// # Errors
    ///
    /// Fails when `protected` is empty (nothing to score against) and
    /// propagates planning failures.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        graph: &Graph,
        shapes: &ShapeTable,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        protected: &[NodeId],
        oshape: &OshapeConfig,
        share_workspace: bool,
        opts: ExecOptions,
    ) -> Result<SearchOutcome, EchoError> {
        let &target = protected.first().ok_or_else(|| {
            EchoError::Graph(GraphError::Operator {
                op: "stash_search".to_string(),
                message: "the search needs a target to score plans against".to_string(),
            })
        })?;

        // Reference scores: the stash-all step defines both the top of the
        // dominance chain and the FLOP budget's denominator.
        let stash_all = StashPlan::stash_all();
        let stash_all_ep = ExecPlan::build(
            graph,
            &stash_all,
            opts,
            binding_shapes,
            param_shapes,
            target,
        )
        .map_err(EchoError::Graph)?;
        let step_flops = stash_all_ep.planned_step_flops();
        let budget_flops = (self.config.flop_budget * step_flops as f64).ceil() as u64;

        let heur_segments = find_segments(graph, shapes, oshape, protected);
        let heuristic_plan = build_plan(&heur_segments, share_workspace);

        let mut ctx = SearchCtx {
            graph,
            shapes,
            binding_shapes,
            param_shapes,
            target,
            opts,
            share_workspace,
            budget_flops,
            max_plans: self.config.max_plans.max(2),
            stash_all_peak: stash_all_ep.planned_peak_bytes(),
            scored: 0,
            capped: false,
            seen: HashSet::new(),
            best: None,
        };

        // Baselines first, outside any cap pressure: stash-all (always
        // admissible) seeds `best`; the heuristic plan makes dominance
        // over it structural whenever it fits the budget.
        let stash_all_peak = ctx.stash_all_peak;
        ctx.seen.insert(Vec::new());
        ctx.scored += 1;
        ctx.offer(Candidate {
            plan: stash_all,
            exec_plan: stash_all_ep,
            peak: stash_all_peak,
            flops: 0,
        });
        let heuristic_peak = match ctx.consider(heuristic_plan.clone())? {
            Some((peak, _)) => peak,
            None => stash_all_peak,
        };

        // Candidate families: the heuristic partition, then the detector
        // re-run with its proxy thresholds relaxed — the exact cost model
        // takes over the judgement those thresholds approximate.
        let relaxed = [
            *oshape,
            OshapeConfig::relaxed(oshape.size_fraction),
            OshapeConfig::relaxed(oshape.size_fraction * 0.5),
            OshapeConfig::relaxed(0.1),
        ];
        let mut families: Vec<Vec<SegmentInfo>> = Vec::new();
        let mut family_keys: HashSet<Vec<usize>> = HashSet::new();
        for config in &relaxed {
            let segs = find_segments(graph, shapes, config, protected);
            let key: Vec<usize> = segs
                .iter()
                .flat_map(|s| s.nodes.iter().map(|n| n.index()))
                .collect();
            if !segs.is_empty() && family_keys.insert(key) {
                families.push(segs);
            }
        }

        // Degenerate graphs (T ≤ 2 unrolled steps, or no recomputable
        // interior nodes) produce no candidates anywhere; return the
        // heuristic plan rather than an empty candidate set.
        if families.is_empty() {
            let exec_plan = ExecPlan::build(
                graph,
                &heuristic_plan,
                opts,
                binding_shapes,
                param_shapes,
                target,
            )
            .map_err(EchoError::Graph)?;
            let report = SearchReport {
                candidates_explored: ctx.scored,
                searched_peak_bytes: exec_plan.planned_peak_bytes(),
                heuristic_peak_bytes: heuristic_peak,
                stash_all_peak_bytes: stash_all_peak,
                recompute_flops: exec_plan.planned_recompute_flops(),
                step_flops,
                budget_flops,
                capped: false,
                fell_back_to_heuristic: true,
            };
            return Ok(SearchOutcome {
                segments: segments_from_plan(graph, shapes, &heuristic_plan),
                plan: heuristic_plan,
                exec_plan: Arc::new(exec_plan),
                report,
            });
        }

        for family in &families {
            ctx.search_family(family)?;
        }

        // Chen-style checkpoint plans at a few strides, as whole-plan
        // candidates: on graphs where the O-shape families miss savings, a
        // generic checkpoint schedule may still fit the budget.
        let sqrt = sqrt_stride(graph);
        let mut strides = vec![sqrt, sqrt.saturating_mul(2), (sqrt / 2).max(2)];
        strides.sort_unstable();
        strides.dedup();
        for stride in strides {
            let (plan, _) = chen_sqrt_plan(graph, shapes, protected, stride);
            ctx.consider(plan)?;
        }

        let best = ctx.best.take().expect("stash-all always seeds a best");
        let report = SearchReport {
            candidates_explored: ctx.scored,
            searched_peak_bytes: best.peak,
            heuristic_peak_bytes: heuristic_peak,
            stash_all_peak_bytes: stash_all_peak,
            recompute_flops: best.flops,
            step_flops,
            budget_flops,
            capped: ctx.capped,
            fell_back_to_heuristic: false,
        };
        Ok(SearchOutcome {
            segments: segments_from_plan(graph, shapes, &best.plan),
            plan: best.plan,
            exec_plan: Arc::new(best.exec_plan),
            report,
        })
    }
}

/// Mutable state threaded through family enumeration.
struct SearchCtx<'a> {
    graph: &'a Graph,
    shapes: &'a ShapeTable,
    binding_shapes: &'a HashMap<NodeId, Shape>,
    param_shapes: &'a HashMap<NodeId, Shape>,
    target: NodeId,
    opts: ExecOptions,
    share_workspace: bool,
    budget_flops: u64,
    max_plans: usize,
    stash_all_peak: u64,
    scored: usize,
    capped: bool,
    /// Recompute node sets already scored (dedup across families).
    seen: HashSet<Vec<usize>>,
    best: Option<Candidate>,
}

impl SearchCtx<'_> {
    /// Installs `cand` as the incumbent if it is admissible and better
    /// (smaller peak; ties broken toward fewer replay FLOPs).
    fn offer(&mut self, cand: Candidate) {
        if cand.flops > self.budget_flops {
            return;
        }
        let better = self
            .best
            .as_ref()
            .is_none_or(|b| cand.peak < b.peak || (cand.peak == b.peak && cand.flops < b.flops));
        if better {
            self.best = Some(cand);
        }
    }

    /// Scores one stash plan exactly (builds its [`ExecPlan`]), offers it
    /// as incumbent, and returns its `(peak, replay flops)`. Returns
    /// `None` when the plan was already scored or the evaluation cap is
    /// reached.
    fn consider(&mut self, plan: StashPlan) -> Result<Option<(u64, u64)>, EchoError> {
        let mut key: Vec<usize> = self
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(plan.policy(n.id), StashPolicy::Recompute(_)))
            .map(|n| n.id.index())
            .collect();
        key.sort_unstable();
        if !self.seen.insert(key) {
            return Ok(None);
        }
        if self.scored >= self.max_plans {
            self.capped = true;
            return Ok(None);
        }
        self.scored += 1;
        let exec_plan = ExecPlan::build(
            self.graph,
            &plan,
            self.opts,
            self.binding_shapes,
            self.param_shapes,
            self.target,
        )
        .map_err(EchoError::Graph)?;
        let peak = exec_plan.planned_peak_bytes();
        let flops = exec_plan.planned_recompute_flops();
        self.offer(Candidate {
            plan,
            exec_plan,
            peak,
            flops,
        });
        Ok(Some((peak, flops)))
    }

    /// Estimated replay FLOPs of one segment: the forward launches of its
    /// nodes. A lower bound on the exact cost (recursive boundary replays
    /// add more), used only to prune enumeration — admissibility is always
    /// judged on the exact plan.
    fn segment_flops(&self, seg: &SegmentInfo) -> u64 {
        seg.nodes
            .iter()
            .map(|&id| match &self.graph.nodes()[id.index()].kind {
                NodeKind::Op { op, inputs } => {
                    let in_shapes: Vec<&Shape> =
                        inputs.iter().map(|&i| self.shapes.shape(i)).collect();
                    launch_flops(&op.forward_launches(&in_shapes, self.shapes.shape(id)))
                }
                _ => 0,
            })
            .sum()
    }

    /// Searches all subsets of one segment partition.
    ///
    /// Segments are grouped by structural signature; groups of
    /// interchangeable time-step instances are enumerated as a DP over
    /// per-group counts along the unrolled time axis (within a group the
    /// latest `k` instances represent a count of `k`). When the count
    /// space is too large — graphs of singleton groups — branch-and-bound
    /// over individual segments takes over, with the stash-all peak as
    /// incumbent and an optimistic all-remaining-savings bound for
    /// pruning.
    fn search_family(&mut self, segs: &[SegmentInfo]) -> Result<(), EchoError> {
        if segs.is_empty() {
            return Ok(());
        }
        let seg_flops: Vec<u64> = segs.iter().map(|s| self.segment_flops(s)).collect();

        // Group interchangeable segments, each group in time order.
        let mut by_sig: HashMap<&[(String, Shape)], Vec<usize>> = HashMap::new();
        for (i, seg) in segs.iter().enumerate() {
            by_sig.entry(seg.signature.as_slice()).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_sig.into_values().collect();
        for g in &mut groups {
            g.sort_by_key(|&i| segs[i].nodes[0]);
        }
        groups.sort_by_key(|g| segs[g[0]].nodes[0]);

        let combos: u128 = groups.iter().map(|g| g.len() as u128 + 1).product();
        if combos <= self.max_plans as u128 {
            self.enumerate_counts(segs, &seg_flops, &groups, 0, &mut Vec::new())
        } else {
            // Largest savings first so the first dives set a strong
            // incumbent.
            let mut order: Vec<usize> = (0..segs.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(segs[i].intermediate_bytes));
            let remaining: u64 = segs.iter().map(|s| s.intermediate_bytes).sum();
            self.branch_and_bound(
                segs,
                &seg_flops,
                &order,
                0,
                &mut Vec::new(),
                0,
                0,
                remaining,
            )
        }
    }

    /// DP along the unrolled time axis: choose how many instances of each
    /// signature group to recompute; a count of `k` selects the group's
    /// latest `k` time steps.
    fn enumerate_counts(
        &mut self,
        segs: &[SegmentInfo],
        seg_flops: &[u64],
        groups: &[Vec<usize>],
        depth: usize,
        chosen: &mut Vec<usize>,
    ) -> Result<(), EchoError> {
        if self.capped {
            return Ok(());
        }
        if depth == groups.len() {
            if !chosen.is_empty() {
                let subset: Vec<SegmentInfo> = chosen.iter().map(|&i| segs[i].clone()).collect();
                self.consider(build_plan(&subset, self.share_workspace))?;
            }
            return Ok(());
        }
        let group = &groups[depth];
        let flops_so_far: u64 = chosen.iter().map(|&i| seg_flops[i]).sum();
        for count in 0..=group.len() {
            // Budget is monotone in the count — once the estimate
            // overflows, higher counts only get worse.
            let take: Vec<usize> = group[group.len() - count..].to_vec();
            let extra: u64 = take.iter().map(|&i| seg_flops[i]).sum();
            if count > 0 && flops_so_far + extra > self.budget_flops {
                break;
            }
            let len_before = chosen.len();
            chosen.extend(take);
            self.enumerate_counts(segs, seg_flops, groups, depth + 1, chosen)?;
            chosen.truncate(len_before);
        }
        Ok(())
    }

    /// Branch-and-bound over individual segments for graphs without
    /// interchangeable time-step structure.
    #[allow(clippy::too_many_arguments)]
    fn branch_and_bound(
        &mut self,
        segs: &[SegmentInfo],
        seg_flops: &[u64],
        order: &[usize],
        depth: usize,
        included: &mut Vec<usize>,
        included_flops: u64,
        included_saved: u64,
        remaining_saved: u64,
    ) -> Result<(), EchoError> {
        if self.capped {
            return Ok(());
        }
        // Optimistic bound: even recomputing everything still open cannot
        // push the peak below stash-all minus all those intermediates
        // (workspace is non-negative). Prune when that cannot beat the
        // incumbent.
        let optimistic = self
            .stash_all_peak
            .saturating_sub(included_saved + remaining_saved);
        if let Some(best) = &self.best {
            if optimistic >= best.peak {
                return Ok(());
            }
        }
        if depth == order.len() {
            if !included.is_empty() {
                let subset: Vec<SegmentInfo> = included.iter().map(|&i| segs[i].clone()).collect();
                self.consider(build_plan(&subset, self.share_workspace))?;
            }
            return Ok(());
        }
        let i = order[depth];
        let rest = remaining_saved - segs[i].intermediate_bytes;
        // Include first (largest-savings-first ordering makes the first
        // full dive the natural incumbent), budget permitting.
        if included_flops + seg_flops[i] <= self.budget_flops {
            included.push(i);
            self.branch_and_bound(
                segs,
                seg_flops,
                order,
                depth + 1,
                included,
                included_flops + seg_flops[i],
                included_saved + segs[i].intermediate_bytes,
                rest,
            )?;
            included.pop();
        }
        self.branch_and_bound(
            segs,
            seg_flops,
            order,
            depth + 1,
            included,
            included_flops,
            included_saved,
            rest,
        )
    }
}

/// Reconstructs per-segment descriptions from an arbitrary stash plan, so
/// searched (or Chen-style) winners report through the same
/// [`SegmentReport`](crate::SegmentReport) tables as heuristic ones.
/// Boundary bytes here are un-amortized (each segment charges its full
/// boundary), which is the conservative direction for reporting.
pub fn segments_from_plan(
    graph: &Graph,
    shapes: &ShapeTable,
    plan: &StashPlan,
) -> Vec<SegmentInfo> {
    let mut segments = Vec::new();
    for seg_id in 0..plan.segment_count() {
        let nodes = plan.segment_nodes(seg_id);
        if nodes.is_empty() {
            continue;
        }
        let members: HashSet<NodeId> = nodes.iter().copied().collect();
        let pool = match plan.policy(nodes[0]) {
            StashPolicy::Recompute(s) => s.pool,
            StashPolicy::Stash => 0,
        };
        let mut boundary: HashSet<NodeId> = HashSet::new();
        let mut intermediate = 0u64;
        for &id in &nodes {
            let node = &graph.nodes()[id.index()];
            intermediate += shapes.bytes(id);
            if let NodeKind::Op { op, inputs } = &node.kind {
                let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| shapes.shape(i)).collect();
                intermediate += op.saved_bytes(&in_shapes, shapes.shape(id));
                for &input in inputs {
                    if !members.contains(&input) {
                        boundary.insert(input);
                    }
                }
            }
        }
        let signature: Vec<(String, Shape)> = nodes
            .iter()
            .map(|&id| {
                let node = &graph.nodes()[id.index()];
                (
                    node.op().map(|o| o.name().to_string()).unwrap_or_default(),
                    shapes.shape(id).clone(),
                )
            })
            .collect();
        segments.push(SegmentInfo {
            intermediate_bytes: intermediate,
            boundary_bytes: boundary.iter().map(|&b| shapes.bytes(b)).sum(),
            pool,
            signature,
            nodes,
        });
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::infer_shapes;
    use crate::compiler::{EchoCompiler, EchoConfig, StashSelection};
    use echo_memory::LayerKind;
    use echo_ops::{FullyConnected, MeanAll};
    use echo_tensor::Tensor;

    /// Satellite regression: a degenerate graph — no recomputable interior
    /// nodes under *any* candidate configuration — must make the search
    /// return the heuristic plan, not an empty candidate set.
    #[test]
    fn degenerate_graph_falls_back_to_heuristic() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let w1 = g.param("w1", LayerKind::Rnn);
        let w2 = g.param("w2", LayerKind::Rnn);
        let fc1 = g.apply(
            "fc1",
            Arc::new(FullyConnected::new(32).without_bias()),
            &[x, w1],
            LayerKind::Rnn,
        );
        let fc2 = g.apply(
            "fc2",
            Arc::new(FullyConnected::new(8).without_bias()),
            &[fc1, w2],
            LayerKind::Rnn,
        );
        let loss = g.apply("loss", Arc::new(MeanAll), &[fc2], LayerKind::Rnn);
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::zeros(echo_tensor::Shape::d2(4, 16)));
        let mut params = HashMap::new();
        params.insert(w1, echo_tensor::Shape::d2(32, 16));
        params.insert(w2, echo_tensor::Shape::d2(8, 32));
        let shapes = infer_shapes(&g, &bindings, &params).unwrap();
        let binding_shapes: HashMap<NodeId, Shape> = bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let outcome = StashSearch::new(SearchConfig::default())
            .run(
                &g,
                &shapes,
                &binding_shapes,
                &params,
                &[loss],
                &OshapeConfig::default(),
                true,
                ExecOptions::default(),
            )
            .unwrap();
        assert!(outcome.report.fell_back_to_heuristic);
        assert_eq!(outcome.plan.recompute_count(), 0);
        assert!(outcome.segments.is_empty());
        assert_eq!(
            outcome.report.searched_peak_bytes,
            outcome.report.heuristic_peak_bytes
        );
        assert_eq!(outcome.report.recompute_flops, 0);
    }

    /// Dominance on the NMT workload, end-to-end through the compiler:
    /// searched ≤ heuristic ≤ stash-all, within budget.
    #[test]
    fn search_dominates_heuristic_on_nmt() {
        use echo_models::{NmtHyper, NmtModel};
        let model = NmtModel::build(NmtHyper::tiny(100, 90));
        let bindings = model.symbolic_bindings(4);
        let searched = EchoCompiler::new(EchoConfig {
            selection: StashSelection::Search { flop_budget: 1.0 },
            ..EchoConfig::default()
        })
        .compile(
            &model.graph,
            &bindings,
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .unwrap();
        let s = searched.report.search.as_ref().expect("search ran");
        assert!(!s.fell_back_to_heuristic);
        assert!(
            s.searched_peak_bytes <= s.heuristic_peak_bytes,
            "searched {} vs heuristic {}",
            s.searched_peak_bytes,
            s.heuristic_peak_bytes
        );
        assert!(s.heuristic_peak_bytes <= s.stash_all_peak_bytes);
        assert!(s.recompute_flops <= s.budget_flops);
        assert_eq!(
            searched.report.planned_peak_bytes,
            Some(s.searched_peak_bytes)
        );
        // The heuristic peak the search reports is the one the heuristic
        // compiler actually produces.
        let heur = EchoCompiler::new(EchoConfig::default())
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .unwrap();
        assert_eq!(heur.report.planned_peak_bytes, Some(s.heuristic_peak_bytes));
        println!(
            "nmt: stash-all {} heuristic {} searched {} ({} candidates, {} replay flops / budget {})",
            s.stash_all_peak_bytes,
            s.heuristic_peak_bytes,
            s.searched_peak_bytes,
            s.candidates_explored,
            s.recompute_flops,
            s.budget_flops
        );
    }
}
