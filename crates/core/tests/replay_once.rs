//! Replay-once discipline: a recomputed node feeding several backward
//! consumers is replayed exactly once per step, not once per consumer.
//!
//! The executor retires segment scratch by reference count (`n_required`,
//! the burn-autodiff idiom): `ensure_replayed` counts how many remaining
//! backward steps will read the scratch, each consumer decrements, and the
//! buffer is dropped when the count hits zero. If retirement were instead
//! keyed to each consumer individually, a value feeding three heads would
//! be regenerated three times — same bits, triple the recompute FLOPs.
//! This test pins both faces of the contract: the per-step and cumulative
//! replay counters, and bit-identity of every gradient against the
//! stash-all reference, on the legacy interpreter and the plan-driven path
//! alike.

use echo_graph::{ExecOptions, Executor, Graph, NodeId, SegmentId, StashPlan, StashPolicy};
use echo_memory::{DeviceMemory, LayerKind};
use echo_ops::{Activation, Add, FullyConnected, MeanAll};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

const B: usize = 3;
const H: usize = 8;
const HEADS: usize = 3;

struct Fixture {
    graph: Arc<Graph>,
    shared: NodeId,
    loss: NodeId,
    params: Vec<(NodeId, Tensor)>,
    bindings: HashMap<NodeId, Tensor>,
}

/// x → fc → tanh `t`, with `t` feeding three fully-connected heads summed
/// into a scalar loss. FC backward reads its inputs (for dW), so all three
/// heads consume `t` during backward.
fn fixture() -> Fixture {
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let w0 = g.param("w0", LayerKind::Rnn);
    let fc0 = g.apply(
        "fc0",
        Arc::new(FullyConnected::new(H).without_bias()),
        &[x, w0],
        LayerKind::Rnn,
    );
    let shared = g.apply("t", Arc::new(Activation::tanh()), &[fc0], LayerKind::Rnn);
    let mut rng = seeded_rng(23);
    let mut params = vec![(w0, uniform(Shape::d2(H, H), 0.5, &mut rng))];
    let mut heads = Vec::new();
    for i in 0..HEADS {
        let w = g.param(format!("w{}", i + 1), LayerKind::Rnn);
        params.push((w, uniform(Shape::d2(H, H), 0.5, &mut rng)));
        heads.push(g.apply(
            format!("head{i}"),
            Arc::new(FullyConnected::new(H).without_bias()),
            &[shared, w],
            LayerKind::Rnn,
        ));
    }
    let mut sum = heads[0];
    for (i, &head) in heads.iter().enumerate().skip(1) {
        sum = g.apply(
            format!("sum{i}"),
            Arc::new(Add),
            &[sum, head],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[sum], LayerKind::Output);
    let mut bindings = HashMap::new();
    bindings.insert(x, uniform(Shape::d2(B, H), 1.0, &mut rng));
    Fixture {
        graph: Arc::new(g),
        shared,
        loss,
        params,
        bindings,
    }
}

/// The plan under test: only `t` recomputed. Hand-set because the O-shape
/// heuristic rejects a single-activation segment (ratio 1) — the point
/// here is the executor's replay discipline, not segment discovery.
fn recompute_shared(fx: &Fixture) -> StashPlan {
    let mut plan = StashPlan::stash_all();
    plan.set(
        fx.shared,
        StashPolicy::Recompute(SegmentId { id: 0, pool: 0 }),
    );
    plan
}

struct Outcome {
    loss_bits: u32,
    grad_bits: Vec<(NodeId, Vec<u32>)>,
    step_replays: Vec<u64>,
    cumulative_replays: u64,
}

fn run(fx: &Fixture, plan: StashPlan, planned: bool, steps: usize) -> Outcome {
    let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&fx.graph), plan, mem);
    for (id, value) in &fx.params {
        exec.bind_param(*id, value.clone()).expect("bind param");
    }
    if planned {
        let plan = exec
            .plan_for(&fx.bindings, fx.loss, ExecOptions::default())
            .expect("plan builds");
        exec.set_exec_plan(plan).expect("plan installs");
    }
    let mut step_replays = Vec::new();
    let mut loss_bits = 0;
    for _ in 0..steps {
        let stats = exec
            .train_step(&fx.bindings, fx.loss, ExecOptions::default(), None)
            .expect("train step");
        step_replays.push(stats.replays);
        loss_bits = stats.loss.expect("numeric loss").to_bits();
    }
    Outcome {
        loss_bits,
        grad_bits: exec
            .export_grads()
            .into_iter()
            .map(|(id, t)| (id, t.data().iter().map(|v| v.to_bits()).collect()))
            .collect(),
        step_replays,
        cumulative_replays: exec.replays(),
    }
}

#[test]
fn shared_recomputed_value_replays_once_per_step() {
    let fx = fixture();
    const STEPS: usize = 4;
    let reference = run(&fx, StashPlan::stash_all(), false, STEPS);
    assert_eq!(reference.step_replays, vec![0; STEPS]);
    assert_eq!(reference.cumulative_replays, 0);

    for planned in [false, true] {
        let out = run(&fx, recompute_shared(&fx), planned, STEPS);
        // One replay per step despite three backward consumers of `t`.
        assert_eq!(
            out.step_replays,
            vec![1; STEPS],
            "replay-once violated (planned: {planned})"
        );
        // The executor's cumulative counter sums the per-step counts.
        assert_eq!(
            out.cumulative_replays, STEPS as u64,
            "cumulative replays() drifted (planned: {planned})"
        );
        // Recomputation must be invisible in the numbers.
        assert_eq!(
            out.loss_bits, reference.loss_bits,
            "loss bits diverged (planned: {planned})"
        );
        assert_eq!(
            out.grad_bits, reference.grad_bits,
            "gradient bits diverged from stash-all (planned: {planned})"
        );
    }
}
