//! Dominance contract of the stash-set search, over randomized graphs.
//!
//! Because the cost model is exact (`planned_peak_bytes` replays the
//! allocator event sequence), the search result is a decidable property,
//! not a heuristic hope. For randomized LSTM-style attention unrolls, GRU
//! chains and plain activation chains:
//!
//! * searched peak ≤ stash-all peak, always (stash-all is itself a scored
//!   candidate);
//! * searched peak ≤ heuristic peak whenever the heuristic plan fits the
//!   recompute-FLOP budget (the heuristic is also always scored);
//! * the chosen plan's exact replay FLOPs respect the budget;
//! * graphs with no recomputable interior fall back to the heuristic plan
//!   instead of producing an empty candidate set.

use echo::analysis::infer_shapes;
use echo::{EchoCompiler, EchoConfig, OshapeConfig, SearchConfig, SearchReport, StashSearch};
use echo_graph::{ExecOptions, ExecPlan, Graph, NodeId};
use echo_memory::LayerKind;
use echo_ops::{Activation, Add, BroadcastAddQuery, MeanAll, ScoreReduce};
use echo_rnn::GruStep;
use echo_tensor::{Shape, Tensor};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

struct Case {
    graph: Arc<Graph>,
    loss: NodeId,
    bindings: HashMap<NodeId, Tensor>,
    param_shapes: HashMap<NodeId, Shape>,
}

/// LSTM/NMT-style attention unroll: shared keys, one O-shape scoring
/// segment (broadcast-add → tanh → score) per decoder step.
fn attention_case(steps: usize, seq: usize, b: usize, h: usize) -> Case {
    let mut g = Graph::new();
    let keys = g.input("keys", LayerKind::Attention);
    let v = g.param("v", LayerKind::Attention);
    let mut bindings = HashMap::new();
    bindings.insert(keys, Tensor::zeros(Shape::d3(seq, b, h)));
    let mut score_sum = None;
    for t in 0..steps {
        let q = g.input(format!("q{t}"), LayerKind::Attention);
        bindings.insert(q, Tensor::zeros(Shape::d2(b, h)));
        let e = g.apply(
            format!("e{t}"),
            Arc::new(BroadcastAddQuery),
            &[keys, q],
            LayerKind::Attention,
        );
        let th = g.apply(
            format!("th{t}"),
            Arc::new(Activation::tanh()),
            &[e],
            LayerKind::Attention,
        );
        let score = g.apply(
            format!("score{t}"),
            Arc::new(ScoreReduce),
            &[th, v],
            LayerKind::Attention,
        );
        score_sum = Some(match score_sum {
            None => score,
            Some(prev) => g.apply(
                format!("sum{t}"),
                Arc::new(Add),
                &[prev, score],
                LayerKind::Attention,
            ),
        });
    }
    let loss = g.apply(
        "loss",
        Arc::new(MeanAll),
        &[score_sum.expect("at least one step")],
        LayerKind::Output,
    );
    let mut param_shapes = HashMap::new();
    param_shapes.insert(v, Shape::d1(h));
    Case {
        graph: Arc::new(g),
        loss,
        bindings,
        param_shapes,
    }
}

/// Recurrent GRU chain: every interior node is a fused (GEMM-bearing)
/// step, so the O-shape detector finds nothing under any configuration.
fn gru_case(steps: usize, b: usize, h: usize) -> Case {
    let mut g = Graph::new();
    let h0 = g.input("h0", LayerKind::Rnn);
    let wx = g.param("wx", LayerKind::Rnn);
    let wh = g.param("wh", LayerKind::Rnn);
    let bias = g.param("bias", LayerKind::Rnn);
    let mut bindings = HashMap::new();
    bindings.insert(h0, Tensor::zeros(Shape::d2(b, h)));
    let mut state = h0;
    for t in 0..steps {
        let x = g.input(format!("x{t}"), LayerKind::Rnn);
        bindings.insert(x, Tensor::zeros(Shape::d2(b, h)));
        state = g.apply(
            format!("gru{t}"),
            Arc::new(GruStep::new(h)),
            &[x, state, wx, wh, bias],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[state], LayerKind::Output);
    let mut param_shapes = HashMap::new();
    param_shapes.insert(wx, Shape::d2(3 * h, h));
    param_shapes.insert(wh, Shape::d2(3 * h, h));
    param_shapes.insert(bias, Shape::d1(6 * h));
    Case {
        graph: Arc::new(g),
        loss,
        bindings,
        param_shapes,
    }
}

/// Plain activation chain: one connected all-eligible segment whose
/// acceptance depends on its length (ratio = length).
fn chain_case(len: usize, b: usize, h: usize) -> Case {
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let mut bindings = HashMap::new();
    bindings.insert(x, Tensor::zeros(Shape::d2(b, h)));
    let mut cur = x;
    for i in 0..len {
        cur = g.apply(
            format!("act{i}"),
            Arc::new(Activation::tanh()),
            &[cur],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[cur], LayerKind::Output);
    Case {
        graph: Arc::new(g),
        loss,
        bindings,
        param_shapes: HashMap::new(),
    }
}

/// Runs the search and checks every decidable dominance/budget property.
fn check(case: &Case, flop_budget: f64) -> Result<SearchReport, TestCaseError> {
    let shapes =
        infer_shapes(&case.graph, &case.bindings, &case.param_shapes).expect("shape inference");
    let binding_shapes: HashMap<NodeId, Shape> = case
        .bindings
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    let outcome = StashSearch::new(SearchConfig {
        flop_budget,
        ..SearchConfig::default()
    })
    .run(
        &case.graph,
        &shapes,
        &binding_shapes,
        &case.param_shapes,
        &[case.loss],
        &OshapeConfig::default(),
        true,
        ExecOptions::default(),
    )
    .expect("search runs");
    let r = outcome.report.clone();

    // Budget admissibility, on the exact (plan-derived) replay FLOPs.
    prop_assert!(
        r.recompute_flops <= r.budget_flops,
        "budget violated: {} > {}",
        r.recompute_flops,
        r.budget_flops
    );
    // Stash-all is always a scored candidate, so the winner never exceeds it.
    prop_assert!(
        r.searched_peak_bytes <= r.stash_all_peak_bytes,
        "searched {} above stash-all {}",
        r.searched_peak_bytes,
        r.stash_all_peak_bytes
    );
    // The heuristic never *worsens* the footprint on these graph families.
    prop_assert!(
        r.heuristic_peak_bytes <= r.stash_all_peak_bytes,
        "heuristic {} above stash-all {}",
        r.heuristic_peak_bytes,
        r.stash_all_peak_bytes
    );
    // Whenever the heuristic plan itself fits the budget, the search
    // dominates it (the heuristic is also always scored).
    let heuristic_plan = EchoCompiler::new(EchoConfig::default())
        .compile_with_shapes(&case.graph, &shapes, &[case.loss])
        .plan;
    let heuristic_ep = ExecPlan::build(
        &case.graph,
        &heuristic_plan,
        ExecOptions::default(),
        &binding_shapes,
        &case.param_shapes,
        case.loss,
    )
    .expect("heuristic plan builds");
    prop_assert_eq!(
        r.heuristic_peak_bytes,
        heuristic_ep.planned_peak_bytes(),
        "report's heuristic peak disagrees with the compiler's"
    );
    if heuristic_ep.planned_recompute_flops() <= r.budget_flops {
        prop_assert!(
            r.searched_peak_bytes <= r.heuristic_peak_bytes,
            "searched {} above admissible heuristic {}",
            r.searched_peak_bytes,
            r.heuristic_peak_bytes
        );
    }
    // The chosen plan's own exec plan agrees with the reported score.
    prop_assert_eq!(
        outcome.exec_plan.planned_peak_bytes(),
        r.searched_peak_bytes
    );
    Ok(r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized attention unrolls: real O-shape candidates at several
    /// granularities; the search must dominate the heuristic and respect
    /// the budget at every sampled multiplier.
    #[test]
    fn attention_unrolls_dominate(
        steps in 1usize..6,
        seq in 6usize..16,
        b in 1usize..4,
        h in 8usize..24,
        flop_budget in 0.5f64..2.0,
    ) {
        let case = attention_case(steps, seq, b, h);
        let r = check(&case, flop_budget)?;
        prop_assert!(!r.fell_back_to_heuristic || r.candidates_explored >= 2);
    }

    /// GRU chains have no GEMM-free interior — the search must fall back
    /// to the heuristic plan (never an empty candidate set) and report
    /// identical peaks.
    #[test]
    fn gru_chains_fall_back_to_heuristic(
        steps in 1usize..7,
        b in 1usize..4,
        h in 4usize..12,
        flop_budget in 0.5f64..2.0,
    ) {
        let case = gru_case(steps, b, h);
        let r = check(&case, flop_budget)?;
        prop_assert!(r.fell_back_to_heuristic);
        prop_assert_eq!(r.searched_peak_bytes, r.heuristic_peak_bytes);
        prop_assert_eq!(r.recompute_flops, 0);
    }

    /// Plain activation chains, including degenerate lengths (T ≤ 2): the
    /// search never crashes, never returns an empty choice, and dominance
    /// holds whether or not the heuristic's ratio test accepted the chain.
    #[test]
    fn activation_chains_dominate(
        len in 1usize..8,
        b in 1usize..5,
        h in 8usize..32,
        flop_budget in 0.5f64..2.0,
    ) {
        let case = chain_case(len, b, h);
        check(&case, flop_budget)?;
    }
}
