//! Batching: BPTT windows for language modeling and padded bucketed
//! batches for NMT, delivered as `[T, B]` time-major id tensors ready for
//! the embedding operator.

use crate::parallel::SentencePair;
use crate::vocab::{BOS, EOS, PAD};
use echo_tensor::{Shape, Tensor};

/// One language-modeling batch: `input[t][b]` predicts `target[t][b]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LmBatch {
    /// `[T, B]` input ids (as `f32` for the embedding op).
    pub input: Tensor,
    /// Flattened `T·B` target ids, row-major over `[T, B]`.
    pub targets: Tensor,
    /// Batch size.
    pub batch: usize,
    /// Unrolled sequence length.
    pub seq_len: usize,
}

/// Continuous BPTT batching over a token stream, as in MXNet's word-level
/// LM example: the stream is split into `batch` parallel lanes and windows
/// of `seq_len` are yielded in order.
#[derive(Debug, Clone)]
pub struct BpttBatches {
    lanes: Vec<Vec<usize>>,
    batch: usize,
    seq_len: usize,
    cursor: usize,
}

impl BpttBatches {
    /// Prepares batching over `tokens`.
    ///
    /// # Panics
    ///
    /// Panics if the stream is too short for even one window.
    pub fn new(tokens: &[usize], batch: usize, seq_len: usize) -> Self {
        let lane_len = tokens.len() / batch;
        assert!(
            lane_len > seq_len,
            "stream of {} tokens too short for batch={batch} seq_len={seq_len}",
            tokens.len()
        );
        let lanes: Vec<Vec<usize>> = (0..batch)
            .map(|b| tokens[b * lane_len..(b + 1) * lane_len].to_vec())
            .collect();
        BpttBatches {
            lanes,
            batch,
            seq_len,
            cursor: 0,
        }
    }

    /// Number of full windows available.
    pub fn num_batches(&self) -> usize {
        (self.lanes[0].len() - 1) / self.seq_len
    }

    /// Restarts from the beginning of the stream (a new epoch).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

impl Iterator for BpttBatches {
    type Item = LmBatch;

    fn next(&mut self) -> Option<LmBatch> {
        let start = self.cursor * self.seq_len;
        if start + self.seq_len + 1 > self.lanes[0].len() {
            return None;
        }
        self.cursor += 1;
        let mut input = Tensor::zeros(Shape::d2(self.seq_len, self.batch));
        let mut targets = Tensor::zeros(Shape::d1(self.seq_len * self.batch));
        for t in 0..self.seq_len {
            for b in 0..self.batch {
                input.data_mut()[t * self.batch + b] = self.lanes[b][start + t] as f32;
                targets.data_mut()[t * self.batch + b] = self.lanes[b][start + t + 1] as f32;
            }
        }
        Some(LmBatch {
            input,
            targets,
            batch: self.batch,
            seq_len: self.seq_len,
        })
    }
}

/// One NMT batch: padded time-major source/target tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct NmtBatch {
    /// `[T_src, B]` source ids (PAD-filled).
    pub source: Tensor,
    /// `[T_tgt, B]` decoder inputs (starts with BOS).
    pub target_input: Tensor,
    /// Flattened `T_tgt·B` decoder targets (ends with EOS, PAD elsewhere).
    pub target_output: Tensor,
    /// Batch size.
    pub batch: usize,
    /// Padded source length.
    pub src_len: usize,
    /// Padded target length (including EOS).
    pub tgt_len: usize,
}

impl NmtBatch {
    /// Builds a batch from sentence pairs, padding both sides to the batch
    /// maxima. Targets are framed `BOS w… → w… EOS`.
    ///
    /// # Panics
    ///
    /// Panics on an empty pair list.
    pub fn from_pairs(pairs: &[&SentencePair]) -> NmtBatch {
        assert!(!pairs.is_empty(), "empty batch");
        let batch = pairs.len();
        let src_len = pairs
            .iter()
            .map(|p| p.source.len())
            .max()
            .expect("non-empty");
        let tgt_len = pairs
            .iter()
            .map(|p| p.target.len())
            .max()
            .expect("non-empty")
            + 1;
        let mut source = Tensor::full(Shape::d2(src_len, batch), PAD as f32);
        let mut target_input = Tensor::full(Shape::d2(tgt_len, batch), PAD as f32);
        let mut target_output = Tensor::full(Shape::d1(tgt_len * batch), PAD as f32);
        for (b, p) in pairs.iter().enumerate() {
            for (t, &w) in p.source.iter().enumerate() {
                source.data_mut()[t * batch + b] = w as f32;
            }
            target_input.data_mut()[b] = BOS as f32;
            for (t, &w) in p.target.iter().enumerate() {
                target_input.data_mut()[(t + 1) * batch + b] = w as f32;
                target_output.data_mut()[t * batch + b] = w as f32;
            }
            target_output.data_mut()[p.target.len() * batch + b] = EOS as f32;
        }
        NmtBatch {
            source,
            target_input,
            target_output,
            batch,
            src_len,
            tgt_len,
        }
    }

    /// Groups `pairs` into batches of `batch` size, bucketing by length so
    /// padding waste stays low (Sockeye-style bucketing).
    pub fn bucketed(pairs: &[SentencePair], batch: usize) -> Vec<NmtBatch> {
        let mut sorted: Vec<&SentencePair> = pairs.iter().collect();
        sorted.sort_by_key(|p| p.source.len());
        sorted
            .chunks(batch)
            .filter(|c| c.len() == batch)
            .map(NmtBatch::from_pairs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bptt_shapes_and_shift() {
        let tokens: Vec<usize> = (10..110).collect();
        let mut it = BpttBatches::new(&tokens, 2, 5);
        assert_eq!(it.num_batches(), 9);
        let b = it.next().unwrap();
        assert_eq!(b.input.shape(), &Shape::d2(5, 2));
        // Lane 0 starts at token 10, lane 1 at token 60.
        assert_eq!(b.input.get(&[0, 0]).unwrap(), 10.0);
        assert_eq!(b.input.get(&[0, 1]).unwrap(), 60.0);
        // Target is the next token.
        assert_eq!(b.targets.data()[0], 11.0);
        let b2 = it.next().unwrap();
        assert_eq!(b2.input.get(&[0, 0]).unwrap(), 15.0);
    }

    #[test]
    fn bptt_reset_replays() {
        let tokens: Vec<usize> = (0..100).collect();
        let mut it = BpttBatches::new(&tokens, 2, 5);
        let first = it.next().unwrap();
        while it.next().is_some() {}
        it.reset();
        assert_eq!(it.next().unwrap(), first);
    }

    #[test]
    fn nmt_batch_pads_and_frames() {
        let p1 = SentencePair {
            source: vec![10, 11],
            target: vec![20, 21],
        };
        let p2 = SentencePair {
            source: vec![12, 13, 14],
            target: vec![22, 23, 24],
        };
        let b = NmtBatch::from_pairs(&[&p1, &p2]);
        assert_eq!(b.src_len, 3);
        assert_eq!(b.tgt_len, 4);
        // Padding on the short sentence.
        assert_eq!(b.source.get(&[2, 0]).unwrap(), PAD as f32);
        assert_eq!(b.source.get(&[2, 1]).unwrap(), 14.0);
        // BOS framing.
        assert_eq!(b.target_input.get(&[0, 0]).unwrap(), BOS as f32);
        assert_eq!(b.target_input.get(&[1, 0]).unwrap(), 20.0);
        // EOS after the last real target token.
        assert_eq!(b.target_output.data()[2 * 2], EOS as f32);
        assert_eq!(b.target_output.data()[3 * 2 + 1], EOS as f32);
    }

    #[test]
    fn bucketing_sorts_by_length() {
        let pairs: Vec<SentencePair> = (0..10)
            .map(|i| SentencePair {
                source: vec![10; 10 - i],
                target: vec![20; 10 - i],
            })
            .collect();
        let batches = NmtBatch::bucketed(&pairs, 2);
        assert_eq!(batches.len(), 5);
        for b in &batches {
            // Within a bucket the two sentences differ by at most 1 token.
            assert!(b.src_len >= 1);
        }
        // Sorted ascending.
        assert!(batches.first().unwrap().src_len <= batches.last().unwrap().src_len);
    }
}
