//! Synthetic datasets for the Echo reproduction.
//!
//! The paper trains on PTB / Wikitext-2 (word-level language modeling) and
//! IWSLT15 English–Vietnamese (NMT). Those corpora are not available
//! offline, and nothing in the paper's evaluation depends on their
//! linguistic content — throughput and memory depend only on shapes, and
//! the training-curve experiments only need a *learnable* task. This crate
//! therefore provides:
//!
//! * [`LmCorpus`] — a Zipfian token stream with Markov-chain structure
//!   (so perplexity genuinely falls during training), with presets whose
//!   vocabulary size and token count mirror PTB and Wikitext-2;
//! * [`ParallelCorpus`] — a synthetic translation task (deterministic
//!   token mapping plus local reordering, with noise) whose BLEU score
//!   rises as a seq2seq+attention model learns it, standing in for
//!   IWSLT15 En–Vi;
//! * batching utilities matching the models' `[T, B]` time-major inputs.

#![warn(missing_docs)]

pub mod batch;
pub mod lm;
pub mod parallel;
pub mod vocab;

pub use batch::{BpttBatches, LmBatch, NmtBatch};
pub use lm::LmCorpus;
pub use parallel::{
    shard_lm_batch, slice_lm_lanes, slice_nmt_lanes, MicrobatchPlan, ParallelCorpus,
    PipelineSchedule, ScheduleEntry, SentencePair, Sharding,
};
pub use vocab::{Vocab, BOS, EOS, PAD, UNK};
