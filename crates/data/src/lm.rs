//! Synthetic word-level language-modeling corpora.

use crate::vocab::{Vocab, NUM_SPECIAL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A token stream for language modeling.
///
/// Tokens are drawn from a Zipfian unigram distribution blended with a
/// deterministic Markov transition (`next = a·cur + c mod V`), so the
/// stream has both a realistic frequency profile and enough structure that
/// an LSTM LM's perplexity genuinely falls during training.
///
/// # Example
///
/// ```
/// use echo_data::{LmCorpus, Vocab};
///
/// let corpus = LmCorpus::synthetic(Vocab::new(100), 10_000, 0.5, 42);
/// assert_eq!(corpus.tokens().len(), 10_000);
/// assert!(corpus.tokens().iter().all(|&t| t < 100));
/// ```
#[derive(Debug, Clone)]
pub struct LmCorpus {
    vocab: Vocab,
    tokens: Vec<usize>,
}

impl LmCorpus {
    /// Generates a corpus of `num_tokens` tokens.
    ///
    /// `structure` in `[0, 1]` is the probability that a token follows the
    /// deterministic Markov rule rather than the Zipf draw; higher values
    /// make the stream easier to model.
    pub fn synthetic(vocab: Vocab, num_tokens: usize, structure: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(vocab.num_words());
        let mut tokens = Vec::with_capacity(num_tokens);
        let mut cur = vocab.word(0);
        for _ in 0..num_tokens {
            let next = if rng.gen_bool(structure) {
                // Deterministic transition over word ranks.
                let rank = cur - NUM_SPECIAL;
                vocab.word((rank * 31 + 7) % vocab.num_words())
            } else {
                vocab.word(zipf.sample(&mut rng))
            };
            tokens.push(next);
            cur = next;
        }
        LmCorpus { vocab, tokens }
    }

    /// A PTB-sized corpus (10k vocabulary; token count scaled down from
    /// PTB's 929k by `scale` in `(0, 1]` so tests stay fast).
    pub fn ptb_like(scale: f64, seed: u64) -> Self {
        let n = ((929_000f64 * scale) as usize).max(1_000);
        LmCorpus::synthetic(Vocab::ptb(), n, 0.6, seed)
    }

    /// A Wikitext-2-sized corpus (33k vocabulary, 2.1M tokens scaled).
    pub fn wikitext2_like(scale: f64, seed: u64) -> Self {
        let n = ((2_089_000f64 * scale) as usize).max(1_000);
        LmCorpus::synthetic(Vocab::wikitext2(), n, 0.6, seed)
    }

    /// The corpus vocabulary.
    pub fn vocab(&self) -> Vocab {
        self.vocab
    }

    /// The token stream.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }
}

/// Zipf(1.0) sampler over ranks `0..n` via inverse-CDF on precomputed
/// cumulative weights.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / (rank + 1) as f64;
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = LmCorpus::synthetic(Vocab::new(50), 1000, 0.5, 7);
        let b = LmCorpus::synthetic(Vocab::new(50), 1000, 0.5, 7);
        let c = LmCorpus::synthetic(Vocab::new(50), 1000, 0.5, 8);
        assert_eq!(a.tokens(), b.tokens());
        assert_ne!(a.tokens(), c.tokens());
    }

    #[test]
    fn zipf_head_is_heavy() {
        let corpus = LmCorpus::synthetic(Vocab::new(1000), 50_000, 0.0, 3);
        let head = corpus
            .tokens()
            .iter()
            .filter(|&&t| t < NUM_SPECIAL + 10)
            .count();
        // Top-10 of ~1000 Zipf words carry >30% of the mass.
        assert!(head as f64 / 50_000.0 > 0.3, "head mass {head}");
    }

    #[test]
    fn structured_stream_is_predictable() {
        let corpus = LmCorpus::synthetic(Vocab::new(200), 20_000, 1.0, 5);
        // With structure = 1.0 every transition follows the Markov rule.
        let v = corpus.vocab();
        for w in corpus.tokens().windows(2) {
            let rank = w[0] - NUM_SPECIAL;
            assert_eq!(w[1], v.word((rank * 31 + 7) % v.num_words()));
        }
    }

    #[test]
    fn presets_scale() {
        let c = LmCorpus::ptb_like(0.01, 1);
        assert!(c.tokens().len() >= 9_000);
        assert_eq!(c.vocab().size(), 10_000);
    }
}
