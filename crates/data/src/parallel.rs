//! The synthetic parallel (translation) corpus standing in for IWSLT15
//! English–Vietnamese.

use crate::vocab::{Vocab, NUM_SPECIAL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sentence pair (token ids, without BOS/EOS framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentencePair {
    /// Source tokens.
    pub source: Vec<usize>,
    /// Target tokens.
    pub target: Vec<usize>,
}

/// A synthetic parallel corpus.
///
/// The "translation" of a source sentence is a deterministic per-token
/// mapping (an affine permutation of word ranks into the target
/// vocabulary) combined with *local pair reordering* (adjacent tokens swap
/// with a sentence-position-dependent rule). The task therefore requires
/// attention to align positions — the same structural property that makes
/// the attention scoring function the memory bottleneck on IWSLT — while
/// remaining learnable, so training curves (perplexity down, BLEU up)
/// behave like the paper's Figure 12.
#[derive(Debug, Clone)]
pub struct ParallelCorpus {
    src_vocab: Vocab,
    tgt_vocab: Vocab,
    pairs: Vec<SentencePair>,
}

impl ParallelCorpus {
    /// Generates `num_pairs` sentence pairs with source lengths drawn
    /// uniformly from `len_range`.
    ///
    /// # Panics
    ///
    /// Panics if `len_range` is empty or starts below 2.
    pub fn synthetic(
        src_vocab: Vocab,
        tgt_vocab: Vocab,
        num_pairs: usize,
        len_range: std::ops::RangeInclusive<usize>,
        seed: u64,
    ) -> Self {
        assert!(
            *len_range.start() >= 2 && len_range.start() <= len_range.end(),
            "bad length range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(num_pairs);
        for _ in 0..num_pairs {
            let len = rng.gen_range(len_range.clone());
            let source: Vec<usize> = (0..len)
                .map(|_| src_vocab.word(zipf_rank(&mut rng, src_vocab.num_words())))
                .collect();
            let target = translate(&source, src_vocab, tgt_vocab);
            pairs.push(SentencePair { source, target });
        }
        ParallelCorpus {
            src_vocab,
            tgt_vocab,
            pairs,
        }
    }

    /// An IWSLT15-En–Vi-like corpus scaled by `scale` (IWSLT has ~133k
    /// pairs) with sentence lengths 4–16 and small vocabularies scaled for
    /// tractable CPU training.
    pub fn iwslt_like(scale: f64, seed: u64) -> Self {
        let pairs = ((133_000f64 * scale) as usize).max(200);
        ParallelCorpus::synthetic(Vocab::new(400), Vocab::new(300), pairs, 4..=16, seed)
    }

    /// Source vocabulary.
    pub fn src_vocab(&self) -> Vocab {
        self.src_vocab
    }

    /// Target vocabulary.
    pub fn tgt_vocab(&self) -> Vocab {
        self.tgt_vocab
    }

    /// The sentence pairs.
    pub fn pairs(&self) -> &[SentencePair] {
        &self.pairs
    }

    /// Splits off the last `n` pairs as a held-out validation set.
    pub fn split_validation(&self, n: usize) -> (&[SentencePair], &[SentencePair]) {
        let cut = self.pairs.len().saturating_sub(n);
        (&self.pairs[..cut], &self.pairs[cut..])
    }

    /// The reference translation of an arbitrary source sentence under the
    /// corpus's generative rule (used to score BLEU against model output).
    pub fn reference(&self, source: &[usize]) -> Vec<usize> {
        translate(source, self.src_vocab, self.tgt_vocab)
    }
}

/// The deterministic translation rule: affine rank mapping + adjacent-pair
/// swap.
fn translate(source: &[usize], src: Vocab, tgt: Vocab) -> Vec<usize> {
    let mut out: Vec<usize> = source
        .iter()
        .map(|&s| {
            let rank = s - NUM_SPECIAL;
            tgt.word((rank * 17 + 5) % tgt.num_words())
        })
        .collect();
    // Swap adjacent pairs (0,1), (2,3), ... — the local reordering that
    // makes attention necessary.
    let _ = src;
    for i in (0..out.len().saturating_sub(1)).step_by(2) {
        out.swap(i, i + 1);
    }
    out
}

fn zipf_rank(rng: &mut StdRng, n: usize) -> usize {
    // Cheap approximate Zipf: u^3 concentrates mass on small ranks.
    let u: f64 = rng.gen();
    ((u * u * u) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> ParallelCorpus {
        ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 100, 4..=8, 11)
    }

    #[test]
    fn pairs_have_matching_lengths() {
        for p in corpus().pairs() {
            assert_eq!(p.source.len(), p.target.len());
            assert!((4..=8).contains(&p.source.len()));
        }
    }

    #[test]
    fn translation_is_deterministic_and_reordered() {
        let c = corpus();
        let src = vec![
            c.src_vocab().word(0),
            c.src_vocab().word(1),
            c.src_vocab().word(2),
        ];
        let t1 = c.reference(&src);
        let t2 = c.reference(&src);
        assert_eq!(t1, t2);
        // First two output tokens are the swapped translations.
        let w = |rank: usize| {
            c.tgt_vocab()
                .word((rank * 17 + 5) % c.tgt_vocab().num_words())
        };
        assert_eq!(t1, vec![w(1), w(0), w(2)]);
    }

    #[test]
    fn corpus_targets_follow_the_rule() {
        let c = corpus();
        for p in c.pairs() {
            assert_eq!(p.target, c.reference(&p.source));
        }
    }

    #[test]
    fn validation_split() {
        let c = corpus();
        let (train, valid) = c.split_validation(10);
        assert_eq!(train.len(), 90);
        assert_eq!(valid.len(), 10);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 50, 4..=8, 1);
        let b = ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 50, 4..=8, 1);
        assert_eq!(a.pairs(), b.pairs());
    }
}
