//! Parallelism support: the synthetic parallel (translation) corpus
//! standing in for IWSLT15 English–Vietnamese, and the batch-sharding
//! layer that carves global batches across data-parallel replicas.

use crate::batch::{LmBatch, NmtBatch};
use crate::vocab::{Vocab, NUM_SPECIAL};
use echo_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A contiguous partition of `total` samples into `parts` shards.
///
/// Shard sizes are near-equal: the first `total % parts` shards receive
/// one extra sample. Every sample lands in exactly one shard and shards
/// preserve sample order, so concatenating the shards reproduces the
/// global batch. Degenerate inputs are well-defined rather than panics:
/// with `parts > total` the tail shards are simply empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sharding {
    counts: Vec<usize>,
}

impl Sharding {
    /// Splits `total` samples into `parts` contiguous shards.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn contiguous(total: usize, parts: usize) -> Sharding {
        assert!(parts > 0, "cannot shard into zero parts");
        let base = total / parts;
        let extra = total % parts;
        Sharding {
            counts: (0..parts).map(|p| base + usize::from(p < extra)).collect(),
        }
    }

    /// Number of shards.
    pub fn parts(&self) -> usize {
        self.counts.len()
    }

    /// Number of samples in shard `part`.
    pub fn len(&self, part: usize) -> usize {
        self.counts[part]
    }

    /// Whether shard `part` received no samples (`parts > total`).
    pub fn is_empty(&self, part: usize) -> bool {
        self.counts[part] == 0
    }

    /// The half-open global index range owned by shard `part`.
    pub fn range(&self, part: usize) -> std::ops::Range<usize> {
        let start: usize = self.counts[..part].iter().sum();
        start..start + self.counts[part]
    }

    /// All shard ranges, in order.
    pub fn ranges(&self) -> Vec<std::ops::Range<usize>> {
        (0..self.parts()).map(|p| self.range(p)).collect()
    }
}

/// Extracts lanes `[lo, hi)` of a `[T, B]` language-modeling batch as a
/// standalone batch (used to hand each replica its shard).
///
/// # Panics
///
/// Panics if the lane range is out of bounds.
pub fn slice_lm_lanes(batch: &LmBatch, lanes: std::ops::Range<usize>) -> LmBatch {
    assert!(
        lanes.start <= lanes.end && lanes.end <= batch.batch,
        "lane range {lanes:?} out of bounds for batch {}",
        batch.batch
    );
    let nb = lanes.len();
    let t_len = batch.seq_len;
    let mut input = Tensor::zeros(Shape::d2(t_len, nb));
    let mut targets = Tensor::zeros(Shape::d1(t_len * nb));
    for t in 0..t_len {
        for (out_lane, src_lane) in lanes.clone().enumerate() {
            input.data_mut()[t * nb + out_lane] = batch.input.data()[t * batch.batch + src_lane];
            targets.data_mut()[t * nb + out_lane] =
                batch.targets.data()[t * batch.batch + src_lane];
        }
    }
    LmBatch {
        input,
        targets,
        batch: nb,
        seq_len: t_len,
    }
}

/// Extracts lanes `[lo, hi)` of an NMT batch as a standalone batch,
/// mirroring [`slice_lm_lanes`] across all three time-major tensors
/// (`[T_src, B]` source, `[T_tgt, B]` decoder input, flat `T_tgt·B`
/// targets).
///
/// # Panics
///
/// Panics if the lane range is out of bounds.
pub fn slice_nmt_lanes(batch: &NmtBatch, lanes: std::ops::Range<usize>) -> NmtBatch {
    assert!(
        lanes.start <= lanes.end && lanes.end <= batch.batch,
        "lane range {lanes:?} out of bounds for batch {}",
        batch.batch
    );
    let nb = lanes.len();
    let slice_2d = |t_len: usize, src: &Tensor| {
        let mut out = Tensor::zeros(Shape::d2(t_len, nb));
        for t in 0..t_len {
            for (out_lane, src_lane) in lanes.clone().enumerate() {
                out.data_mut()[t * nb + out_lane] = src.data()[t * batch.batch + src_lane];
            }
        }
        out
    };
    let mut target_output = Tensor::zeros(Shape::d1(batch.tgt_len * nb));
    for t in 0..batch.tgt_len {
        for (out_lane, src_lane) in lanes.clone().enumerate() {
            target_output.data_mut()[t * nb + out_lane] =
                batch.target_output.data()[t * batch.batch + src_lane];
        }
    }
    NmtBatch {
        source: slice_2d(batch.src_len, &batch.source),
        target_input: slice_2d(batch.tgt_len, &batch.target_input),
        target_output,
        batch: nb,
        src_len: batch.src_len,
        tgt_len: batch.tgt_len,
    }
}

/// Shards an LM batch lane-wise across `parts` replicas (near-equal
/// contiguous shards; empty shards when `parts` exceeds the lane count).
pub fn shard_lm_batch(batch: &LmBatch, parts: usize) -> Vec<LmBatch> {
    Sharding::contiguous(batch.batch, parts)
        .ranges()
        .into_iter()
        .map(|r| slice_lm_lanes(batch, r))
        .collect()
}

/// The micro-batch schedule that makes data-parallel gradients bit-exact.
///
/// Float addition is not associative, so "sum the replica gradients" has
/// as many answers as there are ways to parenthesize the sum. This plan
/// removes the ambiguity by *defining* the gradient of a global batch as
/// a balanced binary tree fold over `micro` fixed micro-batches (`micro`
/// a power of two that divides the lane count). A serial trainer folds
/// the leaves left-to-right through the same tree; `replicas` workers
/// (any power of two dividing `micro`) each own a contiguous, aligned
/// subtree of leaves, and the cross-replica all-reduce walks the
/// remaining tree levels — reproducing the serial association exactly,
/// for every replica count, down to the last ULP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobatchPlan {
    micro: usize,
    lanes_per_micro: usize,
}

impl MicrobatchPlan {
    /// Plans `micro` micro-batches over a `lanes`-lane global batch.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if `micro` is
    /// not a power of two or does not evenly divide `lanes`.
    pub fn new(lanes: usize, micro: usize) -> Result<MicrobatchPlan, String> {
        if micro == 0 || !micro.is_power_of_two() {
            return Err(format!("micro-batch count {micro} must be a power of two"));
        }
        if lanes == 0 || !lanes.is_multiple_of(micro) {
            return Err(format!(
                "micro-batch count {micro} must evenly divide the {lanes} batch lanes"
            ));
        }
        Ok(MicrobatchPlan {
            micro,
            lanes_per_micro: lanes / micro,
        })
    }

    /// Number of micro-batches (tree leaves).
    pub fn micro(&self) -> usize {
        self.micro
    }

    /// Lanes per micro-batch.
    pub fn lanes_per_micro(&self) -> usize {
        self.lanes_per_micro
    }

    /// Whether `replicas` workers can own aligned subtrees under this
    /// plan (power of two, at most `micro`).
    pub fn supports_replicas(&self, replicas: usize) -> bool {
        replicas > 0 && replicas.is_power_of_two() && self.micro.is_multiple_of(replicas)
    }

    /// Cuts the global batch into the plan's micro-batches.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have the planned lane count.
    pub fn cut(&self, batch: &LmBatch) -> Vec<LmBatch> {
        assert_eq!(
            batch.batch,
            self.micro * self.lanes_per_micro,
            "batch does not match plan"
        );
        (0..self.micro)
            .map(|m| {
                slice_lm_lanes(
                    batch,
                    m * self.lanes_per_micro..(m + 1) * self.lanes_per_micro,
                )
            })
            .collect()
    }

    /// Cuts an NMT global batch into the plan's micro-batches, the
    /// [`cut`](Self::cut) analogue over [`NmtBatch`] lanes.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have the planned lane count.
    pub fn cut_nmt(&self, batch: &NmtBatch) -> Vec<NmtBatch> {
        assert_eq!(
            batch.batch,
            self.micro * self.lanes_per_micro,
            "batch does not match plan"
        );
        (0..self.micro)
            .map(|m| {
                slice_nmt_lanes(
                    batch,
                    m * self.lanes_per_micro..(m + 1) * self.lanes_per_micro,
                )
            })
            .collect()
    }

    /// The contiguous leaf span owned by `replica` of `replicas`.
    ///
    /// # Panics
    ///
    /// Panics if the replica count is unsupported (see
    /// [`supports_replicas`](Self::supports_replicas)).
    pub fn replica_leaves(&self, replica: usize, replicas: usize) -> std::ops::Range<usize> {
        assert!(
            self.supports_replicas(replicas),
            "{replicas} replicas cannot own aligned subtrees of {} leaves",
            self.micro
        );
        assert!(replica < replicas, "replica {replica} of {replicas}");
        let per = self.micro / replicas;
        replica * per..(replica + 1) * per
    }
}

/// One cell of a [`PipelineSchedule`]: at time `slot`, stage `stage`
/// processes micro-batch `micro` in the given direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Discrete time slot (all stages advance in lock-step slots).
    pub slot: usize,
    /// Pipeline stage index.
    pub stage: usize,
    /// Micro-batch index.
    pub micro: usize,
    /// `false` for the forward pass, `true` for the backward pass.
    pub backward: bool,
}

/// The GPipe fill–drain schedule over a [`MicrobatchPlan`]: all `M`
/// micro-batches flow forward through the `P` stages, then flow backward
/// in reverse stage order. Stage `s` runs micro `m` forward at slot
/// `s + m` and backward at slot `(M + P - 1) + (P - 1 - s) + m`, giving a
/// span of `2(M + P - 1)` slots, `2M` busy slots per stage, and exactly
/// `2(P - 1)` idle ("bubble") slots per stage — the GPipe `P - 1` bound
/// per pass.
#[derive(Debug, Clone)]
pub struct PipelineSchedule {
    stages: usize,
    micro: usize,
    entries: Vec<ScheduleEntry>,
}

impl PipelineSchedule {
    /// Builds the fill–drain schedule for `plan`'s micro-batches over
    /// `stages` pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn gpipe(plan: &MicrobatchPlan, stages: usize) -> PipelineSchedule {
        assert!(stages > 0, "at least one pipeline stage");
        let micro = plan.micro();
        let fwd_span = micro + stages - 1;
        let mut entries = Vec::with_capacity(2 * micro * stages);
        for m in 0..micro {
            for s in 0..stages {
                entries.push(ScheduleEntry {
                    slot: s + m,
                    stage: s,
                    micro: m,
                    backward: false,
                });
            }
        }
        for m in 0..micro {
            for s in (0..stages).rev() {
                entries.push(ScheduleEntry {
                    slot: fwd_span + (stages - 1 - s) + m,
                    stage: s,
                    micro: m,
                    backward: true,
                });
            }
        }
        entries.sort_by_key(|e| (e.slot, e.stage, e.backward));
        PipelineSchedule {
            stages,
            micro,
            entries,
        }
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Number of micro-batches.
    pub fn micro(&self) -> usize {
        self.micro
    }

    /// All schedule entries, ordered by `(slot, stage)`.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Total slots from first forward to last backward:
    /// `2(M + P - 1)`.
    pub fn span(&self) -> usize {
        2 * (self.micro + self.stages - 1)
    }

    /// Busy slots per stage: `2M` (every stage touches every micro-batch
    /// once per direction).
    pub fn stage_busy(&self) -> usize {
        2 * self.micro
    }

    /// Idle slots per stage — the fill/drain bubbles: `span - busy =
    /// 2(P - 1)`, i.e. the GPipe `P - 1` bound in each direction.
    pub fn bubbles_per_stage(&self) -> usize {
        self.span() - self.stage_busy()
    }
}

/// One sentence pair (token ids, without BOS/EOS framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentencePair {
    /// Source tokens.
    pub source: Vec<usize>,
    /// Target tokens.
    pub target: Vec<usize>,
}

/// A synthetic parallel corpus.
///
/// The "translation" of a source sentence is a deterministic per-token
/// mapping (an affine permutation of word ranks into the target
/// vocabulary) combined with *local pair reordering* (adjacent tokens swap
/// with a sentence-position-dependent rule). The task therefore requires
/// attention to align positions — the same structural property that makes
/// the attention scoring function the memory bottleneck on IWSLT — while
/// remaining learnable, so training curves (perplexity down, BLEU up)
/// behave like the paper's Figure 12.
#[derive(Debug, Clone)]
pub struct ParallelCorpus {
    src_vocab: Vocab,
    tgt_vocab: Vocab,
    pairs: Vec<SentencePair>,
}

impl ParallelCorpus {
    /// Generates `num_pairs` sentence pairs with source lengths drawn
    /// uniformly from `len_range`.
    ///
    /// # Panics
    ///
    /// Panics if `len_range` is empty or starts below 2.
    pub fn synthetic(
        src_vocab: Vocab,
        tgt_vocab: Vocab,
        num_pairs: usize,
        len_range: std::ops::RangeInclusive<usize>,
        seed: u64,
    ) -> Self {
        assert!(
            *len_range.start() >= 2 && len_range.start() <= len_range.end(),
            "bad length range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(num_pairs);
        for _ in 0..num_pairs {
            let len = rng.gen_range(len_range.clone());
            let source: Vec<usize> = (0..len)
                .map(|_| src_vocab.word(zipf_rank(&mut rng, src_vocab.num_words())))
                .collect();
            let target = translate(&source, src_vocab, tgt_vocab);
            pairs.push(SentencePair { source, target });
        }
        ParallelCorpus {
            src_vocab,
            tgt_vocab,
            pairs,
        }
    }

    /// An IWSLT15-En–Vi-like corpus scaled by `scale` (IWSLT has ~133k
    /// pairs) with sentence lengths 4–16 and small vocabularies scaled for
    /// tractable CPU training.
    pub fn iwslt_like(scale: f64, seed: u64) -> Self {
        let pairs = ((133_000f64 * scale) as usize).max(200);
        ParallelCorpus::synthetic(Vocab::new(400), Vocab::new(300), pairs, 4..=16, seed)
    }

    /// Source vocabulary.
    pub fn src_vocab(&self) -> Vocab {
        self.src_vocab
    }

    /// Target vocabulary.
    pub fn tgt_vocab(&self) -> Vocab {
        self.tgt_vocab
    }

    /// The sentence pairs.
    pub fn pairs(&self) -> &[SentencePair] {
        &self.pairs
    }

    /// Splits off the last `n` pairs as a held-out validation set.
    pub fn split_validation(&self, n: usize) -> (&[SentencePair], &[SentencePair]) {
        let cut = self.pairs.len().saturating_sub(n);
        (&self.pairs[..cut], &self.pairs[cut..])
    }

    /// The reference translation of an arbitrary source sentence under the
    /// corpus's generative rule (used to score BLEU against model output).
    pub fn reference(&self, source: &[usize]) -> Vec<usize> {
        translate(source, self.src_vocab, self.tgt_vocab)
    }
}

/// The deterministic translation rule: affine rank mapping + adjacent-pair
/// swap.
fn translate(source: &[usize], src: Vocab, tgt: Vocab) -> Vec<usize> {
    let mut out: Vec<usize> = source
        .iter()
        .map(|&s| {
            let rank = s - NUM_SPECIAL;
            tgt.word((rank * 17 + 5) % tgt.num_words())
        })
        .collect();
    // Swap adjacent pairs (0,1), (2,3), ... — the local reordering that
    // makes attention necessary.
    let _ = src;
    for i in (0..out.len().saturating_sub(1)).step_by(2) {
        out.swap(i, i + 1);
    }
    out
}

fn zipf_rank(rng: &mut StdRng, n: usize) -> usize {
    // Cheap approximate Zipf: u^3 concentrates mass on small ranks.
    let u: f64 = rng.gen();
    ((u * u * u) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> ParallelCorpus {
        ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 100, 4..=8, 11)
    }

    #[test]
    fn pairs_have_matching_lengths() {
        for p in corpus().pairs() {
            assert_eq!(p.source.len(), p.target.len());
            assert!((4..=8).contains(&p.source.len()));
        }
    }

    #[test]
    fn translation_is_deterministic_and_reordered() {
        let c = corpus();
        let src = vec![
            c.src_vocab().word(0),
            c.src_vocab().word(1),
            c.src_vocab().word(2),
        ];
        let t1 = c.reference(&src);
        let t2 = c.reference(&src);
        assert_eq!(t1, t2);
        // First two output tokens are the swapped translations.
        let w = |rank: usize| {
            c.tgt_vocab()
                .word((rank * 17 + 5) % c.tgt_vocab().num_words())
        };
        assert_eq!(t1, vec![w(1), w(0), w(2)]);
    }

    #[test]
    fn corpus_targets_follow_the_rule() {
        let c = corpus();
        for p in c.pairs() {
            assert_eq!(p.target, c.reference(&p.source));
        }
    }

    #[test]
    fn validation_split() {
        let c = corpus();
        let (train, valid) = c.split_validation(10);
        assert_eq!(train.len(), 90);
        assert_eq!(valid.len(), 10);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 50, 4..=8, 1);
        let b = ParallelCorpus::synthetic(Vocab::new(50), Vocab::new(40), 50, 4..=8, 1);
        assert_eq!(a.pairs(), b.pairs());
    }

    fn numbered_batch(seq_len: usize, lanes: usize) -> LmBatch {
        // input[t][b] = 100t + b so any mis-slice is visible.
        let mut input = Tensor::zeros(Shape::d2(seq_len, lanes));
        let mut targets = Tensor::zeros(Shape::d1(seq_len * lanes));
        for t in 0..seq_len {
            for b in 0..lanes {
                input.data_mut()[t * lanes + b] = (100 * t + b) as f32;
                targets.data_mut()[t * lanes + b] = (100 * t + b + 1) as f32;
            }
        }
        LmBatch {
            input,
            targets,
            batch: lanes,
            seq_len,
        }
    }

    #[test]
    fn sharding_partitions_without_loss() {
        for (total, parts) in [(8, 4), (10, 3), (3, 7), (0, 2), (5, 5)] {
            let s = Sharding::contiguous(total, parts);
            let ranges = s.ranges();
            assert_eq!(ranges.len(), parts);
            let mut covered = Vec::new();
            for r in &ranges {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..total).collect::<Vec<_>>());
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = (0..parts).map(|p| s.len(p)).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn lane_slices_reassemble_the_batch() {
        let batch = numbered_batch(3, 10);
        let shards = shard_lm_batch(&batch, 4);
        assert_eq!(shards.iter().map(|s| s.batch).sum::<usize>(), 10);
        for (shard, range) in shards.iter().zip(Sharding::contiguous(10, 4).ranges()) {
            for t in 0..batch.seq_len {
                for (i, b) in range.clone().enumerate() {
                    assert_eq!(
                        shard.input.data()[t * shard.batch + i],
                        batch.input.data()[t * batch.batch + b]
                    );
                    assert_eq!(
                        shard.targets.data()[t * shard.batch + i],
                        batch.targets.data()[t * batch.batch + b]
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_sharding_yields_empty_tail_shards() {
        let batch = numbered_batch(2, 3);
        let shards = shard_lm_batch(&batch, 8);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().filter(|s| s.batch == 0).count(), 5);
        assert_eq!(shards.iter().map(|s| s.batch).sum::<usize>(), 3);
    }

    #[test]
    fn microbatch_plan_validates_inputs() {
        assert!(MicrobatchPlan::new(8, 3).is_err()); // not a power of two
        assert!(MicrobatchPlan::new(6, 4).is_err()); // does not divide
        assert!(MicrobatchPlan::new(0, 1).is_err());
        let plan = MicrobatchPlan::new(8, 4).unwrap();
        assert_eq!(plan.lanes_per_micro(), 2);
        assert!(plan.supports_replicas(1));
        assert!(plan.supports_replicas(2));
        assert!(plan.supports_replicas(4));
        assert!(!plan.supports_replicas(3));
        assert!(!plan.supports_replicas(8));
    }

    #[test]
    fn replica_leaves_tile_the_tree() {
        let plan = MicrobatchPlan::new(16, 8).unwrap();
        for replicas in [1, 2, 4, 8] {
            let mut leaves = Vec::new();
            for r in 0..replicas {
                leaves.extend(plan.replica_leaves(r, replicas));
            }
            assert_eq!(leaves, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn microbatch_cut_is_a_lane_partition() {
        let batch = numbered_batch(4, 8);
        let plan = MicrobatchPlan::new(8, 4).unwrap();
        let micros = plan.cut(&batch);
        assert_eq!(micros.len(), 4);
        for m in &micros {
            assert_eq!(m.batch, 2);
            assert_eq!(m.seq_len, 4);
        }
        // Lane 5 lives in micro-batch 2, local lane 1.
        assert_eq!(micros[2].input.data()[1], batch.input.data()[5]);
    }
}
