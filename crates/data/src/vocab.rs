//! Vocabulary handling for the synthetic corpora.

use serde::{Deserialize, Serialize};

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sentence token id.
pub const BOS: usize = 1;
/// End-of-sentence token id.
pub const EOS: usize = 2;
/// Unknown-word token id.
pub const UNK: usize = 3;

/// Number of reserved special tokens.
pub const NUM_SPECIAL: usize = 4;

/// A synthetic vocabulary: ids `0..NUM_SPECIAL` are special tokens, the
/// rest are "words" ranked by frequency (id `NUM_SPECIAL` is the most
/// frequent word, matching the Zipfian generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    size: usize,
}

impl Vocab {
    /// Creates a vocabulary with `size` total ids (including specials).
    ///
    /// # Panics
    ///
    /// Panics if `size <= NUM_SPECIAL`.
    pub fn new(size: usize) -> Self {
        assert!(size > NUM_SPECIAL, "vocabulary too small: {size}");
        Vocab { size }
    }

    /// PTB's vocabulary size (10 000 words).
    pub fn ptb() -> Self {
        Vocab::new(10_000)
    }

    /// Wikitext-2's vocabulary size (33 278 words).
    pub fn wikitext2() -> Self {
        Vocab::new(33_278)
    }

    /// IWSLT15 English-side vocabulary size used by Sockeye (~17 000).
    pub fn iwslt_en() -> Self {
        Vocab::new(17_000)
    }

    /// IWSLT15 Vietnamese-side vocabulary size (~7 700).
    pub fn iwslt_vi() -> Self {
        Vocab::new(7_700)
    }

    /// Total number of ids.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of non-special word ids.
    pub fn num_words(&self) -> usize {
        self.size - NUM_SPECIAL
    }

    /// Maps a frequency rank (0 = most frequent) to a token id.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.num_words()`.
    pub fn word(&self, rank: usize) -> usize {
        assert!(rank < self.num_words());
        NUM_SPECIAL + rank
    }

    /// Whether an id is a real word (not a special token).
    pub fn is_word(&self, id: usize) -> bool {
        (NUM_SPECIAL..self.size).contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_reserved() {
        let v = Vocab::new(100);
        assert_eq!(v.word(0), NUM_SPECIAL);
        assert!(!v.is_word(PAD));
        assert!(!v.is_word(EOS));
        assert!(v.is_word(NUM_SPECIAL));
        assert_eq!(v.num_words(), 96);
    }

    #[test]
    fn presets_have_paper_sizes() {
        assert_eq!(Vocab::ptb().size(), 10_000);
        assert_eq!(Vocab::wikitext2().size(), 33_278);
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_rejected() {
        Vocab::new(3);
    }
}
