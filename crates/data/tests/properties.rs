//! Property tests for the synthetic-data crate.

use echo_data::{BpttBatches, LmCorpus, NmtBatch, ParallelCorpus, Vocab, BOS, EOS, PAD};
use proptest::prelude::*;

proptest! {
    /// BPTT batching is a faithful re-tiling: every (input, target) pair
    /// is a (token, next-token) pair from the stream.
    #[test]
    fn bptt_pairs_are_stream_adjacent(
        len in 100usize..400, batch in 1usize..5, seq in 2usize..10, seed in 0u64..500,
    ) {
        prop_assume!(len / batch > seq + 1);
        let corpus = LmCorpus::synthetic(Vocab::new(50), len, 0.5, seed);
        let lane_len = corpus.tokens().len() / batch;
        for b in BpttBatches::new(corpus.tokens(), batch, seq) {
            for t in 0..seq {
                for lane in 0..batch {
                    let x = b.input.get(&[t, lane]).unwrap() as usize;
                    let y = b.targets.data()[t * batch + lane] as usize;
                    // Find the position in the lane and check adjacency.
                    let _ = lane_len;
                    let stream = corpus.tokens();
                    // x must be followed by y somewhere (weak check), and
                    // specifically adjacent within the lane (strong check
                    // via reconstruction below).
                    prop_assert!(stream.contains(&x));
                    prop_assert!(stream.contains(&y));
                }
            }
        }
        // Strong check: concatenating all windows of lane 0 reproduces the
        // lane prefix.
        let mut lane0 = Vec::new();
        for b in BpttBatches::new(corpus.tokens(), batch, seq) {
            for t in 0..seq {
                lane0.push(b.input.get(&[t, 0]).unwrap() as usize);
            }
        }
        prop_assert_eq!(&lane0[..], &corpus.tokens()[..lane0.len()]);
    }

    /// NMT batches are well-formed: BOS-framed inputs, EOS-terminated
    /// outputs, PAD elsewhere, and `target_output` is `target_input`
    /// shifted by one.
    #[test]
    fn nmt_batches_are_well_framed(pairs in 4usize..20, batch in 2usize..5, seed in 0u64..500) {
        let corpus = ParallelCorpus::synthetic(Vocab::new(40), Vocab::new(30), pairs, 3..=7, seed);
        for b in NmtBatch::bucketed(corpus.pairs(), batch) {
            for lane in 0..b.batch {
                prop_assert_eq!(b.target_input.get(&[0, lane]).unwrap(), BOS as f32);
                let mut saw_eos = false;
                for t in 0..b.tgt_len {
                    let out = b.target_output.data()[t * b.batch + lane] as usize;
                    let next_in = if t + 1 < b.tgt_len {
                        Some(b.target_input.get(&[t + 1, lane]).unwrap() as usize)
                    } else {
                        None
                    };
                    if saw_eos {
                        prop_assert_eq!(out, PAD);
                    }
                    if out == EOS {
                        saw_eos = true;
                    } else if out != PAD {
                        // Shift-by-one relation.
                        prop_assert_eq!(Some(out), next_in);
                    }
                }
                prop_assert!(saw_eos, "every lane must terminate with EOS");
            }
        }
    }

    /// The reference translation is a bijection-ish mapping: same source →
    /// same target, and equal-length outputs.
    #[test]
    fn reference_translation_is_deterministic(len in 2usize..12, seed in 0u64..500) {
        let corpus = ParallelCorpus::synthetic(Vocab::new(40), Vocab::new(30), 4, 3..=6, seed);
        let v = corpus.src_vocab();
        let src: Vec<usize> = (0..len).map(|i| v.word((i * 7 + seed as usize) % v.num_words())).collect();
        let a = corpus.reference(&src);
        let b = corpus.reference(&src);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), src.len());
        prop_assert!(a.iter().all(|&t| corpus.tgt_vocab().is_word(t)));
    }

    /// Zipf structure: rank-0 words are at least as frequent as deep-tail
    /// words in aggregate.
    #[test]
    fn zipf_head_beats_tail(seed in 0u64..200) {
        let corpus = LmCorpus::synthetic(Vocab::new(500), 20_000, 0.0, seed);
        let head = corpus.tokens().iter().filter(|&&t| t < 4 + 25).count();
        let tail = corpus.tokens().iter().filter(|&&t| t >= 4 + 400).count();
        prop_assert!(head > tail, "head {head} tail {tail}");
    }
}
