//! Property tests for the synthetic-data crate.

use echo_data::{
    shard_lm_batch, BpttBatches, LmCorpus, NmtBatch, ParallelCorpus, Sharding, Vocab, BOS, EOS, PAD,
};
use proptest::prelude::*;

proptest! {
    /// BPTT batching is a faithful re-tiling: every (input, target) pair
    /// is a (token, next-token) pair from the stream.
    #[test]
    fn bptt_pairs_are_stream_adjacent(
        len in 100usize..400, batch in 1usize..5, seq in 2usize..10, seed in 0u64..500,
    ) {
        prop_assume!(len / batch > seq + 1);
        let corpus = LmCorpus::synthetic(Vocab::new(50), len, 0.5, seed);
        let lane_len = corpus.tokens().len() / batch;
        for b in BpttBatches::new(corpus.tokens(), batch, seq) {
            for t in 0..seq {
                for lane in 0..batch {
                    let x = b.input.get(&[t, lane]).unwrap() as usize;
                    let y = b.targets.data()[t * batch + lane] as usize;
                    // Find the position in the lane and check adjacency.
                    let _ = lane_len;
                    let stream = corpus.tokens();
                    // x must be followed by y somewhere (weak check), and
                    // specifically adjacent within the lane (strong check
                    // via reconstruction below).
                    prop_assert!(stream.contains(&x));
                    prop_assert!(stream.contains(&y));
                }
            }
        }
        // Strong check: concatenating all windows of lane 0 reproduces the
        // lane prefix.
        let mut lane0 = Vec::new();
        for b in BpttBatches::new(corpus.tokens(), batch, seq) {
            for t in 0..seq {
                lane0.push(b.input.get(&[t, 0]).unwrap() as usize);
            }
        }
        prop_assert_eq!(&lane0[..], &corpus.tokens()[..lane0.len()]);
    }

    /// NMT batches are well-formed: BOS-framed inputs, EOS-terminated
    /// outputs, PAD elsewhere, and `target_output` is `target_input`
    /// shifted by one.
    #[test]
    fn nmt_batches_are_well_framed(pairs in 4usize..20, batch in 2usize..5, seed in 0u64..500) {
        let corpus = ParallelCorpus::synthetic(Vocab::new(40), Vocab::new(30), pairs, 3..=7, seed);
        for b in NmtBatch::bucketed(corpus.pairs(), batch) {
            for lane in 0..b.batch {
                prop_assert_eq!(b.target_input.get(&[0, lane]).unwrap(), BOS as f32);
                let mut saw_eos = false;
                for t in 0..b.tgt_len {
                    let out = b.target_output.data()[t * b.batch + lane] as usize;
                    let next_in = if t + 1 < b.tgt_len {
                        Some(b.target_input.get(&[t + 1, lane]).unwrap() as usize)
                    } else {
                        None
                    };
                    if saw_eos {
                        prop_assert_eq!(out, PAD);
                    }
                    if out == EOS {
                        saw_eos = true;
                    } else if out != PAD {
                        // Shift-by-one relation.
                        prop_assert_eq!(Some(out), next_in);
                    }
                }
                prop_assert!(saw_eos, "every lane must terminate with EOS");
            }
        }
    }

    /// The reference translation is a bijection-ish mapping: same source →
    /// same target, and equal-length outputs.
    #[test]
    fn reference_translation_is_deterministic(len in 2usize..12, seed in 0u64..500) {
        let corpus = ParallelCorpus::synthetic(Vocab::new(40), Vocab::new(30), 4, 3..=6, seed);
        let v = corpus.src_vocab();
        let src: Vec<usize> = (0..len).map(|i| v.word((i * 7 + seed as usize) % v.num_words())).collect();
        let a = corpus.reference(&src);
        let b = corpus.reference(&src);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), src.len());
        prop_assert!(a.iter().all(|&t| corpus.tgt_vocab().is_word(t)));
    }

    /// Sharding partitions any batch: every sample appears in exactly one
    /// shard, order is preserved, and shard sizes are near-equal. The
    /// degenerate case (more replicas than samples) must not panic — it
    /// yields empty tail shards.
    #[test]
    fn sharding_is_a_partition(total in 0usize..200, parts in 1usize..24) {
        let s = Sharding::contiguous(total, parts);
        let mut seen = Vec::new();
        for p in 0..s.parts() {
            let r = s.range(p);
            prop_assert_eq!(r.len(), s.len(p));
            prop_assert_eq!(s.is_empty(p), r.is_empty());
            seen.extend(r);
        }
        // No dropped or duplicated sample, order preserved.
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
        let sizes: Vec<usize> = (0..parts).map(|p| s.len(p)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced shards: {:?}", sizes);
    }

    /// Sharding an actual LM batch moves every (t, lane) cell into exactly
    /// one shard, unchanged, including when replicas exceed lanes.
    #[test]
    fn lm_batch_sharding_loses_no_cell(
        lanes in 1usize..12, seq in 1usize..6, parts in 1usize..16, seed in 0u64..100,
    ) {
        let corpus = LmCorpus::synthetic(Vocab::new(30), lanes * (seq + 2), 0.5, seed);
        let Some(batch) = BpttBatches::new(corpus.tokens(), lanes, seq).next() else {
            // Stream too short for a full window — nothing to shard.
            return Ok(());
        };
        let shards = shard_lm_batch(&batch, parts);
        prop_assert_eq!(shards.len(), parts);
        prop_assert_eq!(shards.iter().map(|s| s.batch).sum::<usize>(), lanes);
        let mut lane = 0usize;
        for shard in &shards {
            prop_assert_eq!(shard.seq_len, seq);
            for b in 0..shard.batch {
                for t in 0..seq {
                    prop_assert_eq!(
                        shard.input.data()[t * shard.batch + b],
                        batch.input.data()[t * batch.batch + lane + b]
                    );
                    prop_assert_eq!(
                        shard.targets.data()[t * shard.batch + b],
                        batch.targets.data()[t * batch.batch + lane + b]
                    );
                }
            }
            lane += shard.batch;
        }
    }

    /// Zipf structure: rank-0 words are at least as frequent as deep-tail
    /// words in aggregate.
    #[test]
    fn zipf_head_beats_tail(seed in 0u64..200) {
        let corpus = LmCorpus::synthetic(Vocab::new(500), 20_000, 0.0, seed);
        let head = corpus.tokens().iter().filter(|&&t| t < 4 + 25).count();
        let tail = corpus.tokens().iter().filter(|&&t| t >= 4 + 400).count();
        prop_assert!(head > tail, "head {head} tail {tail}");
    }
}

proptest! {
    /// GPipe schedule contract: every micro-batch visits stages in order
    /// (ascending forward, descending backward, all forwards before its
    /// backward), per-stage occupancy never exceeds one entry per slot,
    /// and the per-stage bubble count matches the GPipe `P - 1` bound in
    /// each direction.
    #[test]
    fn gpipe_schedule_is_well_formed(
        micro_pow in 0u32..4, lanes_per in 1usize..4, stages in 1usize..6,
    ) {
        let micro = 1usize << micro_pow;
        let plan = echo_data::MicrobatchPlan::new(micro * lanes_per, micro).unwrap();
        let sched = echo_data::PipelineSchedule::gpipe(&plan, stages);
        prop_assert_eq!(sched.entries().len(), 2 * micro * stages);

        // Per-micro stage visit order.
        for m in 0..micro {
            let fwd: Vec<(usize, usize)> = sched.entries().iter()
                .filter(|e| e.micro == m && !e.backward)
                .map(|e| (e.slot, e.stage))
                .collect();
            let bwd: Vec<(usize, usize)> = sched.entries().iter()
                .filter(|e| e.micro == m && e.backward)
                .map(|e| (e.slot, e.stage))
                .collect();
            prop_assert_eq!(fwd.len(), stages);
            prop_assert_eq!(bwd.len(), stages);
            for w in fwd.windows(2) {
                prop_assert!(w[0].0 < w[1].0 && w[0].1 + 1 == w[1].1, "forward order {fwd:?}");
            }
            for w in bwd.windows(2) {
                prop_assert!(w[0].0 < w[1].0 && w[0].1 == w[1].1 + 1, "backward order {bwd:?}");
            }
            // All forwards strictly precede the first backward.
            prop_assert!(fwd.last().unwrap().0 < bwd.first().unwrap().0);
        }

        // Per-(slot, stage) occupancy <= 1.
        let mut seen = std::collections::HashSet::new();
        for e in sched.entries() {
            prop_assert!(seen.insert((e.slot, e.stage)), "stage {} double-booked at slot {}", e.stage, e.slot);
        }

        // Bubble accounting: span - busy = 2 (P - 1) per stage.
        prop_assert_eq!(sched.span(), 2 * (micro + stages - 1));
        prop_assert_eq!(sched.stage_busy(), 2 * micro);
        prop_assert_eq!(sched.bubbles_per_stage(), 2 * (stages - 1));
        for s in 0..stages {
            let busy = sched.entries().iter().filter(|e| e.stage == s).count();
            prop_assert_eq!(busy, sched.stage_busy());
        }
    }

    /// NMT lane slicing loses no cell across any of the three tensors.
    #[test]
    fn nmt_lane_slices_are_faithful(pairs in 4usize..16, batch in 2usize..5, seed in 0u64..100) {
        let corpus = ParallelCorpus::synthetic(Vocab::new(40), Vocab::new(30), pairs, 3..=7, seed);
        for b in NmtBatch::bucketed(corpus.pairs(), batch) {
            let lanes = b.batch;
            for lo in 0..lanes {
                for hi in lo..=lanes {
                    let s = echo_data::slice_nmt_lanes(&b, lo..hi);
                    prop_assert_eq!(s.batch, hi - lo);
                    prop_assert_eq!((s.src_len, s.tgt_len), (b.src_len, b.tgt_len));
                    for (i, lane) in (lo..hi).enumerate() {
                        for t in 0..b.src_len {
                            prop_assert_eq!(
                                s.source.data()[t * s.batch + i],
                                b.source.data()[t * b.batch + lane]
                            );
                        }
                        for t in 0..b.tgt_len {
                            prop_assert_eq!(
                                s.target_input.data()[t * s.batch + i],
                                b.target_input.data()[t * b.batch + lane]
                            );
                            prop_assert_eq!(
                                s.target_output.data()[t * s.batch + i],
                                b.target_output.data()[t * b.batch + lane]
                            );
                        }
                    }
                }
            }
        }
    }
}
