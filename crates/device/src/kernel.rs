//! Kernel cost descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a kernel, used by the trace aggregations that
/// reproduce the paper's runtime-breakdown figures (Figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelCategory {
    /// Matrix multiplies (`sgemm`) — the fully-connected layers.
    FullyConnected,
    /// Element-wise arithmetic (add, mul, slice, the LSTM "f" block pieces).
    Elementwise,
    /// tanh / sigmoid / relu activations.
    Activation,
    /// Softmax and the output loss.
    Softmax,
    /// The `SequenceReverse` operator (paper §5.1).
    SequenceReverse,
    /// Attention-specific kernels (broadcast compare, weighted average).
    Attention,
    /// Embedding gather/scatter.
    Embedding,
    /// Layout transposes / permutes.
    Transpose,
    /// Reductions (sums, means, norm).
    Reduction,
    /// Optimizer updates.
    Optimizer,
    /// Anything else.
    Other,
}

impl KernelCategory {
    /// All variants in display order.
    pub const ALL: [KernelCategory; 11] = [
        KernelCategory::FullyConnected,
        KernelCategory::Elementwise,
        KernelCategory::Activation,
        KernelCategory::Softmax,
        KernelCategory::SequenceReverse,
        KernelCategory::Attention,
        KernelCategory::Embedding,
        KernelCategory::Transpose,
        KernelCategory::Reduction,
        KernelCategory::Optimizer,
        KernelCategory::Other,
    ];
}

impl fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelCategory::FullyConnected => "fully-connected",
            KernelCategory::Elementwise => "elementwise",
            KernelCategory::Activation => "activation",
            KernelCategory::Softmax => "softmax",
            KernelCategory::SequenceReverse => "sequence-reverse",
            KernelCategory::Attention => "attention",
            KernelCategory::Embedding => "embedding",
            KernelCategory::Transpose => "transpose",
            KernelCategory::Reduction => "reduction",
            KernelCategory::Optimizer => "optimizer",
            KernelCategory::Other => "other",
        };
        f.write_str(s)
    }
}

/// Resource requirements of one kernel, from which the simulator derives
/// its duration via the roofline rule
/// `max(compute, dram, l2) + fixed overhead`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Bytes moved across the L2 interface (≥ `dram_bytes` in practice;
    /// zero means "same as DRAM bytes").
    pub l2_bytes: u64,
    /// Threads of parallelism the kernel exposes (drives the occupancy
    /// efficiency curve).
    pub parallelism: usize,
    /// Fraction of peak DRAM bandwidth the kernel's access pattern can use;
    /// 1.0 for perfectly coalesced streams. MXNet's sequential
    /// `SequenceReverse` sits near 0.002 (≈1 GB/s of 547 GB/s, §5.1).
    pub bandwidth_efficiency: f64,
}

impl KernelCost {
    /// A compute/memory kernel with explicit counts and default (0.85)
    /// bandwidth efficiency.
    pub fn new(flops: u64, dram_bytes: u64, parallelism: usize) -> Self {
        KernelCost {
            flops,
            dram_bytes,
            l2_bytes: 0,
            parallelism,
            bandwidth_efficiency: 0.85,
        }
    }

    /// A streaming element-wise kernel over `elems` values touching
    /// `tensors` operands (inputs + outputs).
    pub fn elementwise(elems: usize, tensors: usize) -> Self {
        KernelCost {
            flops: elems as u64,
            dram_bytes: (elems * tensors * 4) as u64,
            l2_bytes: 0,
            parallelism: elems,
            bandwidth_efficiency: 0.85,
        }
    }

    /// Sets the L2 traffic explicitly (builder style).
    #[must_use]
    pub fn with_l2_bytes(mut self, l2_bytes: u64) -> Self {
        self.l2_bytes = l2_bytes;
        self
    }

    /// Sets the bandwidth efficiency (builder style).
    #[must_use]
    pub fn with_bandwidth_efficiency(mut self, eff: f64) -> Self {
        self.bandwidth_efficiency = eff;
        self
    }

    /// Sets the exposed parallelism (builder style).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_counts_bytes() {
        let c = KernelCost::elementwise(1000, 3);
        assert_eq!(c.dram_bytes, 12_000);
        assert_eq!(c.flops, 1000);
        assert_eq!(c.parallelism, 1000);
    }

    #[test]
    fn builders_compose() {
        let c = KernelCost::new(100, 200, 32)
            .with_l2_bytes(400)
            .with_bandwidth_efficiency(0.5)
            .with_parallelism(64);
        assert_eq!(c.l2_bytes, 400);
        assert_eq!(c.bandwidth_efficiency, 0.5);
        assert_eq!(c.parallelism, 64);
    }

    #[test]
    fn categories_display_uniquely() {
        let mut names: Vec<String> = KernelCategory::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), KernelCategory::ALL.len());
    }
}
