//! Analytical GPU performance, power and energy model with kernel/API
//! tracing — the substitute for the paper's Titan Xp / Titan V /
//! RTX 2080 Ti testbed, `nvprof` and `nvidia-smi`.
//!
//! The paper's runtime observations are mechanistic, and this crate models
//! exactly those mechanisms rather than curve-fitting absolute numbers:
//!
//! * **Tiny kernels are launch-bound.** Every kernel launch costs the CPU a
//!   fixed `cudaLaunch` overhead; the GPU executes kernels in stream order.
//!   When kernels are short the GPU starves waiting for launches — the
//!   MXNet "Default" LSTM pathology of Figures 6 and 7(a).
//! * **Big kernels are roofline-bound.** A kernel's duration is the max of
//!   its compute time (FLOPs over achievable FLOP/s), DRAM time (bytes over
//!   bandwidth) and L2 time (transactions over L2 bandwidth). GEMM memory
//!   behaviour comes from the `echo-cachesim` trace simulator, so data
//!   layout genuinely changes kernel time (Figure 9).
//! * **Throughput saturates when compute does.** Achievable FLOP/s scales
//!   with occupancy, so ResNet-50-sized kernels saturate the device while
//!   LSTM-sized ones leave it underutilized (Figure 4).
//! * **Power follows utilization.** Energy integrates a simple
//!   idle + utilization-proportional dynamic power model (Figure 19).
//!
//! # Example
//!
//! ```
//! use echo_device::{DeviceSim, DeviceSpec, KernelCategory, KernelCost};
//!
//! let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
//! // A tiny element-wise kernel: launch overhead dominates.
//! sim.launch("tanh", KernelCategory::Elementwise, KernelCost::elementwise(64 * 512, 2));
//! sim.synchronize();
//! assert!(sim.elapsed_ns() >= DeviceSpec::titan_xp().launch_overhead_ns);
//! ```

#![warn(missing_docs)]

pub mod kernel;
pub mod scaling;
pub mod sim;
pub mod spec;

pub use kernel::{KernelCategory, KernelCost};
pub use scaling::{CommModel, PipelineModel, PipelineProjection, ScalingPoint, ScalingReport};
pub use sim::{ApiStats, DeviceSim, KernelRecord, TraceSummary};
pub use spec::DeviceSpec;
