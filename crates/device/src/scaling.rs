//! Multi-GPU scaling projection from per-replica simulated step times.
//!
//! The paper's multi-GPU evaluation ([§6.6], Figure 17) reports
//! throughput at 1–4 GPUs with gradients all-reduced every step. The
//! host-side data-parallel trainer measures each replica's *simulated*
//! compute time per step; this module folds those measurements together
//! with an analytic interconnect model into the projected step time of a
//! synchronous data-parallel system:
//!
//! ```text
//! step(K) = max_r compute_ns(r) + all_reduce_ns(grad_bytes, K)
//! ```
//!
//! The all-reduce term mirrors the trainer's binary-tree topology: a
//! `log2 K`-level reduce followed by a `log2 K`-level broadcast, each
//! level moving the full gradient payload across one link. A ring model
//! is also provided for comparison (it is bandwidth-optimal but pays
//! `2(K-1)` latency hops).
//!
//! [§6.6]: https://arxiv.org/abs/1805.08899

use serde::Serialize;
use std::fmt;

/// An interconnect: point-to-point bandwidth plus per-transfer latency.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CommModel {
    /// Effective point-to-point bandwidth in bytes per second.
    pub link_bandwidth: f64,
    /// Per-transfer fixed cost in nanoseconds (driver + DMA setup).
    pub latency_ns: u64,
}

impl CommModel {
    /// PCIe 3.0 x16 as on the paper's single-machine testbed:
    /// ~12 GB/s effective, ~10 µs per transfer.
    pub fn pcie_gen3() -> Self {
        CommModel {
            link_bandwidth: 12.0e9,
            latency_ns: 10_000,
        }
    }

    /// NVLink-class interconnect: ~150 GB/s effective, ~5 µs.
    pub fn nvlink() -> Self {
        CommModel {
            link_bandwidth: 150.0e9,
            latency_ns: 5_000,
        }
    }

    /// One point-to-point transfer of `bytes`.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.link_bandwidth * 1e9).ceil() as u64
    }

    /// Binary-tree all-reduce of `bytes` across `replicas` devices:
    /// `log2 K` reduce levels plus `log2 K` broadcast levels, each
    /// moving the full payload. Zero for a single replica.
    pub fn tree_all_reduce_ns(&self, bytes: u64, replicas: usize) -> u64 {
        assert!(replicas > 0, "at least one replica");
        let levels = replicas.next_power_of_two().trailing_zeros() as u64;
        2 * levels * self.transfer_ns(bytes)
    }

    /// Ring all-reduce of `bytes` across `replicas` devices:
    /// bandwidth-optimal `2(K-1)/K · bytes` on the wire, `2(K-1)`
    /// latency hops. Zero for a single replica.
    pub fn ring_all_reduce_ns(&self, bytes: u64, replicas: usize) -> u64 {
        assert!(replicas > 0, "at least one replica");
        if replicas == 1 {
            return 0;
        }
        let hops = 2 * (replicas as u64 - 1);
        let chunk = (bytes as f64 / replicas as f64).ceil() as u64;
        hops * self.transfer_ns(chunk)
    }
}

/// The projected behaviour of one replica count.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Device count.
    pub replicas: usize,
    /// Slowest replica's simulated compute time per step.
    pub compute_ns: u64,
    /// Tree all-reduce time per step.
    pub comm_ns: u64,
    /// `compute + comm`.
    pub step_ns: u64,
    /// Serial step time divided by this step time.
    pub speedup: f64,
    /// `speedup / replicas`.
    pub efficiency: f64,
}

/// A table of [`ScalingPoint`]s against a fixed serial baseline —
/// the repo's analogue of the paper's Figure 17.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Simulated single-replica, full-batch step time.
    pub serial_step_ns: u64,
    /// Bytes all-reduced per step (sum of gradient tensor sizes).
    pub grad_bytes: u64,
    /// Interconnect model used for the communication term.
    pub comm: CommModel,
    /// Measured points, in insertion order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// Starts an empty report against a serial baseline.
    pub fn new(serial_step_ns: u64, grad_bytes: u64, comm: CommModel) -> Self {
        ScalingReport {
            serial_step_ns,
            grad_bytes,
            comm,
            points: Vec::new(),
        }
    }

    /// Adds a measurement: the per-replica simulated compute times of
    /// one (averaged) step at `per_replica_ns.len()` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `per_replica_ns` is empty.
    pub fn push_measurement(&mut self, per_replica_ns: &[u64]) {
        let replicas = per_replica_ns.len();
        assert!(replicas > 0, "at least one replica measurement");
        let compute_ns = *per_replica_ns.iter().max().expect("non-empty");
        let comm_ns = if replicas == 1 {
            0
        } else {
            self.comm.tree_all_reduce_ns(self.grad_bytes, replicas)
        };
        let step_ns = compute_ns + comm_ns;
        let speedup = self.serial_step_ns as f64 / step_ns.max(1) as f64;
        self.points.push(ScalingPoint {
            replicas,
            compute_ns,
            comm_ns,
            step_ns,
            speedup,
            efficiency: speedup / replicas as f64,
        });
    }
}

impl fmt::Display for ScalingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serial step {:.3} ms | all-reduce payload {:.2} MiB | link {:.0} GB/s + {} us",
            self.serial_step_ns as f64 * 1e-6,
            self.grad_bytes as f64 / (1 << 20) as f64,
            self.comm.link_bandwidth * 1e-9,
            self.comm.latency_ns / 1000,
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>12} {:>12} {:>9} {:>11}",
            "gpus", "compute(ms)", "comm(ms)", "step(ms)", "speedup", "efficiency"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10.0}%",
                p.replicas,
                p.compute_ns as f64 * 1e-6,
                p.comm_ns as f64 * 1e-6,
                p.step_ns as f64 * 1e-6,
                p.speedup,
                p.efficiency * 100.0,
            )?;
        }
        Ok(())
    }
}

/// An analytical fill–drain pipeline model over measured (or simulated)
/// per-stage costs — the communication-model counterpart of
/// [`ScalingReport`] for GPipe-style stage parallelism.
///
/// The model mirrors the trainer's execution faithfully: during fill,
/// every stage but the last forwards each micro-batch once and streams
/// the cut activations downstream; during drain, *every* stage re-runs
/// its forward inside the seeded stage backward (re-materialization), so
/// the per-micro drain cost of stage `s` is `fwd[s] + bwd[s]`, and a
/// stage only starts draining after its fill completes.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineModel {
    /// Per-stage, per-micro-batch forward time.
    pub stage_fwd_ns: Vec<u64>,
    /// Per-stage, per-micro-batch backward time (backward walk only; the
    /// model adds the forward re-run itself).
    pub stage_bwd_ns: Vec<u64>,
    /// Activation bytes crossing each cut per micro-batch
    /// (`stages - 1` entries).
    pub cut_bytes: Vec<u64>,
    /// Interconnect model for the cut transfers.
    pub comm: CommModel,
}

/// The projected behaviour of one `(stages, micro)` pipeline
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineProjection {
    /// Pipeline depth.
    pub stages: usize,
    /// Micro-batches per step (fill depth).
    pub micro: usize,
    /// Projected pipelined step time (fill + drain, including cut
    /// transfers and the re-materialized forwards).
    pub pipelined_ns: u64,
    /// Serial baseline: every micro-batch through every stage on one
    /// device, forward once, backward once, no transfers.
    pub serial_ns: u64,
    /// `serial / pipelined`.
    pub speedup: f64,
    /// `speedup / stages` — the scaling efficiency comparable to
    /// [`ScalingPoint::efficiency`].
    pub efficiency: f64,
    /// Idle time of the busiest stage: `pipelined` minus that stage's
    /// total busy time. The GPipe bubble.
    pub bubble_ns: u64,
}

impl PipelineModel {
    /// Projects the fill–drain makespan for `micro` micro-batches.
    ///
    /// # Panics
    ///
    /// Panics if the cost vectors disagree on the stage count, the cut
    /// count is not `stages - 1`, or `micro` is zero.
    pub fn project(&self, micro: usize) -> PipelineProjection {
        let stages = self.stage_fwd_ns.len();
        assert_eq!(stages, self.stage_bwd_ns.len(), "one bwd cost per stage");
        assert_eq!(self.cut_bytes.len() + 1, stages, "one cut per boundary");
        assert!(micro > 0, "at least one micro-batch");
        let xfer: Vec<u64> = self
            .cut_bytes
            .iter()
            .map(|&b| self.comm.transfer_ns(b))
            .collect();

        // Fill: stage s forwards micro m after its previous micro and
        // after the upstream activation arrives. The last stage only
        // receives (its forward runs inside the drain).
        let mut fill = vec![vec![0u64; micro]; stages];
        for s in 0..stages {
            let fwd = if s + 1 == stages {
                0
            } else {
                self.stage_fwd_ns[s]
            };
            for m in 0..micro {
                let prev = if m > 0 { fill[s][m - 1] } else { 0 };
                let arrival = if s > 0 {
                    fill[s - 1][m] + xfer[s - 1]
                } else {
                    0
                };
                fill[s][m] = prev.max(arrival) + fwd;
            }
        }
        // Drain: stage s re-runs forward + backward per micro, after its
        // whole fill, its previous micro, and (below the last stage) the
        // downstream gradient.
        let mut drain = vec![vec![0u64; micro]; stages];
        for s in (0..stages).rev() {
            let cost = self.stage_fwd_ns[s] + self.stage_bwd_ns[s];
            for m in 0..micro {
                let prev = if m > 0 { drain[s][m - 1] } else { 0 };
                let grad = if s + 1 < stages {
                    drain[s + 1][m] + xfer[s]
                } else {
                    0
                };
                drain[s][m] = prev.max(grad).max(fill[s][micro - 1]) + cost;
            }
        }
        let pipelined_ns = (0..stages).map(|s| drain[s][micro - 1]).max().unwrap_or(0);
        let serial_ns: u64 = (0..stages)
            .map(|s| micro as u64 * (self.stage_fwd_ns[s] + self.stage_bwd_ns[s]))
            .sum();
        let busiest = (0..stages)
            .map(|s| {
                let fill_busy = if s + 1 == stages {
                    0
                } else {
                    micro as u64 * self.stage_fwd_ns[s]
                };
                fill_busy + micro as u64 * (self.stage_fwd_ns[s] + self.stage_bwd_ns[s])
            })
            .max()
            .unwrap_or(0);
        let speedup = serial_ns as f64 / pipelined_ns.max(1) as f64;
        PipelineProjection {
            stages,
            micro,
            pipelined_ns,
            serial_ns,
            speedup,
            efficiency: speedup / stages.max(1) as f64,
            bubble_ns: pipelined_ns.saturating_sub(busiest),
        }
    }
}

impl fmt::Display for PipelineProjection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={} M={}: pipelined {:.3} ms vs serial {:.3} ms | speedup {:.2}x | \
             efficiency {:.0}% | bubble {:.3} ms",
            self.stages,
            self.micro,
            self.pipelined_ns as f64 * 1e-6,
            self.serial_ns as f64 * 1e-6,
            self.speedup,
            self.efficiency * 100.0,
            self.bubble_ns as f64 * 1e-6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_model_single_stage_matches_serial() {
        let m = PipelineModel {
            stage_fwd_ns: vec![10],
            stage_bwd_ns: vec![20],
            cut_bytes: vec![],
            comm: CommModel::pcie_gen3(),
        };
        let p = m.project(8);
        assert_eq!(p.pipelined_ns, p.serial_ns);
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert_eq!(p.bubble_ns, 0);
    }

    #[test]
    fn pipeline_model_two_balanced_stages_beat_serial() {
        let m = PipelineModel {
            stage_fwd_ns: vec![10, 10],
            stage_bwd_ns: vec![20, 20],
            cut_bytes: vec![0],
            comm: CommModel {
                link_bandwidth: 1e12,
                latency_ns: 0,
            },
        };
        let p = m.project(8);
        assert!(p.speedup > 1.0, "balanced pipeline must beat serial: {p}");
        assert!(p.pipelined_ns < p.serial_ns);
        // Drain dominates: with fill 8·10 and drain 8·30 per stage, the
        // makespan is bounded below by the busiest stage.
        assert!(p.pipelined_ns >= 8 * 30);
    }

    #[test]
    fn transfer_combines_latency_and_bandwidth() {
        let m = CommModel {
            link_bandwidth: 1e9,
            latency_ns: 1_000,
        };
        // 1 GB at 1 GB/s = 1 s plus latency.
        assert_eq!(m.transfer_ns(1_000_000_000), 1_000_000_000 + 1_000);
    }

    #[test]
    fn tree_all_reduce_scales_with_levels() {
        let m = CommModel {
            link_bandwidth: 1e9,
            latency_ns: 0,
        };
        let one = m.tree_all_reduce_ns(1_000, 2);
        assert_eq!(m.tree_all_reduce_ns(1_000, 4), 2 * one);
        assert_eq!(m.tree_all_reduce_ns(1_000, 1), 0);
    }

    #[test]
    fn ring_beats_tree_on_bandwidth_at_scale() {
        let m = CommModel {
            link_bandwidth: 12e9,
            latency_ns: 0,
        };
        let bytes = 100 << 20;
        assert!(m.ring_all_reduce_ns(bytes, 8) < m.tree_all_reduce_ns(bytes, 8));
    }

    #[test]
    fn report_computes_speedup_against_serial() {
        let mut r = ScalingReport::new(
            8_000_000,
            1 << 20,
            CommModel {
                link_bandwidth: 1e12,
                latency_ns: 0,
            },
        );
        r.push_measurement(&[8_000_000]);
        r.push_measurement(&[4_000_000, 4_100_000]);
        assert_eq!(r.points[0].comm_ns, 0);
        assert!((r.points[0].speedup - 1.0).abs() < 1e-9);
        // Max over replicas is the critical path.
        assert_eq!(r.points[1].compute_ns, 4_100_000);
        assert!(r.points[1].speedup > 1.5 && r.points[1].speedup < 2.0);
        assert!(r.points[1].efficiency < 1.0);
        // The table renders one row per point.
        assert_eq!(r.to_string().lines().count(), 2 + r.points.len());
    }
}
