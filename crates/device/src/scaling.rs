//! Multi-GPU scaling projection from per-replica simulated step times.
//!
//! The paper's multi-GPU evaluation ([§6.6], Figure 17) reports
//! throughput at 1–4 GPUs with gradients all-reduced every step. The
//! host-side data-parallel trainer measures each replica's *simulated*
//! compute time per step; this module folds those measurements together
//! with an analytic interconnect model into the projected step time of a
//! synchronous data-parallel system:
//!
//! ```text
//! step(K) = max_r compute_ns(r) + all_reduce_ns(grad_bytes, K)
//! ```
//!
//! The all-reduce term mirrors the trainer's binary-tree topology: a
//! `log2 K`-level reduce followed by a `log2 K`-level broadcast, each
//! level moving the full gradient payload across one link. A ring model
//! is also provided for comparison (it is bandwidth-optimal but pays
//! `2(K-1)` latency hops).
//!
//! [§6.6]: https://arxiv.org/abs/1805.08899

use serde::Serialize;
use std::fmt;

/// An interconnect: point-to-point bandwidth plus per-transfer latency.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CommModel {
    /// Effective point-to-point bandwidth in bytes per second.
    pub link_bandwidth: f64,
    /// Per-transfer fixed cost in nanoseconds (driver + DMA setup).
    pub latency_ns: u64,
}

impl CommModel {
    /// PCIe 3.0 x16 as on the paper's single-machine testbed:
    /// ~12 GB/s effective, ~10 µs per transfer.
    pub fn pcie_gen3() -> Self {
        CommModel {
            link_bandwidth: 12.0e9,
            latency_ns: 10_000,
        }
    }

    /// NVLink-class interconnect: ~150 GB/s effective, ~5 µs.
    pub fn nvlink() -> Self {
        CommModel {
            link_bandwidth: 150.0e9,
            latency_ns: 5_000,
        }
    }

    /// One point-to-point transfer of `bytes`.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.link_bandwidth * 1e9).ceil() as u64
    }

    /// Binary-tree all-reduce of `bytes` across `replicas` devices:
    /// `log2 K` reduce levels plus `log2 K` broadcast levels, each
    /// moving the full payload. Zero for a single replica.
    pub fn tree_all_reduce_ns(&self, bytes: u64, replicas: usize) -> u64 {
        assert!(replicas > 0, "at least one replica");
        let levels = replicas.next_power_of_two().trailing_zeros() as u64;
        2 * levels * self.transfer_ns(bytes)
    }

    /// Ring all-reduce of `bytes` across `replicas` devices:
    /// bandwidth-optimal `2(K-1)/K · bytes` on the wire, `2(K-1)`
    /// latency hops. Zero for a single replica.
    pub fn ring_all_reduce_ns(&self, bytes: u64, replicas: usize) -> u64 {
        assert!(replicas > 0, "at least one replica");
        if replicas == 1 {
            return 0;
        }
        let hops = 2 * (replicas as u64 - 1);
        let chunk = (bytes as f64 / replicas as f64).ceil() as u64;
        hops * self.transfer_ns(chunk)
    }
}

/// The projected behaviour of one replica count.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Device count.
    pub replicas: usize,
    /// Slowest replica's simulated compute time per step.
    pub compute_ns: u64,
    /// Tree all-reduce time per step.
    pub comm_ns: u64,
    /// `compute + comm`.
    pub step_ns: u64,
    /// Serial step time divided by this step time.
    pub speedup: f64,
    /// `speedup / replicas`.
    pub efficiency: f64,
}

/// A table of [`ScalingPoint`]s against a fixed serial baseline —
/// the repo's analogue of the paper's Figure 17.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Simulated single-replica, full-batch step time.
    pub serial_step_ns: u64,
    /// Bytes all-reduced per step (sum of gradient tensor sizes).
    pub grad_bytes: u64,
    /// Interconnect model used for the communication term.
    pub comm: CommModel,
    /// Measured points, in insertion order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// Starts an empty report against a serial baseline.
    pub fn new(serial_step_ns: u64, grad_bytes: u64, comm: CommModel) -> Self {
        ScalingReport {
            serial_step_ns,
            grad_bytes,
            comm,
            points: Vec::new(),
        }
    }

    /// Adds a measurement: the per-replica simulated compute times of
    /// one (averaged) step at `per_replica_ns.len()` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `per_replica_ns` is empty.
    pub fn push_measurement(&mut self, per_replica_ns: &[u64]) {
        let replicas = per_replica_ns.len();
        assert!(replicas > 0, "at least one replica measurement");
        let compute_ns = *per_replica_ns.iter().max().expect("non-empty");
        let comm_ns = if replicas == 1 {
            0
        } else {
            self.comm.tree_all_reduce_ns(self.grad_bytes, replicas)
        };
        let step_ns = compute_ns + comm_ns;
        let speedup = self.serial_step_ns as f64 / step_ns.max(1) as f64;
        self.points.push(ScalingPoint {
            replicas,
            compute_ns,
            comm_ns,
            step_ns,
            speedup,
            efficiency: speedup / replicas as f64,
        });
    }
}

impl fmt::Display for ScalingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serial step {:.3} ms | all-reduce payload {:.2} MiB | link {:.0} GB/s + {} us",
            self.serial_step_ns as f64 * 1e-6,
            self.grad_bytes as f64 / (1 << 20) as f64,
            self.comm.link_bandwidth * 1e-9,
            self.comm.latency_ns / 1000,
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>12} {:>12} {:>9} {:>11}",
            "gpus", "compute(ms)", "comm(ms)", "step(ms)", "speedup", "efficiency"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10.0}%",
                p.replicas,
                p.compute_ns as f64 * 1e-6,
                p.comm_ns as f64 * 1e-6,
                p.step_ns as f64 * 1e-6,
                p.speedup,
                p.efficiency * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_combines_latency_and_bandwidth() {
        let m = CommModel {
            link_bandwidth: 1e9,
            latency_ns: 1_000,
        };
        // 1 GB at 1 GB/s = 1 s plus latency.
        assert_eq!(m.transfer_ns(1_000_000_000), 1_000_000_000 + 1_000);
    }

    #[test]
    fn tree_all_reduce_scales_with_levels() {
        let m = CommModel {
            link_bandwidth: 1e9,
            latency_ns: 0,
        };
        let one = m.tree_all_reduce_ns(1_000, 2);
        assert_eq!(m.tree_all_reduce_ns(1_000, 4), 2 * one);
        assert_eq!(m.tree_all_reduce_ns(1_000, 1), 0);
    }

    #[test]
    fn ring_beats_tree_on_bandwidth_at_scale() {
        let m = CommModel {
            link_bandwidth: 12e9,
            latency_ns: 0,
        };
        let bytes = 100 << 20;
        assert!(m.ring_all_reduce_ns(bytes, 8) < m.tree_all_reduce_ns(bytes, 8));
    }

    #[test]
    fn report_computes_speedup_against_serial() {
        let mut r = ScalingReport::new(
            8_000_000,
            1 << 20,
            CommModel {
                link_bandwidth: 1e12,
                latency_ns: 0,
            },
        );
        r.push_measurement(&[8_000_000]);
        r.push_measurement(&[4_000_000, 4_100_000]);
        assert_eq!(r.points[0].comm_ns, 0);
        assert!((r.points[0].speedup - 1.0).abs() < 1e-9);
        // Max over replicas is the critical path.
        assert_eq!(r.points[1].compute_ns, 4_100_000);
        assert!(r.points[1].speedup > 1.5 && r.points[1].speedup < 2.0);
        assert!(r.points[1].efficiency < 1.0);
        // The table renders one row per point.
        assert_eq!(r.to_string().lines().count(), 2 + r.points.len());
    }
}
