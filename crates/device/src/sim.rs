//! The device simulator: stream-ordered kernel execution, CUDA API
//! accounting, power integration and trace aggregation.

use crate::kernel::{KernelCategory, KernelCost};
use crate::spec::DeviceSpec;
use echo_cachesim::{simulate_gemm, GemmMemReport, TiledGemmSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One executed kernel in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel name (e.g. `sgemm_lstm_gates`).
    pub name: String,
    /// Classification for breakdown figures.
    pub category: KernelCategory,
    /// GPU start time, nanoseconds since trace start.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
}

/// CUDA API time accounting (the right-hand bar of Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiStats {
    /// Total CPU time spent in `cudaLaunch`.
    pub launch_ns: u64,
    /// Number of launches.
    pub launch_calls: u64,
    /// Total CPU time spent blocked in `cudaSynchronize`.
    pub sync_ns: u64,
    /// Number of synchronizations.
    pub sync_calls: u64,
}

/// Aggregated view of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Wall-clock span of the trace in nanoseconds.
    pub elapsed_ns: u64,
    /// Sum of kernel durations.
    pub kernel_ns: u64,
    /// Kernel time by category, descending.
    pub by_category: Vec<(KernelCategory, u64)>,
    /// Kernel time by name, descending.
    pub by_name: Vec<(String, u64)>,
    /// API accounting.
    pub api: ApiStats,
}

impl TraceSummary {
    /// Kernel time attributed to one category.
    pub fn category_ns(&self, cat: KernelCategory) -> u64 {
        self.by_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Fraction of total kernel time in one category.
    pub fn category_fraction(&self, cat: KernelCategory) -> f64 {
        if self.kernel_ns == 0 {
            0.0
        } else {
            self.category_ns(cat) as f64 / self.kernel_ns as f64
        }
    }
}

/// A simulated GPU attached to a host thread.
///
/// Kernels execute in stream order. Launching costs the CPU
/// [`DeviceSpec::launch_overhead_ns`]; a kernel starts when both the CPU
/// has submitted it and the GPU has finished its predecessor — which is
/// what makes a train of tiny kernels launch-bound while a fused
/// implementation is roofline-bound.
///
/// # Example
///
/// ```
/// use echo_device::{DeviceSim, DeviceSpec, KernelCategory, KernelCost};
///
/// let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
/// for _ in 0..100 {
///     sim.launch("small", KernelCategory::Elementwise, KernelCost::elementwise(1000, 2));
/// }
/// sim.synchronize();
/// let trace = sim.summary();
/// // 100 `cudaLaunch` calls dominate: the GPU starves.
/// assert_eq!(trace.api.launch_calls, 100);
/// assert!(trace.api.launch_ns >= 100 * DeviceSpec::titan_xp().launch_overhead_ns);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceSim {
    spec: DeviceSpec,
    cpu_ns: u64,
    gpu_ready_ns: u64,
    records: Vec<KernelRecord>,
    api: ApiStats,
    energy_j: f64,
    busy_energy_j: f64,
    gemm_cache: HashMap<TiledGemmSpec, GemmMemReport>,
    record_trace: bool,
    op_overhead_ns: u64,
    kernel_ns_by_cat: HashMap<KernelCategory, u64>,
    kernel_ns_by_name: HashMap<String, u64>,
    kernel_ns_total: u64,
    last_kernel_end_ns: u64,
}

impl DeviceSim {
    /// Creates a simulator for `spec` with full tracing enabled.
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceSim {
            spec,
            cpu_ns: 0,
            gpu_ready_ns: 0,
            records: Vec::new(),
            api: ApiStats::default(),
            energy_j: 0.0,
            busy_energy_j: 0.0,
            gemm_cache: HashMap::new(),
            record_trace: true,
            op_overhead_ns: 0,
            kernel_ns_by_cat: HashMap::new(),
            kernel_ns_by_name: HashMap::new(),
            kernel_ns_total: 0,
            last_kernel_end_ns: 0,
        }
    }

    /// Disables per-kernel record keeping (aggregates are still kept);
    /// useful for long training simulations.
    pub fn set_record_trace(&mut self, record: bool) {
        self.record_trace = record;
    }

    /// Sets the CPU-side cost of dispatching one framework operator
    /// (graph-executor bookkeeping, Python/C++ glue — distinct from the
    /// per-kernel `cudaLaunch` cost). MXNet-era symbolic executors spend
    /// 20–100 µs per op from Python, a few µs from C++; this is the
    /// B-independent overhead that makes NMT training throughput scale
    /// with batch size (paper Figure 4b) and hides the cost of extra
    /// replay kernels.
    pub fn set_op_overhead_ns(&mut self, ns: u64) {
        self.op_overhead_ns = ns;
    }

    /// Advances the CPU clock by one operator dispatch.
    pub fn dispatch_op(&mut self) {
        self.cpu_ns += self.op_overhead_ns;
    }

    /// The device being simulated.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Computes a kernel's duration under the roofline rule without
    /// launching it.
    pub fn kernel_duration_ns(&self, cost: &KernelCost) -> u64 {
        let eff = self.spec.compute_efficiency(cost.parallelism);
        let t_compute = cost.flops as f64 / (self.spec.peak_flops * eff);
        let bw = self.spec.dram_bandwidth * cost.bandwidth_efficiency.clamp(1e-6, 1.0);
        let t_dram = cost.dram_bytes as f64 / bw;
        let t_l2 = cost.l2_bytes as f64 / self.spec.l2_bandwidth;
        let t = t_compute.max(t_dram).max(t_l2);
        (t * 1e9) as u64 + self.spec.kernel_fixed_ns
    }

    /// Launches a kernel: advances the CPU by the launch overhead, queues
    /// the kernel on the GPU stream, integrates energy. Returns the kernel
    /// duration in nanoseconds.
    pub fn launch(&mut self, name: &str, category: KernelCategory, cost: KernelCost) -> u64 {
        let duration = self.kernel_duration_ns(&cost);

        // CPU side: cudaLaunch.
        let submit_ns = self.cpu_ns + self.spec.launch_overhead_ns;
        self.cpu_ns = submit_ns;
        self.api.launch_ns += self.spec.launch_overhead_ns;
        self.api.launch_calls += 1;

        // GPU side: starts when submitted and predecessor finished.
        let start_ns = submit_ns.max(self.gpu_ready_ns);
        let end_ns = start_ns + duration;

        // Energy: idle gap then busy kernel.
        let gap_ns = start_ns.saturating_sub(self.last_kernel_end_ns);
        self.energy_j += self.spec.idle_power_w * gap_ns as f64 * 1e-9;
        let eff = self.spec.compute_efficiency(cost.parallelism);
        let t_compute = cost.flops as f64 / (self.spec.peak_flops * eff) * 1e9;
        let t_dram = cost.dram_bytes as f64
            / (self.spec.dram_bandwidth * cost.bandwidth_efficiency.clamp(1e-6, 1.0))
            * 1e9;
        let comp_frac = (t_compute / duration as f64).min(1.0);
        let mem_frac = (t_dram / duration as f64).min(1.0);
        let util = (comp_frac + 0.4 * mem_frac).min(1.0);
        let power =
            self.spec.idle_power_w + (self.spec.max_power_w - self.spec.idle_power_w) * util;
        let kernel_energy = power * duration as f64 * 1e-9;
        self.energy_j += kernel_energy;
        self.busy_energy_j += kernel_energy;

        self.gpu_ready_ns = end_ns;
        self.last_kernel_end_ns = end_ns;
        self.kernel_ns_total += duration;
        *self.kernel_ns_by_cat.entry(category).or_default() += duration;
        *self.kernel_ns_by_name.entry(name.to_string()).or_default() += duration;
        if self.record_trace {
            self.records.push(KernelRecord {
                name: name.to_string(),
                category,
                start_ns,
                duration_ns: duration,
            });
        }
        duration
    }

    /// Launches a GEMM whose memory behaviour comes from the trace
    /// simulator (memoized per problem/layout). Returns the duration.
    pub fn launch_gemm(&mut self, name: &str, gemm: &TiledGemmSpec) -> u64 {
        let report = self
            .gemm_cache
            .entry(gemm.clone())
            .or_insert_with(|| simulate_gemm(gemm, &self.spec.l2))
            .to_owned();
        let l2_bytes = (report.load_transactions + report.store_transactions) * 32;
        let cost = KernelCost::new(report.flops, report.total_dram_bytes(), gemm.m * gemm.n)
            .with_l2_bytes(l2_bytes)
            .with_bandwidth_efficiency(0.9);
        self.launch(name, KernelCategory::FullyConnected, cost)
    }

    /// Blocks the CPU until the GPU stream drains (`cudaSynchronize`).
    pub fn synchronize(&mut self) {
        let wait = self.gpu_ready_ns.saturating_sub(self.cpu_ns);
        self.api.sync_ns += wait;
        self.api.sync_calls += 1;
        self.cpu_ns = self.cpu_ns.max(self.gpu_ready_ns);
    }

    /// Wall-clock nanoseconds elapsed (host view).
    pub fn elapsed_ns(&self) -> u64 {
        self.cpu_ns.max(self.gpu_ready_ns)
    }

    /// Total energy consumed, joules (includes idle floor up to the last
    /// kernel's end).
    pub fn energy_joules(&self) -> f64 {
        self.energy_j
    }

    /// Average board power over the elapsed window, watts.
    pub fn average_power_w(&self) -> f64 {
        let elapsed = self.elapsed_ns();
        if elapsed == 0 {
            return self.spec.idle_power_w;
        }
        // Time after the last kernel (CPU overhang) idles.
        let tail = elapsed.saturating_sub(self.last_kernel_end_ns);
        let total = self.energy_j + self.spec.idle_power_w * tail as f64 * 1e-9;
        total / (elapsed as f64 * 1e-9)
    }

    /// The per-kernel records (empty if tracing was disabled).
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// API accounting so far.
    pub fn api_stats(&self) -> &ApiStats {
        &self.api
    }

    /// Builds the aggregate summary of everything launched so far.
    pub fn summary(&self) -> TraceSummary {
        let mut by_category: Vec<(KernelCategory, u64)> = self
            .kernel_ns_by_cat
            .iter()
            .map(|(&c, &ns)| (c, ns))
            .collect();
        by_category.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let mut by_name: Vec<(String, u64)> = self
            .kernel_ns_by_name
            .iter()
            .map(|(n, &ns)| (n.clone(), ns))
            .collect();
        by_name.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        TraceSummary {
            elapsed_ns: self.elapsed_ns(),
            kernel_ns: self.kernel_ns_total,
            by_category,
            by_name,
            api: self.api,
        }
    }

    /// Clears clocks, traces, API stats and energy, keeping the memoized
    /// GEMM reports (they depend only on problem geometry).
    pub fn reset(&mut self) {
        self.cpu_ns = 0;
        self.gpu_ready_ns = 0;
        self.records.clear();
        self.api = ApiStats::default();
        self.energy_j = 0.0;
        self.busy_energy_j = 0.0;
        self.kernel_ns_by_cat.clear();
        self.kernel_ns_by_name.clear();
        self.kernel_ns_total = 0;
        self.last_kernel_end_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_cachesim::TiledGemmSpec;

    fn sim() -> DeviceSim {
        DeviceSim::new(DeviceSpec::titan_xp())
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let mut s = sim();
        let n = 200;
        for _ in 0..n {
            s.launch(
                "tiny",
                KernelCategory::Elementwise,
                KernelCost::elementwise(1024, 2),
            );
        }
        s.synchronize();
        let launch_total = n * s.spec().launch_overhead_ns;
        // Wall clock is within 25% of pure launch overhead: the GPU starves.
        assert!(s.elapsed_ns() >= launch_total);
        assert!(s.elapsed_ns() < launch_total * 5 / 4);
        // Kernels themselves were much cheaper than the wall clock.
        assert!(s.summary().kernel_ns < s.elapsed_ns());
    }

    #[test]
    fn big_kernel_is_roofline_bound() {
        let mut s = sim();
        // 1 GiB of streaming traffic: ~2 ms at 547 GB/s.
        let cost = KernelCost::new(1000, 1 << 30, 1 << 20);
        s.launch("bigcopy", KernelCategory::Elementwise, cost);
        s.synchronize();
        let expected = (1u64 << 30) as f64 / (547.6e9 * 0.85) * 1e9;
        let got = s.elapsed_ns() as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.1,
            "got {got} expected {expected}"
        );
        // Sync time accounts for the GPU running ahead of the CPU.
        assert!(s.api_stats().sync_ns > 0);
    }

    #[test]
    fn gemm_layouts_change_duration() {
        let mut s = sim();
        let rm = s.launch_gemm("fc_rm", &TiledGemmSpec::fc_row_major(64, 512, 2048));
        let cm = s.launch_gemm("fc_cm", &TiledGemmSpec::fc_col_major(64, 512, 2048));
        assert!(
            rm as f64 / cm as f64 > 1.3,
            "row-major {rm} ns should be slower than col-major {cm} ns"
        );
    }

    #[test]
    fn gemm_reports_are_memoized() {
        let mut s = sim();
        let spec = TiledGemmSpec::fc_row_major(64, 512, 2048);
        let d1 = s.launch_gemm("fc", &spec);
        let d2 = s.launch_gemm("fc", &spec);
        assert_eq!(d1, d2);
        assert_eq!(s.gemm_cache.len(), 1);
    }

    #[test]
    fn sequential_reverse_is_catastrophically_slow() {
        let mut s = sim();
        let bytes = (128 * 50 * 512 * 4) as u64;
        // Paper §5.1: ~1 GB/s effective read bandwidth.
        let slow = KernelCost::new(0, bytes, 128).with_bandwidth_efficiency(0.002);
        let fast = KernelCost::new(0, bytes, 128 * 50 * 512).with_bandwidth_efficiency(0.8);
        let t_slow = s.launch("seqrev_seq", KernelCategory::SequenceReverse, slow);
        let t_fast = s.launch("seqrev_par", KernelCategory::SequenceReverse, fast);
        assert!(t_slow > t_fast * 100);
    }

    #[test]
    fn summary_orders_and_attributes() {
        let mut s = sim();
        s.launch(
            "a",
            KernelCategory::Softmax,
            KernelCost::new(0, 1 << 20, 1024),
        );
        s.launch(
            "b",
            KernelCategory::FullyConnected,
            KernelCost::new(0, 1 << 26, 1024),
        );
        s.synchronize();
        let t = s.summary();
        assert_eq!(t.by_category[0].0, KernelCategory::FullyConnected);
        assert!(t.category_fraction(KernelCategory::FullyConnected) > 0.9);
        assert_eq!(t.by_name[0].0, "b");
        assert_eq!(t.api.launch_calls, 2);
    }

    #[test]
    fn energy_increases_with_work_and_power_is_bounded() {
        let mut s = sim();
        s.launch(
            "k",
            KernelCategory::FullyConnected,
            KernelCost::new(1 << 32, 1 << 28, 1 << 20),
        );
        s.synchronize();
        let e1 = s.energy_joules();
        assert!(e1 > 0.0);
        let p = s.average_power_w();
        assert!(p >= s.spec().idle_power_w * 0.9);
        assert!(p <= s.spec().max_power_w);
        s.launch(
            "k",
            KernelCategory::FullyConnected,
            KernelCost::new(1 << 32, 1 << 28, 1 << 20),
        );
        s.synchronize();
        assert!(s.energy_joules() > e1);
    }

    #[test]
    fn reset_preserves_gemm_cache() {
        let mut s = sim();
        s.launch_gemm("fc", &TiledGemmSpec::fc_row_major(64, 256, 1024));
        s.reset();
        assert_eq!(s.elapsed_ns(), 0);
        assert_eq!(s.api_stats().launch_calls, 0);
        assert_eq!(s.gemm_cache.len(), 1);
    }

    #[test]
    fn faster_device_runs_faster() {
        let mut xp = DeviceSim::new(DeviceSpec::titan_xp());
        let mut v = DeviceSim::new(DeviceSpec::titan_v());
        let cost = KernelCost::new(1 << 34, 1 << 30, 1 << 22);
        let t_xp = xp.launch("k", KernelCategory::FullyConnected, cost);
        let t_v = v.launch("k", KernelCategory::FullyConnected, cost);
        assert!(t_v < t_xp);
    }
}
