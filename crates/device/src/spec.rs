//! Device specification tables.

use echo_cachesim::CacheConfig;
use serde::{Deserialize, Serialize};

/// Published hardware parameters of a simulated GPU.
///
/// The three constructors correspond to the paper's testbed ([§6.1]):
/// Titan Xp (primary), Titan V and RTX 2080 Ti (hardware sensitivity,
/// Figure 18). Numbers are public spec-sheet values; the launch overhead is
/// the commonly measured ~5 µs CUDA driver cost.
///
/// [§6.1]: https://arxiv.org/abs/1805.08899
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Resident threads per SM.
    pub threads_per_sm: usize,
    /// Peak single-precision FLOP/s.
    pub peak_flops: f64,
    /// DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// L2 bandwidth in bytes/s.
    pub l2_bandwidth: f64,
    /// L2 geometry for the cache simulator.
    pub l2: CacheConfig,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// CPU-side cost of one `cudaLaunch` in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Fixed GPU-side cost of starting any kernel, nanoseconds.
    pub kernel_fixed_ns: u64,
    /// Idle board power in watts.
    pub idle_power_w: f64,
    /// Board power limit in watts.
    pub max_power_w: f64,
}

impl DeviceSpec {
    /// NVIDIA Titan Xp (Pascal GP102): 30 SMs, 12.1 TFLOP/s, 547 GB/s
    /// GDDR5X, 3 MiB L2, 12 GiB.
    pub fn titan_xp() -> Self {
        DeviceSpec {
            name: "Titan Xp".to_string(),
            sm_count: 30,
            threads_per_sm: 2048,
            peak_flops: 12.15e12,
            dram_bandwidth: 547.6e9,
            l2_bandwidth: 1200e9,
            l2: CacheConfig::titan_xp_l2(),
            memory_bytes: 12 << 30,
            launch_overhead_ns: 2_500,
            kernel_fixed_ns: 1_500,
            idle_power_w: 60.0,
            max_power_w: 250.0,
        }
    }

    /// NVIDIA Titan V (Volta GV100): 80 SMs, 14.9 TFLOP/s, 653 GB/s HBM2,
    /// 4.5 MiB L2, 12 GiB.
    pub fn titan_v() -> Self {
        DeviceSpec {
            name: "Titan V".to_string(),
            sm_count: 80,
            threads_per_sm: 2048,
            peak_flops: 14.9e12,
            dram_bandwidth: 652.8e9,
            l2_bandwidth: 2100e9,
            l2: CacheConfig::titan_v_l2(),
            memory_bytes: 12 << 30,
            launch_overhead_ns: 2_500,
            kernel_fixed_ns: 1_200,
            idle_power_w: 65.0,
            max_power_w: 250.0,
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti (Turing TU102): 68 SMs, 13.4 TFLOP/s,
    /// 616 GB/s GDDR6, 5.5 MiB L2, 11 GiB.
    pub fn rtx_2080_ti() -> Self {
        DeviceSpec {
            name: "RTX 2080 Ti".to_string(),
            sm_count: 68,
            threads_per_sm: 2048,
            peak_flops: 13.45e12,
            dram_bandwidth: 616e9,
            l2_bandwidth: 1900e9,
            l2: CacheConfig::rtx_2080_ti_l2(),
            memory_bytes: 11 << 30,
            launch_overhead_ns: 2_500,
            kernel_fixed_ns: 1_200,
            idle_power_w: 60.0,
            max_power_w: 260.0,
        }
    }

    /// Maximum resident threads across the device.
    pub fn max_threads(&self) -> usize {
        self.sm_count * self.threads_per_sm
    }

    /// Achievable fraction of peak FLOP/s for a kernel exposing
    /// `parallelism` threads of work.
    ///
    /// A kernel that fills every SM approaches the practical GEMM ceiling
    /// (~75% of peak); one that exposes only a few thousand threads — an
    /// LSTM cell at small batch — is proportionally slower. This is the
    /// saturation curve behind Figure 4.
    pub fn compute_efficiency(&self, parallelism: usize) -> f64 {
        let occupancy = (parallelism as f64 / self.max_threads() as f64).min(1.0);
        // Ramp: efficiency grows quickly with occupancy then flattens.
        0.75 * occupancy.sqrt().max(0.02)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_distinct_and_sane() {
        for spec in [
            DeviceSpec::titan_xp(),
            DeviceSpec::titan_v(),
            DeviceSpec::rtx_2080_ti(),
        ] {
            assert!(spec.peak_flops > 1e13);
            assert!(spec.dram_bandwidth > 5e11);
            assert!(spec.l2_bandwidth > spec.dram_bandwidth);
            assert!(spec.max_power_w > spec.idle_power_w);
            assert!(spec.max_threads() > 60_000);
        }
        assert!(DeviceSpec::titan_v().dram_bandwidth > DeviceSpec::titan_xp().dram_bandwidth);
        assert!(DeviceSpec::rtx_2080_ti().memory_bytes < DeviceSpec::titan_xp().memory_bytes);
    }

    #[test]
    fn efficiency_monotonic_in_parallelism() {
        let spec = DeviceSpec::titan_xp();
        let small = spec.compute_efficiency(1024);
        let medium = spec.compute_efficiency(30_000);
        let full = spec.compute_efficiency(spec.max_threads());
        assert!(small < medium && medium < full);
        assert!(full <= 0.76);
        // Saturates: doubling past full parallelism changes nothing.
        assert_eq!(full, spec.compute_efficiency(spec.max_threads() * 2));
    }

    #[test]
    fn serde_round_trip() {
        let spec = DeviceSpec::titan_v();
        let json = serde_json::to_string(&spec).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
