//! Error type for graph construction and execution.

use echo_memory::OomError;
use echo_tensor::TensorError;
use std::fmt;

/// Errors produced by graph construction and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A tensor kernel failed (shape mismatch etc.).
    Tensor(TensorError),
    /// The simulated device ran out of memory.
    Oom(OomError),
    /// A node id did not belong to the graph.
    UnknownNode {
        /// The offending node id value.
        id: usize,
    },
    /// An input or parameter binding was missing at execution time.
    MissingBinding {
        /// Name of the unbound node.
        name: String,
    },
    /// The graph contains a cycle (should be impossible via the builder).
    Cycle,
    /// The loss node's output was not a scalar.
    NonScalarLoss {
        /// The loss node's actual shape, rendered.
        shape: String,
    },
    /// An operator rejected its inputs.
    Operator {
        /// Operator name.
        op: String,
        /// Explanation.
        message: String,
    },
    /// Numeric values were requested from a symbolic-plane execution.
    SymbolicPlane {
        /// What was requested.
        what: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::Oom(e) => write!(f, "device OOM: {e}"),
            GraphError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            GraphError::MissingBinding { name } => {
                write!(f, "no value bound for input/parameter `{name}`")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::NonScalarLoss { shape } => {
                write!(f, "loss node must be scalar, got shape {shape}")
            }
            GraphError::Operator { op, message } => write!(f, "operator `{op}`: {message}"),
            GraphError::SymbolicPlane { what } => {
                write!(f, "{what} is unavailable in a symbolic-plane execution")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            GraphError::Oom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

impl From<OomError> for GraphError {
    fn from(e: OomError) -> Self {
        GraphError::Oom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = GraphError::MissingBinding {
            name: "x".to_string(),
        };
        assert!(e.to_string().contains("`x`"));
        let t: GraphError = TensorError::Empty { op: "concat" }.into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
