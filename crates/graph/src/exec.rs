//! The dual-plane executor: forward, backward, recomputation replay,
//! memory accounting and kernel dispatch.

use crate::graph::{Graph, NodeId, NodeKind};
use crate::op::{KernelLaunch, LaunchSpec, Operator, Saved, StashNeeds};
use crate::plan::ExecPlan;
use crate::policy::{StashPlan, StashPolicy};
use crate::{GraphError, Result};
use echo_device::DeviceSim;
use echo_memory::{
    Allocation, AllocationTag, DataStructureKind, DeviceMemory, TensorPool, WorkspaceLease,
    WorkspacePool,
};
use echo_tensor::{Shape, Tensor, WorkerPool};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Options controlling one execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Training (forward + backward with stashing) vs. inference.
    pub training: bool,
    /// Numeric plane (real tensors) vs. symbolic plane (shapes only).
    pub numeric: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            training: true,
            numeric: true,
        }
    }
}

/// How the plan-driven executor schedules independent plan entries.
///
/// Wavefront execution groups the plan's forward and backward schedules
/// into dependency levels (see `ExecPlan`'s wave tables) and runs each
/// level's entries concurrently on a worker pool, committing results
/// serially in schedule order. The commit discipline — and the fixed
/// per-element reduction order of every kernel underneath — keeps planned
/// steps bit-identical to the serial interpreter at any thread count.
///
/// Wavefront scheduling only ever engages on the numeric plane with no
/// device simulator attached: kernel dispatch order is part of a
/// simulation's observable timeline, so simulated runs stay serial.
#[derive(Clone)]
pub enum WavefrontMode {
    /// Use the process-global worker pool when it has more than one
    /// thread and `ECHO_WAVEFRONT` is not `0`. The default.
    Auto,
    /// Always execute plans serially.
    Off,
    /// Use this specific pool regardless of `ECHO_WAVEFRONT` — how tests
    /// sweep thread counts in-process without re-spawning under a
    /// different `ECHO_NUM_THREADS`.
    Pool(Arc<WorkerPool>),
}

impl std::fmt::Debug for WavefrontMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WavefrontMode::Auto => f.write_str("Auto"),
            WavefrontMode::Off => f.write_str("Off"),
            WavefrontMode::Pool(p) => write!(f, "Pool({} threads)", p.num_threads()),
        }
    }
}

/// Whether `ECHO_WAVEFRONT` permits wavefront execution (anything but
/// `0`; unset means enabled).
fn wavefront_env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("ECHO_WAVEFRONT").map_or(true, |v| v != "0"))
}

/// An owned handle on the pool a wavefront run executes on (owning it
/// keeps the run free to borrow itself mutably while the handle lives).
enum PoolRef {
    Global,
    Shared(Arc<WorkerPool>),
}

impl PoolRef {
    fn get(&self) -> &WorkerPool {
        match self {
            PoolRef::Global => echo_tensor::pool::global(),
            PoolRef::Shared(p) => p,
        }
    }
}

/// Statistics of one executed iteration.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// Loss value (numeric plane, when the target is scalar).
    pub loss: Option<f32>,
    /// Peak device bytes during this iteration.
    pub peak_bytes: u64,
    /// Number of segment replays performed by the backward pass.
    pub replays: u64,
    /// Simulated nanoseconds this iteration took (when a device simulator
    /// was attached).
    pub sim_ns: Option<u64>,
}

/// What one pipelined stage step produced (see [`Executor::stage_step`]).
#[derive(Debug)]
pub struct StageStepOutput {
    /// Values of the requested output nodes, in request order, cloned
    /// between the stage's forward and backward phases.
    pub outputs: Vec<Tensor>,
    /// Gradients that reached the captured `Input` nodes, in capture
    /// order. `None` when no gradient flowed to that input this step.
    pub input_grads: Vec<Option<Tensor>>,
    /// Memory/replay/timing accounting for the stage step; `loss` is
    /// `None` (a stage has no scalar loss — read it from `outputs`).
    pub stats: IterationStats,
}

/// Runs a [`Graph`] under a [`StashPlan`] against a simulated device.
///
/// The executor owns the parameter values, their gradient buffers, and the
/// workspace pools used by recomputation segments. See the
/// [crate documentation](crate) for the execution disciplines it maintains.
pub struct Executor {
    graph: Arc<Graph>,
    plan: StashPlan,
    mem: DeviceMemory,
    pools: HashMap<usize, WorkspacePool>,
    params: HashMap<NodeId, Tensor>,
    param_shapes: HashMap<NodeId, Shape>,
    grads: HashMap<NodeId, Tensor>,
    param_allocs: Vec<Allocation>,
    /// Ahead-of-time execution plan; when it matches the requested
    /// execution, `forward`/`train_step` run the plan-driven hot loop.
    exec_plan: Option<Arc<ExecPlan>>,
    /// Step-persistent interpreter state for the plan-driven path.
    state: PlanState,
    /// Cumulative segment replays across every step this executor ran.
    replays_total: u64,
    /// How planned steps schedule independent entries.
    wavefront: WavefrontMode,
}

/// Dense per-node tables the plan-driven interpreter reuses across steps
/// instead of re-allocating `vec![None; n]` every iteration, plus the
/// [`TensorPool`] that recycles executor-controlled tensor storage (the
/// gradient seed, freed transients and gradients).
#[derive(Default)]
struct PlanState {
    values: Vec<Option<Tensor>>,
    saved: Vec<Option<Saved>>,
    grads: Vec<Option<Tensor>>,
    grad_present: Vec<bool>,
    needed: Vec<bool>,
    fwd_uses: Vec<usize>,
    pool: TensorPool,
}

impl PlanState {
    /// Grows every table to `n` nodes (idempotent; no-op after the first
    /// step on a given graph).
    fn ensure_len(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize_with(n, || None);
            self.saved.resize_with(n, || None);
            self.grads.resize_with(n, || None);
            self.grad_present.resize(n, false);
            self.needed.resize(n, false);
            self.fwd_uses.resize(n, 0);
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("nodes", &self.graph.len())
            .field("params", &self.params.len())
            .field("recompute_nodes", &self.plan.recompute_count())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Creates an executor for `graph` with stashing decisions `plan`,
    /// allocating from `mem`.
    pub fn new(graph: Arc<Graph>, plan: StashPlan, mem: DeviceMemory) -> Self {
        Executor {
            graph,
            plan,
            mem,
            pools: HashMap::new(),
            params: HashMap::new(),
            param_shapes: HashMap::new(),
            grads: HashMap::new(),
            param_allocs: Vec::new(),
            exec_plan: None,
            state: PlanState::default(),
            replays_total: 0,
            wavefront: WavefrontMode::Auto,
        }
    }

    /// Selects how planned steps schedule independent entries (see
    /// [`WavefrontMode`]). Defaults to [`WavefrontMode::Auto`].
    pub fn set_wavefront_mode(&mut self, mode: WavefrontMode) {
        self.wavefront = mode;
    }

    /// Cumulative segment replays across every step this executor has run
    /// — the observable face of the replay-once discipline: a recomputed
    /// node feeding several backward consumers costs one replay per step,
    /// not one per consumer.
    pub fn replays(&self) -> u64 {
        self.replays_total
    }

    /// The executor's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The device memory this executor allocates from.
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Counters of the step-persistent [`TensorPool`] backing the
    /// plan-driven hot loop. Reuse hits climbing across repeated steps is
    /// the signal that storage is recycled rather than reallocated.
    pub fn tensor_pool_stats(&self) -> echo_memory::TensorPoolStats {
        self.state.pool.stats()
    }

    /// Takes an `elems`-long buffer from the step-persistent
    /// [`TensorPool`]. Contents are unspecified; pair with
    /// [`Executor::pool_recycle`] so repeated same-shaped steps (e.g. a
    /// serving engine's per-request bindings) stop allocating.
    pub fn pool_take(&mut self, elems: usize) -> Vec<f32> {
        self.state.pool.take(elems)
    }

    /// Returns a tensor's storage to the step-persistent [`TensorPool`].
    pub fn pool_recycle(&mut self, t: Tensor) {
        self.state.pool.put(t.into_vec());
    }

    /// Replaces the stash plan (used when re-compiling with the Echo pass).
    ///
    /// Any attached [`ExecPlan`] is dropped: it was derived from the old
    /// stashing decisions.
    pub fn set_plan(&mut self, plan: StashPlan) {
        self.plan = plan;
        self.pools.clear();
        self.exec_plan = None;
    }

    /// The active stash plan.
    pub fn plan(&self) -> &StashPlan {
        &self.plan
    }

    /// Swaps in a rewritten graph produced by the GIR pass pipeline
    /// (fusion, CSE, layout selection). The replacement must be
    /// id-preserving — same node count, same node kinds — so existing
    /// parameter bindings, stash plans and targets stay valid.
    ///
    /// Any attached [`ExecPlan`] and cached pools are dropped: they were
    /// derived from the old node definitions.
    ///
    /// # Errors
    ///
    /// Rejects a graph with a different node count or with a node whose
    /// kind (input/param/op) changed.
    pub fn set_graph(&mut self, graph: Arc<Graph>) -> Result<()> {
        if graph.len() != self.graph.len() {
            return Err(GraphError::Operator {
                op: "set_graph".to_string(),
                message: format!(
                    "replacement graph has {} nodes, executor's has {}",
                    graph.len(),
                    self.graph.len()
                ),
            });
        }
        for (old, new) in self.graph.nodes().iter().zip(graph.nodes()) {
            let same_kind = matches!(
                (&old.kind, &new.kind),
                (NodeKind::Input, NodeKind::Input)
                    | (NodeKind::Param, NodeKind::Param)
                    | (NodeKind::Op { .. }, NodeKind::Op { .. })
            );
            if !same_kind {
                return Err(GraphError::Operator {
                    op: "set_graph".to_string(),
                    message: format!("node {} changed kind in replacement graph", old.id),
                });
            }
        }
        self.graph = graph;
        self.pools.clear();
        self.exec_plan = None;
        Ok(())
    }

    /// Attaches an ahead-of-time execution plan. `forward`/`train_step`
    /// use the plan-driven hot loop whenever the plan matches the
    /// requested execution (same target, training mode and binding
    /// shapes), and silently fall back to the legacy interpreter
    /// otherwise — results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Rejects a plan built for a different graph or with parameter shapes
    /// that disagree with this executor's bound parameters.
    pub fn set_exec_plan(&mut self, plan: Arc<ExecPlan>) -> Result<()> {
        if plan.graph_len != self.graph.len() {
            return Err(GraphError::Operator {
                op: "exec_plan".to_string(),
                message: format!(
                    "plan was built for a {}-node graph, executor has {}",
                    plan.graph_len,
                    self.graph.len()
                ),
            });
        }
        for (id, shape) in plan.param_shapes() {
            if let Some(bound) = self.param_shapes.get(id) {
                if bound != shape {
                    return Err(GraphError::Operator {
                        op: "exec_plan".to_string(),
                        message: format!(
                            "plan assumed shape {shape} for `{}`, executor bound {bound}",
                            self.graph.nodes()[id.index()].name
                        ),
                    });
                }
            }
        }
        self.exec_plan = Some(plan);
        Ok(())
    }

    /// The attached execution plan, when one is installed.
    pub fn exec_plan(&self) -> Option<&Arc<ExecPlan>> {
        self.exec_plan.as_ref()
    }

    /// Removes the execution plan, forcing the legacy interpreter.
    pub fn clear_exec_plan(&mut self) {
        self.exec_plan = None;
    }

    /// Builds an execution plan for running `target` under `opts` with
    /// these bindings, using the executor's stash plan and bound parameter
    /// shapes. The plan is returned (shareable across replicas); call
    /// [`set_exec_plan`](Executor::set_exec_plan) to install it.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (missing bindings, shape errors).
    pub fn plan_for(
        &self,
        bindings: &HashMap<NodeId, Tensor>,
        target: NodeId,
        opts: ExecOptions,
    ) -> Result<Arc<ExecPlan>> {
        let binding_shapes: HashMap<NodeId, Shape> = bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        Ok(Arc::new(ExecPlan::build(
            &self.graph,
            &self.plan,
            opts,
            &binding_shapes,
            &self.param_shapes,
            target,
        )?))
    }

    /// Builds an inference-mode plan producing `outputs` from bindings of
    /// these shapes (see [`ExecPlan::build_inference`]); install it with
    /// [`set_exec_plan`](Executor::set_exec_plan) to drive
    /// [`forward_many`](Executor::forward_many).
    ///
    /// # Errors
    ///
    /// Propagates planning failures (missing bindings, shape errors).
    pub fn plan_for_inference(
        &self,
        bindings: &HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
    ) -> Result<Arc<ExecPlan>> {
        let binding_shapes: HashMap<NodeId, Shape> = bindings
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        Ok(Arc::new(ExecPlan::build_inference(
            &self.graph,
            &binding_shapes,
            &self.param_shapes,
            outputs,
        )?))
    }

    /// Binds a parameter's value, allocating persistent device space for
    /// the value and its gradient (both tagged as weights, matching the
    /// paper's "Weights" category which includes gradients and optimizer
    /// state).
    ///
    /// # Errors
    ///
    /// Returns an error for a foreign id, a non-param node, or device OOM.
    pub fn bind_param(&mut self, id: NodeId, value: Tensor) -> Result<()> {
        let node = self.graph.node(id)?;
        if !matches!(node.kind, NodeKind::Param) {
            return Err(GraphError::Operator {
                op: node.name.clone(),
                message: "bind_param on a non-parameter node".to_string(),
            });
        }
        let bytes = value.num_bytes() as u64;
        let tag = AllocationTag::new(node.layer, DataStructureKind::Weight, node.name.clone());
        // Value + gradient.
        self.param_allocs.push(self.mem.alloc(bytes * 2, tag)?);
        self.param_shapes.insert(id, value.shape().clone());
        self.grads.insert(id, Tensor::zeros(value.shape().clone()));
        self.params.insert(id, value);
        Ok(())
    }

    /// Binds only a parameter's shape (symbolic plane).
    ///
    /// # Errors
    ///
    /// Returns an error for a foreign id, a non-param node, or device OOM.
    pub fn bind_param_shape(&mut self, id: NodeId, shape: Shape) -> Result<()> {
        let node = self.graph.node(id)?;
        if !matches!(node.kind, NodeKind::Param) {
            return Err(GraphError::Operator {
                op: node.name.clone(),
                message: "bind_param_shape on a non-parameter node".to_string(),
            });
        }
        let bytes = shape.num_bytes() as u64;
        let tag = AllocationTag::new(node.layer, DataStructureKind::Weight, node.name.clone());
        self.param_allocs.push(self.mem.alloc(bytes * 2, tag)?);
        self.param_shapes.insert(id, shape);
        Ok(())
    }

    /// A bound parameter's value.
    pub fn param(&self, id: NodeId) -> Option<&Tensor> {
        self.params.get(&id)
    }

    /// Mutable access to a bound parameter (for optimizer updates).
    pub fn param_mut(&mut self, id: NodeId) -> Option<&mut Tensor> {
        self.params.get_mut(&id)
    }

    /// The accumulated gradient of a parameter after a `train_step`.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(&id)
    }

    /// Mutable access to a parameter gradient (for clipping).
    pub fn grad_mut(&mut self, id: NodeId) -> Option<&mut Tensor> {
        self.grads.get_mut(&id)
    }

    /// Visits every `(param_id, value, grad)` triple mutably, for
    /// optimizers.
    ///
    /// Visit order is ascending [`NodeId`], not hash order: optimizers
    /// accumulate reductions (e.g. the clip-norm sum) while visiting, and
    /// float addition is non-associative, so a hash-ordered walk would
    /// give different executors bitwise-different updates for identical
    /// gradients. Data-parallel replicas rely on this order being fixed.
    pub fn for_each_param_grad(&mut self, mut f: impl FnMut(NodeId, &mut Tensor, &mut Tensor)) {
        let mut ids: Vec<NodeId> = self.params.keys().copied().collect();
        ids.sort_unstable();
        let grads = &mut self.grads;
        for id in ids {
            if let (Some(value), Some(grad)) = (self.params.get_mut(&id), grads.get_mut(&id)) {
                f(id, value, grad);
            }
        }
    }

    /// The bound parameter ids in ascending order.
    pub fn param_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.params.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Snapshots every bound parameter value, sorted by id.
    pub fn export_params(&self) -> Vec<(NodeId, Tensor)> {
        let mut out: Vec<(NodeId, Tensor)> =
            self.params.iter().map(|(&id, t)| (id, t.clone())).collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Overwrites bound parameter values from a snapshot (ids that are
    /// not bound here are ignored). Used to broadcast updated weights to
    /// data-parallel replicas.
    pub fn import_params(&mut self, snapshot: &[(NodeId, Tensor)]) {
        for (id, tensor) in snapshot {
            if let Some(value) = self.params.get_mut(id) {
                *value = tensor.clone();
            }
        }
    }

    /// Snapshots every parameter gradient, sorted by id.
    pub fn export_grads(&self) -> Vec<(NodeId, Tensor)> {
        let mut out: Vec<(NodeId, Tensor)> =
            self.grads.iter().map(|(&id, t)| (id, t.clone())).collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Overwrites parameter gradients from a snapshot, e.g. with the
    /// result of an all-reduce before an optimizer step.
    pub fn import_grads(&mut self, snapshot: &[(NodeId, Tensor)]) {
        for (id, tensor) in snapshot {
            if let Some(grad) = self.grads.get_mut(id) {
                *grad = tensor.clone();
            }
        }
    }

    /// Clones this executor into its own [`DeviceMemory`]: same graph
    /// (shared), same stash plan, and a deep copy of every bound
    /// parameter (values and zeroed gradients re-allocated in `mem`).
    /// This is how data-parallel replicas are born.
    ///
    /// # Errors
    ///
    /// Returns an error if `mem` cannot hold the parameter set.
    pub fn clone_replica(&self, mem: DeviceMemory) -> Result<Executor> {
        let mut replica = Executor::new(self.graph.clone(), self.plan.clone(), mem);
        for id in self.param_ids() {
            replica.bind_param(id, self.params[&id].clone())?;
        }
        // Symbolic-only bindings (shape, no value).
        let mut shape_only: Vec<NodeId> = self
            .param_shapes
            .keys()
            .filter(|id| !self.params.contains_key(id))
            .copied()
            .collect();
        shape_only.sort_unstable();
        for id in shape_only {
            replica.bind_param_shape(id, self.param_shapes[&id].clone())?;
        }
        // The execution plan is immutable and shape-derived, so replicas
        // share it: K replicas cost one planning pass.
        replica.exec_plan = self.exec_plan.clone();
        replica.wavefront = self.wavefront.clone();
        Ok(replica)
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        for g in self.grads.values_mut() {
            g.fill_zero();
        }
    }

    /// Runs a forward pass to `target` and returns its value.
    ///
    /// # Errors
    ///
    /// Propagates operator, binding and OOM errors; requesting the value in
    /// a symbolic run yields [`GraphError::SymbolicPlane`].
    pub fn forward(
        &mut self,
        bindings: &HashMap<NodeId, Tensor>,
        target: NodeId,
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<Tensor> {
        if let Some(plan) = &self.exec_plan {
            if plan.matches(self.graph.len(), bindings, target, opts) {
                let plan = Arc::clone(plan);
                return self.planned_forward(plan, bindings, target, opts, device);
            }
            crate::plan::record_plan_fallback();
        }
        let mut run = Run::new(self, bindings, opts, device);
        run.forward(target)?;
        let out = if opts.numeric {
            run.values[target.index()]
                .clone()
                .or_else(|| bindings.get(&target).cloned())
                .ok_or(GraphError::SymbolicPlane {
                    what: "output value",
                })
        } else {
            Err(GraphError::SymbolicPlane {
                what: "output value",
            })
        };
        run.finish();
        out
    }

    fn planned_forward(
        &mut self,
        plan: Arc<ExecPlan>,
        bindings: &HashMap<NodeId, Tensor>,
        target: NodeId,
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<Tensor> {
        self.mem
            .record_planned_peak(plan.fwd_delta, 0, &plan.fwd_peak_breakdown)?;
        let mut run = Run::new_planned(self, bindings, opts, device, plan);
        let result = run.plan_forward();
        let out = match result {
            Ok(()) if opts.numeric => run.values[target.index()]
                .clone()
                .or_else(|| bindings.get(&target).cloned())
                .ok_or(GraphError::SymbolicPlane {
                    what: "output value",
                }),
            Ok(()) => Err(GraphError::SymbolicPlane {
                what: "output value",
            }),
            Err(e) => Err(e),
        };
        run.finish();
        out
    }

    /// Runs one forward pass and returns the values of several nodes at
    /// once — the multi-output primitive stateful inference is built on
    /// (one decode step yields logits *and* every layer's new hidden and
    /// cell state).
    ///
    /// When an installed plan [`matches_many`](ExecPlan::matches_many) the
    /// plan-driven hot loop runs (pooled storage, static launch tables,
    /// one accounting call); otherwise the legacy interpreter executes the
    /// union cone of `outputs` with every output kept alive. Results are
    /// bit-identical either way. `outputs` must be distinct.
    ///
    /// # Errors
    ///
    /// Propagates operator, binding and OOM errors; requesting values in a
    /// symbolic run yields [`GraphError::SymbolicPlane`].
    pub fn forward_many(
        &mut self,
        bindings: &HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<Vec<Tensor>> {
        if let Some(plan) = &self.exec_plan {
            if plan.matches_many(self.graph.len(), bindings, outputs, opts) {
                let plan = Arc::clone(plan);
                return self.planned_forward_many(plan, bindings, outputs, opts, device);
            }
            crate::plan::record_plan_fallback();
        }
        if !opts.numeric {
            return Err(GraphError::SymbolicPlane {
                what: "output values",
            });
        }
        let mut run = Run::new(self, bindings, opts, device);
        let result = run.forward_multi(outputs);
        let out = result.and_then(|()| {
            outputs
                .iter()
                .map(|&id| {
                    run.values[id.index()]
                        .clone()
                        .or_else(|| bindings.get(&id).cloned())
                        .ok_or(GraphError::SymbolicPlane {
                            what: "output value",
                        })
                })
                .collect()
        });
        run.finish();
        out
    }

    fn planned_forward_many(
        &mut self,
        plan: Arc<ExecPlan>,
        bindings: &HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<Vec<Tensor>> {
        if !opts.numeric {
            return Err(GraphError::SymbolicPlane {
                what: "output values",
            });
        }
        self.mem
            .record_planned_peak(plan.fwd_delta, 0, &plan.fwd_peak_breakdown)?;
        let mut run = Run::new_planned(self, bindings, opts, device, plan);
        let result = run.plan_forward();
        let out = result.and_then(|()| {
            outputs
                .iter()
                .map(|&id| {
                    // `take` hands ownership straight to the caller; the
                    // storage would otherwise be recycled by `finish`.
                    run.values[id.index()]
                        .take()
                        .or_else(|| bindings.get(&id).cloned())
                        .ok_or(GraphError::SymbolicPlane {
                            what: "output value",
                        })
                })
                .collect()
        });
        run.finish();
        out
    }

    /// Runs a full training iteration (forward + backward from a scalar
    /// `loss` node), leaving parameter gradients in the executor.
    ///
    /// # Errors
    ///
    /// Propagates operator, binding and OOM errors. In the numeric plane a
    /// non-scalar loss is rejected.
    pub fn train_step(
        &mut self,
        bindings: &HashMap<NodeId, Tensor>,
        loss: NodeId,
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<IterationStats> {
        if let Some(plan) = &self.exec_plan {
            if plan.training && plan.matches(self.graph.len(), bindings, loss, opts) {
                let plan = Arc::clone(plan);
                return self.planned_train_step(plan, bindings, loss, opts, device);
            }
            crate::plan::record_plan_fallback();
        }
        self.zero_grads();
        let peak_before = {
            self.mem.reset_peak();
            self.mem.peak_bytes()
        };
        let sim_start = device.as_ref().map(|d| d.elapsed_ns());
        let mut run = Run::new(self, bindings, opts, device);
        run.forward(loss)?;

        let loss_value = if opts.numeric {
            let t = run.values[loss.index()]
                .as_ref()
                .ok_or(GraphError::SymbolicPlane { what: "loss value" })?;
            if t.len() != 1 {
                return Err(GraphError::NonScalarLoss {
                    shape: t.shape().to_string(),
                });
            }
            Some(t.data()[0])
        } else {
            None
        };

        run.backward(loss)?;
        let replays = run.replays;
        let sim_ns = match (&run.device, sim_start) {
            (Some(d), Some(start)) => Some(d.elapsed_ns().saturating_sub(start)),
            _ => None,
        };
        run.finish();
        self.replays_total += replays;
        let peak = self.mem.peak_bytes().max(peak_before);
        Ok(IterationStats {
            loss: loss_value,
            peak_bytes: peak,
            replays,
            sim_ns,
        })
    }

    /// One pipelined stage step: forward over the union cone of
    /// `outputs`, then a backward walk seeded with the downstream
    /// activation-gradients in `seeds`, capturing the gradients that
    /// reach the `Input` nodes listed in `capture` (the stage's received
    /// interface) instead of discarding them.
    ///
    /// This is [`train_step`](Executor::train_step) generalized to a
    /// subgraph: the last pipeline stage seeds its scalar loss with a
    /// ones tensor (making `stage_step` on a single-stage partition
    /// bit-identical to `train_step`), every other stage seeds its send
    /// interface with the gradients received from the next stage.
    /// Parameter gradients accumulate into the executor exactly as in a
    /// training step. Always runs the legacy interpreter — the seeded
    /// walk has no ahead-of-time plan.
    ///
    /// # Errors
    ///
    /// Rejects symbolic or inference options ([`GraphError::SymbolicPlane`])
    /// and propagates operator, binding and OOM errors.
    pub fn stage_step(
        &mut self,
        bindings: &HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
        seeds: &[(NodeId, Tensor)],
        capture: &[NodeId],
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<StageStepOutput> {
        if !opts.numeric || !opts.training {
            return Err(GraphError::SymbolicPlane {
                what: "stage step (numeric training only)",
            });
        }
        self.zero_grads();
        let peak_before = {
            self.mem.reset_peak();
            self.mem.peak_bytes()
        };
        let sim_start = device.as_ref().map(|d| d.elapsed_ns());
        let mut run = Run::new(self, bindings, opts, device);
        let result = run.forward_multi(outputs);
        let out_values = result.and_then(|()| {
            outputs
                .iter()
                .map(|&id| {
                    run.values[id.index()]
                        .clone()
                        .or_else(|| bindings.get(&id).cloned())
                        .ok_or(GraphError::SymbolicPlane {
                            what: "stage output value",
                        })
                })
                .collect::<Result<Vec<Tensor>>>()
        });
        let seeded: Vec<(NodeId, Option<Tensor>)> =
            seeds.iter().map(|(id, t)| (*id, Some(t.clone()))).collect();
        let grads = if out_values.is_ok() {
            run.backward_seeded(&seeded, capture)
        } else {
            Ok(Vec::new())
        };
        let replays = run.replays;
        let sim_ns = match (&run.device, sim_start) {
            (Some(d), Some(start)) => Some(d.elapsed_ns().saturating_sub(start)),
            _ => None,
        };
        run.finish();
        self.replays_total += replays;
        let peak = self.mem.peak_bytes().max(peak_before);
        let outputs = out_values?;
        let input_grads = grads?;
        Ok(StageStepOutput {
            outputs,
            input_grads,
            stats: IterationStats {
                loss: None,
                peak_bytes: peak,
                replays,
                sim_ns,
            },
        })
    }

    /// The plan-driven training step: no per-node device bookkeeping, no
    /// backward deep clones, one accounting call for the whole iteration.
    fn planned_train_step(
        &mut self,
        plan: Arc<ExecPlan>,
        bindings: &HashMap<NodeId, Tensor>,
        loss: NodeId,
        opts: ExecOptions,
        device: Option<&mut DeviceSim>,
    ) -> Result<IterationStats> {
        self.zero_grads();
        self.mem.reset_peak();
        let peak_before = self.mem.peak_bytes();
        // The whole step's accounting, up front: liveness-driven peak,
        // breakdown snapshot and OOM check come from the plan's static
        // timeline instead of hundreds of tagged allocations.
        self.mem.record_planned_peak(
            plan.step_delta,
            plan.assumed_workspace,
            &plan.peak_breakdown,
        )?;
        let sim_start = device.as_ref().map(|d| d.elapsed_ns());
        let mut run = Run::new_planned(self, bindings, opts, device, Arc::clone(&plan));
        let result = run.plan_step(loss);
        let replays = run.replays;
        let sim_ns = match (&run.device, sim_start) {
            (Some(d), Some(start)) => Some(d.elapsed_ns().saturating_sub(start)),
            _ => None,
        };
        run.finish();
        self.replays_total += replays;
        let loss_value = result?;
        let peak = self.mem.peak_bytes().max(peak_before);
        Ok(IterationStats {
            loss: loss_value,
            peak_bytes: peak,
            replays,
            sim_ns,
        })
    }
}

/// One in-flight execution over the graph.
struct Run<'e> {
    exec: &'e mut Executor,
    bindings: &'e HashMap<NodeId, Tensor>,
    opts: ExecOptions,
    device: Option<&'e mut DeviceSim>,
    /// Present on the plan-driven path; `None` for the legacy interpreter.
    plan: Option<Arc<ExecPlan>>,
    /// Tensor-storage recycler (plan-driven path; taken from the executor
    /// for the duration of the run).
    pool: TensorPool,
    /// Per-node numeric values (numeric plane only).
    values: Vec<Option<Tensor>>,
    /// Per-node shapes (both planes).
    shapes: Vec<Option<Shape>>,
    /// Per-node operator-private saved tensors.
    saved: Vec<Option<Saved>>,
    /// Per-node device allocation for the output (and saved) bytes.
    allocs: Vec<Option<Allocation>>,
    /// Remaining forward uses, for transient freeing.
    fwd_uses: Vec<usize>,
    /// Whether each node is in the execution cone.
    needed: Vec<bool>,
    /// Gradient per node during backward (numeric).
    grads: Vec<Option<Tensor>>,
    /// Whether a gradient is present (symbolic).
    grad_present: Vec<bool>,
    /// Gradient allocations per node (transient).
    grad_allocs: Vec<Option<Allocation>>,
    /// Replay scratch per segment id.
    scratch: HashMap<usize, SegmentScratch>,
    replays: u64,
    /// Backward-walk cursor (node index currently being differentiated);
    /// `usize::MAX` outside backward. Replays triggered at the cursor
    /// count their remaining readers from here down.
    bwd_cursor: usize,
    /// Whether a wavefront backward is in flight. Waves visit node
    /// indices non-monotonically, so the serial cursor disciplines —
    /// counting scratch readers from the cursor down at replay time and
    /// the `min_index < cursor` retirement backstop — are replaced by an
    /// exact refcount over `bwd_done`.
    wavefront: bool,
    /// Per-node "backward entry processed" mask (wavefront backward
    /// only); the basis for scratch-reader refcounts.
    bwd_done: Vec<bool>,
}

struct SegmentScratch {
    values: HashMap<NodeId, Tensor>,
    saved: HashMap<NodeId, Saved>,
    shapes: HashMap<NodeId, Shape>,
    /// Workspace pool the lease below came from. Exclusive access is the
    /// sharing contract; a new same-pool replay force-retires this
    /// scratch first.
    pool: usize,
    _lease: WorkspaceLease,
    /// Smallest topo index in the segment: once backward passes it the
    /// scratch is dead.
    min_index: usize,
    /// Remaining backward ops that may still read from this scratch
    /// (burn-autodiff's `n_required` refcount idiom). Counted at replay
    /// time over the rest of the descending walk, decremented as each
    /// reader finishes; the scratch is retired at zero — which can be
    /// earlier than `min_index` when the segment's own nodes receive no
    /// gradient. The count is a static over-approximation (a counted op
    /// may be skipped when no gradient reaches it), so it never frees a
    /// scratch a later reader still needs; `min_index` stays as the
    /// backstop.
    n_required: usize,
}

/// Whether backward op `idx` would read values, saved state or shapes out
/// of `scratch` when differentiated: it is one of the replayed nodes
/// (output/saved state live in the scratch) or it consumes one of them as
/// an input it declares it needs.
fn reads_scratch(graph: &Graph, needed: &[bool], idx: usize, scratch: &SegmentScratch) -> bool {
    if !needed[idx] {
        return false;
    }
    let node = &graph.nodes()[idx];
    match &node.kind {
        NodeKind::Op { op, inputs } => {
            scratch.shapes.contains_key(&node.id)
                || (op.stash().inputs && inputs.iter().any(|i| scratch.shapes.contains_key(i)))
        }
        _ => false,
    }
}

/// Shared-read value lookup for wavefront compute phases: the same
/// resolution order as [`Run::value_of`], without borrowing the run
/// (closures running on the worker pool only capture the tables they
/// read).
fn lookup_value<'a>(
    values: &'a [Option<Tensor>],
    params: &'a HashMap<NodeId, Tensor>,
    bindings: &'a HashMap<NodeId, Tensor>,
    graph: &Graph,
    id: NodeId,
) -> Result<&'a Tensor> {
    if let Some(v) = &values[id.index()] {
        return Ok(v);
    }
    if let Some(v) = params.get(&id) {
        return Ok(v);
    }
    if let Some(v) = bindings.get(&id) {
        return Ok(v);
    }
    Err(GraphError::MissingBinding {
        name: graph.nodes()[id.index()].name.clone(),
    })
}

/// [`lookup_value`] extended with active replay scratches — the
/// resolution order of [`Run::borrowed_value`].
fn lookup_backward_value<'a>(
    values: &'a [Option<Tensor>],
    params: &'a HashMap<NodeId, Tensor>,
    bindings: &'a HashMap<NodeId, Tensor>,
    scratch: &'a HashMap<usize, SegmentScratch>,
    graph: &Graph,
    id: NodeId,
) -> Result<&'a Tensor> {
    if let Ok(v) = lookup_value(values, params, bindings, graph, id) {
        return Ok(v);
    }
    for s in scratch.values() {
        if let Some(v) = s.values.get(&id) {
            return Ok(v);
        }
    }
    Err(GraphError::MissingBinding {
        name: graph.nodes()[id.index()].name.clone(),
    })
}

impl<'e> Run<'e> {
    fn new(
        exec: &'e mut Executor,
        bindings: &'e HashMap<NodeId, Tensor>,
        opts: ExecOptions,
        device: Option<&'e mut DeviceSim>,
    ) -> Self {
        let n = exec.graph.len();
        Run {
            exec,
            bindings,
            opts,
            device,
            plan: None,
            pool: TensorPool::default(),
            values: vec![None; n],
            shapes: vec![None; n],
            saved: (0..n).map(|_| None).collect(),
            allocs: (0..n).map(|_| None).collect(),
            fwd_uses: vec![0; n],
            needed: vec![false; n],
            grads: vec![None; n],
            grad_present: vec![false; n],
            grad_allocs: (0..n).map(|_| None).collect(),
            scratch: HashMap::new(),
            replays: 0,
            bwd_cursor: usize::MAX,
            wavefront: false,
            bwd_done: Vec::new(),
        }
    }

    /// Builds a run over an execution plan, taking the executor's
    /// step-persistent tables instead of allocating fresh ones.
    fn new_planned(
        exec: &'e mut Executor,
        bindings: &'e HashMap<NodeId, Tensor>,
        opts: ExecOptions,
        device: Option<&'e mut DeviceSim>,
        plan: Arc<ExecPlan>,
    ) -> Self {
        let n = exec.graph.len();
        exec.state.ensure_len(n);
        let mut state = std::mem::take(&mut exec.state);
        // `needed` and `fwd_uses` reset from the plan's static tables
        // (memcpy into retained storage, no allocation).
        for (dst, &src) in state.needed.iter_mut().zip(plan.in_cone.iter()) {
            *dst = src;
        }
        for (dst, &src) in state.fwd_uses.iter_mut().zip(plan.fwd_uses.iter()) {
            *dst = src as usize;
        }
        Run {
            exec,
            bindings,
            opts,
            device,
            plan: Some(plan),
            pool: state.pool,
            values: state.values,
            shapes: Vec::new(),
            saved: state.saved,
            allocs: Vec::new(),
            fwd_uses: state.fwd_uses,
            needed: state.needed,
            grads: state.grads,
            grad_present: state.grad_present,
            grad_allocs: Vec::new(),
            scratch: HashMap::new(),
            replays: 0,
            bwd_cursor: usize::MAX,
            wavefront: false,
            bwd_done: Vec::new(),
        }
    }

    fn graph(&self) -> Arc<Graph> {
        Arc::clone(&self.exec.graph)
    }

    fn dispatch(&mut self, launches: &[KernelLaunch]) {
        if let Some(device) = self.device.as_deref_mut() {
            for l in launches {
                match &l.spec {
                    LaunchSpec::Kernel(cost) => {
                        device.launch(&l.name, l.category, *cost);
                    }
                    LaunchSpec::Gemm(spec) => {
                        device.launch_gemm(&l.name, spec);
                    }
                }
            }
        }
    }

    /// Whether this node's output should be kept as a feature map until
    /// backward.
    fn is_stashed(&self, id: NodeId) -> bool {
        self.opts.training && matches!(self.exec.plan.policy(id), StashPolicy::Stash)
    }

    fn forward(&mut self, target: NodeId) -> Result<()> {
        self.forward_multi(std::slice::from_ref(&target))
    }

    fn forward_multi(&mut self, outputs: &[NodeId]) -> Result<()> {
        let graph = self.graph();
        for &out in outputs {
            for id in graph.ancestors(out) {
                self.needed[id.index()] = true;
            }
        }
        // Count in-cone forward consumers for transient freeing.
        for node in graph.nodes() {
            if !self.needed[node.id.index()] {
                continue;
            }
            for &input in node.inputs() {
                self.fwd_uses[input.index()] += 1;
            }
        }

        for node in graph.nodes() {
            let id = node.id;
            if !self.needed[id.index()] {
                continue;
            }
            match &node.kind {
                NodeKind::Input => {
                    let value =
                        self.bindings
                            .get(&id)
                            .ok_or_else(|| GraphError::MissingBinding {
                                name: node.name.clone(),
                            })?;
                    let shape = value.shape().clone();
                    let tag = AllocationTag::new(
                        node.layer,
                        DataStructureKind::Placeholder,
                        node.name.clone(),
                    );
                    self.allocs[id.index()] =
                        Some(self.exec.mem.alloc(shape.num_bytes() as u64, tag)?);
                    // Bindings are read-only for the step: ops borrow them
                    // straight from the caller's map (see `value_of`), so
                    // no per-step deep copy of input data is made.
                    self.shapes[id.index()] = Some(shape);
                }
                NodeKind::Param => {
                    let shape = self.exec.param_shapes.get(&id).cloned().ok_or_else(|| {
                        GraphError::MissingBinding {
                            name: node.name.clone(),
                        }
                    })?;
                    self.shapes[id.index()] = Some(shape);
                    // Params were allocated at bind time; values are read
                    // from the executor map directly.
                }
                NodeKind::Op { op, inputs } => {
                    let op = Arc::clone(op);
                    let input_ids = inputs.clone();
                    if let Some(device) = self.device.as_deref_mut() {
                        device.dispatch_op();
                    }
                    // Shapes.
                    let in_shapes: Vec<Shape> = input_ids
                        .iter()
                        .map(|&i| self.shape_of(i))
                        .collect::<Result<_>>()?;
                    let shape_refs: Vec<&Shape> = in_shapes.iter().collect();
                    let out_shape = op.infer_shape(&shape_refs)?;

                    // Numeric compute.
                    // The declared saved bytes may exceed what forward
                    // numerically saves (cuDNN-style conservative reserve);
                    // the device allocation honours the larger of the two so
                    // both planes account identically.
                    let mut saved_bytes = op.saved_bytes(&shape_refs, &out_shape);
                    if self.opts.numeric {
                        let in_values: Vec<&Tensor> = input_ids
                            .iter()
                            .map(|&i| self.value_of(i))
                            .collect::<Result<_>>()?;
                        let (out, saved) = op.forward(&in_values)?;
                        saved_bytes =
                            saved_bytes.max(saved.iter().map(|t| t.num_bytes() as u64).sum());
                        let keep_saved = self.opts.training && self.is_stashed(id);
                        self.values[id.index()] = Some(out);
                        self.saved[id.index()] = if keep_saved && !saved.is_empty() {
                            Some(saved)
                        } else {
                            None
                        };
                    }

                    // Device launches.
                    let launches = op.forward_launches(&shape_refs, &out_shape);
                    self.dispatch(&launches);

                    // Memory: output (+ saved when stashed).
                    let stashed = self.is_stashed(id);
                    let kind = if stashed {
                        DataStructureKind::FeatureMap
                    } else {
                        DataStructureKind::Placeholder
                    };
                    let bytes = out_shape.num_bytes() as u64
                        + if stashed && self.opts.training {
                            saved_bytes
                        } else {
                            0
                        };
                    let tag = AllocationTag::new(node.layer, kind, node.name.clone());
                    self.allocs[id.index()] = Some(self.exec.mem.alloc(bytes, tag)?);
                    self.shapes[id.index()] = Some(out_shape);

                    // Transient freeing of this op's inputs.
                    for &input in &input_ids {
                        self.fwd_uses[input.index()] -= 1;
                        self.maybe_free_after_forward(input, outputs);
                    }
                }
            }
        }
        Ok(())
    }

    /// Frees a node's forward value if it is transient and fully consumed.
    fn maybe_free_after_forward(&mut self, id: NodeId, outputs: &[NodeId]) {
        if outputs.contains(&id) || self.fwd_uses[id.index()] > 0 {
            return;
        }
        let node = &self.exec.graph.nodes()[id.index()];
        let transient = match node.kind {
            NodeKind::Op { .. } => !self.is_stashed(id),
            // Inputs stay bound for the iteration; params persist.
            _ => false,
        };
        if transient {
            // Recompute-policy values are dropped in training too — that is
            // the entire point of partial forward propagation.
            self.allocs[id.index()] = None;
            self.values[id.index()] = None;
            self.saved[id.index()] = None;
        }
    }

    /// The plan's static shape for `id`, when a plan drives this run.
    fn static_shape(&self, id: NodeId) -> Option<&Shape> {
        self.plan
            .as_ref()
            .filter(|p| p.in_cone[id.index()])
            .map(|p| p.shape(id.index()))
    }

    fn shape_of(&self, id: NodeId) -> Result<Shape> {
        if let Some(s) = self.static_shape(id) {
            return Ok(s.clone());
        }
        if let Some(s) = self.shapes.get(id.index()).and_then(|s| s.as_ref()) {
            return Ok(s.clone());
        }
        Err(GraphError::MissingBinding {
            name: self.exec.graph.nodes()[id.index()].name.clone(),
        })
    }

    fn value_of(&self, id: NodeId) -> Result<&Tensor> {
        if let Some(v) = &self.values[id.index()] {
            return Ok(v);
        }
        if let Some(v) = self.exec.params.get(&id) {
            return Ok(v);
        }
        if let Some(v) = self.bindings.get(&id) {
            return Ok(v);
        }
        Err(GraphError::MissingBinding {
            name: self.exec.graph.nodes()[id.index()].name.clone(),
        })
    }

    /// Whether `id`'s value is on hand without a replay: computed this
    /// step, a bound parameter, or a caller-provided binding.
    fn value_at_hand(&self, id: NodeId) -> bool {
        self.values[id.index()].is_some()
            || self.exec.params.contains_key(&id)
            || self.bindings.contains_key(&id)
    }

    /// Fetches a value for backward, replaying its segment if it was
    /// dropped under a `Recompute` policy.
    fn backward_value(&mut self, id: NodeId) -> Result<Tensor> {
        if self.value_at_hand(id) {
            return self.value_of(id).cloned();
        }
        let policy = self.exec.plan.policy(id);
        if let StashPolicy::Recompute(seg) = policy {
            self.ensure_replayed(seg.id)?;
            if let Some(s) = self.scratch.get(&seg.id) {
                if let Some(v) = s.values.get(&id) {
                    return Ok(v.clone());
                }
            }
        }
        Err(GraphError::MissingBinding {
            name: self.exec.graph.nodes()[id.index()].name.clone(),
        })
    }

    fn backward_saved(&mut self, id: NodeId) -> Result<Saved> {
        if let Some(s) = &self.saved[id.index()] {
            return Ok(s.clone());
        }
        if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
            self.ensure_replayed(seg.id)?;
            if let Some(s) = self.scratch.get(&seg.id) {
                if let Some(v) = s.saved.get(&id) {
                    return Ok(v.clone());
                }
            }
        }
        Ok(Vec::new())
    }

    /// Replays segment `seg` (once): forward from stashed boundary values
    /// into a workspace-leased scratch.
    fn ensure_replayed(&mut self, seg: usize) -> Result<()> {
        if self.scratch.contains_key(&seg) {
            return Ok(());
        }
        let graph = self.graph();
        let members = self.exec.plan.segment_nodes(seg);
        if members.is_empty() {
            return Ok(());
        }
        let nodes: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|n| self.needed[n.index()])
            .collect();
        if nodes.is_empty() {
            return Ok(());
        }
        let pool_id = match self.exec.plan.policy(nodes[0]) {
            StashPolicy::Recompute(s) => s.pool,
            StashPolicy::Stash => 0,
        };
        let min_index = nodes.iter().map(|n| n.index()).min().expect("non-empty");

        // Compute scratch size and values.
        let mut values: HashMap<NodeId, Tensor> = HashMap::new();
        let mut saved: HashMap<NodeId, Saved> = HashMap::new();
        let mut shapes: HashMap<NodeId, Shape> = HashMap::new();
        let mut bytes = 0u64;

        for &id in &nodes {
            let node = &graph.nodes()[id.index()];
            let (op, input_ids) = match &node.kind {
                NodeKind::Op { op, inputs } => (Arc::clone(op), inputs.clone()),
                _ => {
                    return Err(GraphError::Operator {
                        op: node.name.clone(),
                        message: "recompute segment contains a non-op node".to_string(),
                    })
                }
            };
            // Boundary inputs are normally stashed values/params/bindings;
            // under generic checkpointing plans (Chen et al.) a boundary
            // input may itself belong to another recompute segment, which
            // is replayed recursively first (topological order bounds the
            // recursion). The numeric plane clones each fetched value out
            // immediately after its replay: two boundary segments may
            // share one exclusive workspace pool, in which case the later
            // nested replay force-retires the earlier scratch — reading
            // lazily would lose the first value.
            let mut owned: Vec<Tensor> = Vec::with_capacity(input_ids.len());
            if self.opts.numeric {
                for &i in &input_ids {
                    let v = if let Some(v) = values.get(&i) {
                        v.clone()
                    } else if let Some(v) = self.scratch_value(i) {
                        v
                    } else if self.value_at_hand(i) {
                        self.value_of(i)?.clone()
                    } else {
                        if let StashPolicy::Recompute(other) = self.exec.plan.policy(i) {
                            if other.id != seg {
                                self.ensure_replayed(other.id)?;
                            }
                        }
                        match self.scratch_value(i) {
                            Some(v) => v,
                            None => self.value_of(i)?.clone(),
                        }
                    };
                    owned.push(v);
                }
            } else {
                for &i in &input_ids {
                    if shapes.contains_key(&i) || self.value_at_hand(i) {
                        continue;
                    }
                    if let StashPolicy::Recompute(other) = self.exec.plan.policy(i) {
                        if other.id != seg && !self.scratch_has(i) {
                            self.ensure_replayed(other.id)?;
                        }
                    }
                }
            }
            let in_shapes: Vec<Shape> = if self.opts.numeric {
                owned.iter().map(|t| t.shape().clone()).collect()
            } else {
                input_ids
                    .iter()
                    .map(|&i| {
                        shapes
                            .get(&i)
                            .cloned()
                            .map(Ok)
                            .unwrap_or_else(|| self.replay_shape_of(i))
                    })
                    .collect::<Result<_>>()?
            };
            let shape_refs: Vec<&Shape> = in_shapes.iter().collect();
            let out_shape = op.infer_shape(&shape_refs)?;
            let mut saved_size = op.saved_bytes(&shape_refs, &out_shape);

            if self.opts.numeric {
                let refs: Vec<&Tensor> = owned.iter().collect();
                let (out, s) = op.forward(&refs)?;
                saved_size = saved_size.max(s.iter().map(|t| t.num_bytes() as u64).sum());
                values.insert(id, out);
                if !s.is_empty() {
                    saved.insert(id, s);
                }
            }
            let launches = op.forward_launches(&shape_refs, &out_shape);
            self.dispatch(&launches);
            bytes += out_shape.num_bytes() as u64 + saved_size;
            shapes.insert(id, out_shape);
        }

        let pool = self
            .exec
            .pools
            .entry(pool_id)
            .or_insert_with(|| {
                WorkspacePool::new(
                    self.exec.mem.clone(),
                    graph.nodes()[min_index].layer,
                    format!("segment_pool_{pool_id}"),
                )
            })
            .clone();
        // Workspaces are exclusive (paper §3.2): the Echo heuristic only
        // pools segments whose replay lifetimes are disjoint, but search-
        // produced or externally authored plans may pool segments whose
        // reader intervals overlap in the interpreter's walk. Honour the
        // contract by retiring any still-live scratch on this pool — its
        // values are re-replayable on demand, so dropping early trades
        // (deterministic) extra replays for the modeled single-workspace
        // footprint instead of aborting. The wavefront walk pins scratches
        // for its whole pass (see `retire_scratches`), so only the serial
        // cursor walk force-retires.
        if !self.wavefront {
            self.scratch.retain(|_, s| s.pool != pool_id);
        }
        let lease = pool.lease(bytes)?;
        self.replays += 1;
        let scratch = SegmentScratch {
            values,
            saved,
            shapes,
            pool: pool_id,
            _lease: lease,
            min_index,
            n_required: 0,
        };
        // Count the backward ops that may still read this scratch — each
        // decrements the refcount as it finishes. The serial walk counts
        // from the descending cursor down; a wavefront walk visits
        // indices non-monotonically, so it counts every not-yet-processed
        // entry instead (`bwd_done` is exact where the cursor is only a
        // lower bound, which is what lets wavefront retirement drop the
        // `min_index` backstop entirely).
        let n_required = if self.wavefront {
            (0..graph.len())
                .filter(|&d| !self.bwd_done[d] && reads_scratch(&graph, &self.needed, d, &scratch))
                .count()
        } else {
            let cursor = self.bwd_cursor.min(graph.len().saturating_sub(1));
            (0..=cursor)
                .filter(|&d| reads_scratch(&graph, &self.needed, d, &scratch))
                .count()
        };
        self.scratch.insert(
            seg,
            SegmentScratch {
                n_required,
                ..scratch
            },
        );
        Ok(())
    }

    /// Retires replay scratches after backward finished node `idx`:
    /// decrements the `n_required` refcount of every scratch `idx` read
    /// from (freeing at zero) and drops any scratch whose whole segment
    /// lies at or above the cursor.
    fn retire_scratches(&mut self, idx: usize) {
        let graph = Arc::clone(&self.exec.graph);
        let needed = &self.needed;
        let wavefront = self.wavefront;
        self.scratch.retain(|_, s| {
            if reads_scratch(&graph, needed, idx, s) {
                s.n_required = s.n_required.saturating_sub(1);
                if s.n_required == 0 {
                    return false;
                }
            }
            // The `min_index` backstop assumes a monotonically descending
            // cursor; wavefront order is non-monotonic, and its refcount
            // is exact (every pending reader — including ones that will
            // be skipped — was counted and decrements when processed), so
            // the refcount alone decides retirement there.
            wavefront || s.min_index < idx
        });
    }

    fn backward(&mut self, loss: NodeId) -> Result<()> {
        let seed = if self.opts.numeric {
            let shape = self.shape_of(loss)?;
            Some(Tensor::full(shape, 1.0))
        } else {
            None
        };
        self.backward_seeded(&[(loss, seed)], &[]).map(|_| ())
    }

    /// The seeded backward walk underlying both the whole-graph training
    /// step and the pipelined stage step. Each `(node, grad)` seed is
    /// installed *before* the walk — moved in when no gradient exists yet,
    /// accumulated otherwise — so in-walk contributions from this
    /// (sub)graph's consumers `axpy` onto the seed in descending node
    /// order, exactly the association the serial whole-graph walk uses
    /// when downstream consumers have larger indices. Gradients reaching
    /// `Input` nodes listed in `capture` are returned (in `capture`
    /// order) instead of discarded.
    fn backward_seeded(
        &mut self,
        seeds: &[(NodeId, Option<Tensor>)],
        capture: &[NodeId],
    ) -> Result<Vec<Option<Tensor>>> {
        let graph = self.graph();
        for (id, seed) in seeds {
            let idx = id.index();
            if self.opts.numeric {
                let t = seed.as_ref().ok_or(GraphError::SymbolicPlane {
                    what: "gradient seed",
                })?;
                match &mut self.grads[idx] {
                    Some(acc) => acc.axpy(1.0, t).map_err(GraphError::from)?,
                    slot @ None => *slot = Some(t.clone()),
                }
            }
            self.grad_present[idx] = true;
            self.alloc_grad(*id)?;
        }
        let mut captured: Vec<Option<Tensor>> = vec![None; capture.len()];

        // A stashed value is normally dead once the cursor passes its
        // index: every direct reader (its own backward, its consumers'
        // backwards) sits at or above it. Scattered segments (exact-cost
        // search output) break that: a segment reader can sit *below* one
        // of the segment's stashed boundary inputs, and the replay
        // triggered there re-reads the value. Precompute each node's
        // replay floor — the lowest backward index that may still read it
        // through a replay — and retain such values past the cursor.
        let mut replay_floor: Vec<usize> = vec![usize::MAX; graph.len()];
        {
            let mut members: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for node in graph.nodes() {
                if let StashPolicy::Recompute(s) = self.exec.plan.policy(node.id) {
                    members.entry(s.id).or_default().push(node.id);
                }
            }
            for mem in members.values() {
                let mut in_seg = vec![false; graph.len()];
                for n in mem {
                    in_seg[n.index()] = true;
                }
                let mut lowest = usize::MAX;
                for d in 0..graph.len() {
                    if !self.needed[d] {
                        continue;
                    }
                    let reads = in_seg[d]
                        || match &graph.nodes()[d].kind {
                            NodeKind::Op { op, inputs } => {
                                op.stash().inputs && inputs.iter().any(|i| in_seg[i.index()])
                            }
                            _ => false,
                        };
                    if reads {
                        lowest = d;
                        break;
                    }
                }
                if lowest == usize::MAX {
                    continue;
                }
                for m in mem {
                    if let NodeKind::Op { inputs, .. } = &graph.nodes()[m.index()].kind {
                        for i in inputs {
                            let floor = &mut replay_floor[i.index()];
                            *floor = (*floor).min(lowest);
                        }
                    }
                }
            }
        }

        for idx in (0..graph.len()).rev() {
            let id = NodeId(idx);
            self.bwd_cursor = idx;
            if !self.needed[idx] || !self.grad_present[idx] {
                continue;
            }
            let node = &graph.nodes()[idx];
            let (op, input_ids) = match &node.kind {
                NodeKind::Op { op, inputs } => {
                    if let Some(device) = self.device.as_deref_mut() {
                        device.dispatch_op();
                    }
                    (Arc::clone(op), inputs.clone())
                }
                NodeKind::Param => {
                    // Accumulate into the executor's persistent grad buffer.
                    if self.opts.numeric {
                        if let Some(g) = self.grads[idx].take() {
                            let acc = self
                                .exec
                                .grads
                                .get_mut(&id)
                                .expect("param grad buffer exists");
                            acc.axpy(1.0, &g).map_err(GraphError::from)?;
                        }
                    }
                    self.free_grad(id);
                    continue;
                }
                NodeKind::Input => {
                    // Gradients w.r.t. data are discarded — unless the
                    // caller asked to capture them (pipelined stages
                    // capture their received-interface gradients here).
                    if let Some(slot) = capture.iter().position(|c| c.index() == idx) {
                        captured[slot] = self.grads[idx].take();
                    } else {
                        self.grads[idx] = None;
                    }
                    self.free_grad(id);
                    continue;
                }
            };

            let needs = op.stash();
            let mut input_grads: Vec<Option<Tensor>> = Vec::new();
            if self.opts.numeric {
                // Collect required values (replaying segments as needed).
                let mut owned_inputs: Vec<Option<Tensor>> = Vec::with_capacity(input_ids.len());
                if needs.inputs {
                    for &i in &input_ids {
                        owned_inputs.push(Some(self.backward_value(i)?));
                    }
                } else {
                    owned_inputs.resize(input_ids.len(), None);
                }
                let output_owned = if needs.output {
                    Some(self.backward_value(id)?)
                } else {
                    None
                };
                let saved = self.backward_saved(id)?;
                let dy = self.grads[idx].clone().expect("grad present");
                let input_refs: Vec<Option<&Tensor>> =
                    owned_inputs.iter().map(|o| o.as_ref()).collect();
                input_grads = op.backward(&input_refs, output_owned.as_ref(), &saved, &dy)?;
                if input_grads.len() != input_ids.len() {
                    return Err(GraphError::Operator {
                        op: op.name().to_string(),
                        message: format!(
                            "backward returned {} gradients for {} inputs",
                            input_grads.len(),
                            input_ids.len()
                        ),
                    });
                }
            } else {
                // Symbolic plane: mark all differentiable inputs as having
                // gradients; trigger replay accounting when values would
                // have been needed.
                if needs.inputs {
                    for &i in &input_ids {
                        if !self.value_at_hand(i) {
                            if let StashPolicy::Recompute(seg) = self.exec.plan.policy(i) {
                                self.ensure_replayed(seg.id)?;
                            }
                        }
                    }
                }
                if needs.output {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
            }

            // Backward kernel launches.
            let in_shapes: Vec<Shape> = input_ids
                .iter()
                .map(|&i| self.backward_shape(i))
                .collect::<Result<_>>()?;
            let shape_refs: Vec<&Shape> = in_shapes.iter().collect();
            let out_shape = self.backward_shape(id)?;
            let launches = op.backward_launches(&shape_refs, &out_shape);
            self.dispatch(&launches);

            // Propagate.
            for (slot, &input) in input_ids.iter().enumerate() {
                if !op.input_differentiable(slot) {
                    continue;
                }
                if self.opts.numeric {
                    if let Some(g) = input_grads[slot].take() {
                        match &mut self.grads[input.index()] {
                            Some(acc) => acc.axpy(1.0, &g).map_err(GraphError::from)?,
                            slot_ref @ None => *slot_ref = Some(g),
                        }
                    } else {
                        continue;
                    }
                }
                if !self.grad_present[input.index()] {
                    self.grad_present[input.index()] = true;
                    self.alloc_grad(input)?;
                }
            }

            // This node's grad, output feature map and saved state are dead.
            self.grads[idx] = None;
            self.free_grad(id);
            self.saved[idx] = None;
            // Keep the value (and its allocation) alive when a segment
            // replay triggered below the cursor may still read it.
            if replay_floor[idx] >= idx {
                self.allocs[idx] = None;
                self.values[idx] = None;
            }

            // Retire scratches: refcounted by remaining readers, with the
            // min-index rule as backstop.
            self.retire_scratches(idx);
        }
        self.bwd_cursor = usize::MAX;
        self.scratch.clear();
        Ok(captured)
    }

    /// Whether any active scratch already holds `id`'s value.
    fn scratch_has(&self, id: NodeId) -> bool {
        self.scratch.values().any(|s| s.shapes.contains_key(&id))
    }

    /// Fetches `id`'s value from any active scratch.
    fn scratch_value(&self, id: NodeId) -> Option<Tensor> {
        self.scratch
            .values()
            .find_map(|s| s.values.get(&id).cloned())
    }

    /// Shape lookup that also consults active replay scratches.
    fn replay_shape_of(&self, id: NodeId) -> Result<Shape> {
        if let Some(s) = self.shapes.get(id.index()).and_then(|s| s.as_ref()) {
            return Ok(s.clone());
        }
        for scratch in self.scratch.values() {
            if let Some(shape) = scratch.shapes.get(&id) {
                return Ok(shape.clone());
            }
        }
        self.shape_of(id)
    }

    fn backward_shape(&mut self, id: NodeId) -> Result<Shape> {
        self.replay_shape_of(id)
    }

    fn alloc_grad(&mut self, id: NodeId) -> Result<()> {
        if self.grad_allocs[id.index()].is_some() {
            return Ok(());
        }
        let graph = self.graph();
        let node = &graph.nodes()[id.index()];
        if matches!(node.kind, NodeKind::Param) {
            return Ok(()); // persistent grad space was allocated at bind
        }
        let shape = self.backward_shape(id)?;
        let tag = AllocationTag::new(
            node.layer,
            DataStructureKind::Placeholder,
            format!("{}_grad", node.name),
        );
        self.grad_allocs[id.index()] = Some(self.exec.mem.alloc(shape.num_bytes() as u64, tag)?);
        Ok(())
    }

    fn free_grad(&mut self, id: NodeId) {
        self.grad_allocs[id.index()] = None;
    }

    fn finish(mut self) {
        if let Some(plan) = self.plan.take() {
            // Recycle whatever the step left behind (stashed values whose
            // gradients never materialized, the target value) and hand the
            // tables back to the executor for the next step.
            for &id in &plan.schedule {
                let idx = id.index();
                if let Some(t) = self.values[idx].take() {
                    self.pool.put(t.into_vec());
                }
                self.saved[idx] = None;
                if let Some(g) = self.grads[idx].take() {
                    self.pool.put(g.into_vec());
                }
                self.grad_present[idx] = false;
            }
            self.exec.state = PlanState {
                values: std::mem::take(&mut self.values),
                saved: std::mem::take(&mut self.saved),
                grads: std::mem::take(&mut self.grads),
                grad_present: std::mem::take(&mut self.grad_present),
                needed: std::mem::take(&mut self.needed),
                fwd_uses: std::mem::take(&mut self.fwd_uses),
                pool: std::mem::take(&mut self.pool),
            };
        }
        // All transient allocations drop here.
    }

    // ------------------------------------------------------------------
    // Plan-driven interpretation.
    //
    // Everything the legacy interpreter derives per step — the cone, use
    // counts, shapes, saved-byte sizes, launch descriptions, stashing
    // decisions — is read from the plan's dense tables. The op sequence,
    // replay triggers and floating-point operations are identical to the
    // legacy path, so results are bit-identical; only bookkeeping differs.
    // ------------------------------------------------------------------

    /// Returns a freed tensor's storage to the step-persistent pool.
    fn recycle(&mut self, t: Tensor) {
        self.pool.put(t.into_vec());
    }

    /// One planned training iteration: forward, scalar check, backward.
    fn plan_step(&mut self, loss: NodeId) -> Result<Option<f32>> {
        self.plan_forward()?;
        let loss_value = if self.opts.numeric {
            let t = self.values[loss.index()]
                .as_ref()
                .ok_or(GraphError::SymbolicPlane { what: "loss value" })?;
            if t.len() != 1 {
                return Err(GraphError::NonScalarLoss {
                    shape: t.shape().to_string(),
                });
            }
            Some(t.data()[0])
        } else {
            None
        };
        self.plan_backward(loss)?;
        Ok(loss_value)
    }

    /// The worker pool a wavefront execution runs on, when wavefront
    /// scheduling applies at all: numeric plane, no device simulator
    /// attached, and a pool with real parallelism behind it.
    fn wavefront_pool(&self) -> Option<PoolRef> {
        if !self.opts.numeric || self.device.is_some() {
            return None;
        }
        match &self.exec.wavefront {
            WavefrontMode::Off => None,
            WavefrontMode::Pool(p) if p.num_threads() > 1 => Some(PoolRef::Shared(Arc::clone(p))),
            WavefrontMode::Pool(_) => None,
            WavefrontMode::Auto => {
                if wavefront_env_enabled() && echo_tensor::pool::global().num_threads() > 1 {
                    Some(PoolRef::Global)
                } else {
                    None
                }
            }
        }
    }

    fn plan_forward(&mut self) -> Result<()> {
        let plan = Arc::clone(self.plan.as_ref().expect("planned run"));
        let graph = self.graph();
        if let Some(pool) = self.wavefront_pool() {
            return self.plan_forward_waves(&plan, &graph, pool.get());
        }
        let has_device = self.device.is_some();
        for &id in &plan.schedule {
            let idx = id.index();
            let node = &graph.nodes()[idx];
            let (op, input_ids) = match &node.kind {
                NodeKind::Op { op, inputs } => (op, inputs),
                // Inputs are borrowed from the caller's map on demand;
                // params from the executor. Nothing to do at their steps.
                _ => continue,
            };
            if has_device {
                if let Some(device) = self.device.as_deref_mut() {
                    device.dispatch_op();
                }
                // Launches are borrowed from the plan, not rebuilt; when
                // no device is attached they are not touched at all.
                let launches = &plan.ops[idx].as_ref().expect("op tables").fwd_launches;
                self.dispatch(launches);
            }
            if self.opts.numeric {
                let in_values: Vec<&Tensor> = input_ids
                    .iter()
                    .map(|&i| self.value_of(i))
                    .collect::<Result<_>>()?;
                let (out, saved) = op.forward(&in_values)?;
                self.values[idx] = Some(out);
                self.saved[idx] = if plan.keep_saved[idx] && !saved.is_empty() {
                    Some(saved)
                } else {
                    None
                };
            }
            for &input in input_ids {
                let iidx = input.index();
                self.fwd_uses[iidx] -= 1;
                if self.fwd_uses[iidx] == 0 && !plan.keep[iidx] && plan.transient[iidx] {
                    if let Some(t) = self.values[iidx].take() {
                        self.recycle(t);
                    }
                    self.saved[iidx] = None;
                }
            }
        }
        Ok(())
    }

    /// Wavefront forward: each wave's ops compute concurrently on `pool`
    /// into per-entry slots, then commit serially in ascending node
    /// order — exactly the store/free sequence of the serial loop. Every
    /// op reads only values committed by earlier waves (the wave tables
    /// level strictly by producer depth) and every kernel underneath has
    /// a fixed per-element reduction order, so the step is bit-identical
    /// to serial execution at any thread count.
    fn plan_forward_waves(
        &mut self,
        plan: &ExecPlan,
        graph: &Graph,
        pool: &WorkerPool,
    ) -> Result<()> {
        type FwdOut = Result<(Tensor, Saved)>;
        let mut slots: Vec<Mutex<Option<FwdOut>>> = Vec::new();
        for w in 0..plan.fwd_waves.waves() {
            let wave = plan.fwd_waves.wave(w);
            slots.clear();
            slots.resize_with(wave.len(), || Mutex::new(None));
            {
                let values = &self.values;
                let params = &self.exec.params;
                let bindings = self.bindings;
                let slots = &slots;
                pool.run_indexed(wave.len(), &|k| {
                    let idx = wave[k] as usize;
                    let NodeKind::Op { op, inputs } = &graph.nodes()[idx].kind else {
                        unreachable!("forward waves contain only ops");
                    };
                    let result = (|| -> FwdOut {
                        let mut in_values = Vec::with_capacity(inputs.len());
                        for &i in inputs {
                            in_values.push(lookup_value(values, params, bindings, graph, i)?);
                        }
                        op.forward(&in_values)
                    })();
                    *slots[k].lock().expect("forward slot") = Some(result);
                });
            }
            for (k, &entry) in wave.iter().enumerate() {
                let idx = entry as usize;
                let (out, saved) = slots[k]
                    .lock()
                    .expect("forward slot")
                    .take()
                    .expect("wave entry computed")?;
                self.values[idx] = Some(out);
                self.saved[idx] = if plan.keep_saved[idx] && !saved.is_empty() {
                    Some(saved)
                } else {
                    None
                };
                let NodeKind::Op { inputs, .. } = &graph.nodes()[idx].kind else {
                    unreachable!("forward waves contain only ops");
                };
                for &input in inputs {
                    let iidx = input.index();
                    self.fwd_uses[iidx] -= 1;
                    if self.fwd_uses[iidx] == 0 && !plan.keep[iidx] && plan.transient[iidx] {
                        if let Some(t) = self.values[iidx].take() {
                            self.recycle(t);
                        }
                        self.saved[iidx] = None;
                    }
                }
            }
        }
        Ok(())
    }

    fn plan_backward(&mut self, loss: NodeId) -> Result<()> {
        let plan = Arc::clone(self.plan.as_ref().expect("planned run"));
        let graph = self.graph();
        // Seed d(loss)/d(loss) = 1, reusing pooled storage; `take` +
        // `fill(1.0)` writes the same bits as `Tensor::full`.
        if self.opts.numeric {
            let shape = plan.shape(loss.index()).clone();
            let mut buf = self.pool.take(shape.num_elements());
            buf.fill(1.0);
            self.grads[loss.index()] =
                Some(Tensor::from_vec(shape, buf).map_err(GraphError::from)?);
        }
        self.grad_present[loss.index()] = true;

        if let Some(pool) = self.wavefront_pool() {
            return self.plan_backward_waves(&plan, &graph, pool.get());
        }

        for i in 0..plan.bwd_schedule.len() {
            let id = plan.bwd_schedule[i];
            let idx = id.index();
            self.bwd_cursor = idx;
            if !self.grad_present[idx] {
                // The static schedule is a superset of the runtime gradient
                // flow (an op may emit no gradient for a differentiable
                // input); skip exactly like the legacy interpreter.
                continue;
            }
            let node = &graph.nodes()[idx];
            let (op, input_ids) = match &node.kind {
                NodeKind::Op { op, inputs } => (Arc::clone(op), inputs.clone()),
                NodeKind::Param => {
                    if self.opts.numeric {
                        if let Some(g) = self.grads[idx].take() {
                            let acc = self
                                .exec
                                .grads
                                .get_mut(&id)
                                .expect("param grad buffer exists");
                            acc.axpy(1.0, &g).map_err(GraphError::from)?;
                            self.recycle(g);
                        }
                    }
                    self.grad_present[idx] = false;
                    continue;
                }
                NodeKind::Input => {
                    if let Some(g) = self.grads[idx].take() {
                        self.recycle(g);
                    }
                    self.grad_present[idx] = false;
                    continue;
                }
            };

            if let Some(device) = self.device.as_deref_mut() {
                device.dispatch_op();
            }
            let needs = plan.ops[idx].as_ref().expect("op tables").needs;

            // Phase 1 — mutation: trigger exactly the replays the legacy
            // interpreter would, in the same order (input values first,
            // then this node's own output/saved state; the numeric plane
            // always consults saved state, the symbolic plane only what
            // `needs` declares).
            if self.opts.numeric {
                if needs.inputs {
                    for &i in &input_ids {
                        if !self.value_at_hand(i) {
                            if let StashPolicy::Recompute(seg) = self.exec.plan.policy(i) {
                                self.ensure_replayed(seg.id)?;
                            }
                        }
                    }
                }
                if needs.output && !self.value_at_hand(id) {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
                if self.saved[idx].is_none() {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
            } else {
                if needs.inputs {
                    for &i in &input_ids {
                        if !self.value_at_hand(i) {
                            if let StashPolicy::Recompute(seg) = self.exec.plan.policy(i) {
                                self.ensure_replayed(seg.id)?;
                            }
                        }
                    }
                }
                if needs.output {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
            }

            // Phase 2 — read-only: assemble borrowed views and run the
            // backward kernel. No tensor is cloned on this path; the
            // values, saved state and upstream gradient are borrowed from
            // the run tables, the parameter store, the caller's bindings
            // or an active replay scratch.
            let mut input_grads: Vec<Option<Tensor>> = Vec::new();
            if self.opts.numeric {
                let input_refs: Vec<Option<&Tensor>> = if needs.inputs {
                    input_ids
                        .iter()
                        .map(|&i| self.borrowed_value(i))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .map(Some)
                        .collect()
                } else {
                    vec![None; input_ids.len()]
                };
                let output_ref = if needs.output {
                    Some(self.borrowed_value(id)?)
                } else {
                    None
                };
                let saved_ref: &[Tensor] = match &self.saved[idx] {
                    Some(s) => s,
                    None => self.scratch_saved(id).map_or(&[], |s| s.as_slice()),
                };
                let dy = self.grads[idx].as_ref().expect("grad present");
                input_grads = op.backward(&input_refs, output_ref, saved_ref, dy)?;
                if input_grads.len() != input_ids.len() {
                    return Err(GraphError::Operator {
                        op: op.name().to_string(),
                        message: format!(
                            "backward returned {} gradients for {} inputs",
                            input_grads.len(),
                            input_ids.len()
                        ),
                    });
                }
            }

            if self.device.is_some() {
                let launches = &plan.ops[idx].as_ref().expect("op tables").bwd_launches;
                self.dispatch(launches);
            }

            // Propagate, identically to the legacy interpreter.
            for (slot, &input) in input_ids.iter().enumerate() {
                if !op.input_differentiable(slot) {
                    continue;
                }
                if self.opts.numeric {
                    if let Some(g) = input_grads[slot].take() {
                        match &mut self.grads[input.index()] {
                            Some(acc) => acc.axpy(1.0, &g).map_err(GraphError::from)?,
                            slot_ref @ None => *slot_ref = Some(g),
                        }
                    } else {
                        continue;
                    }
                }
                self.grad_present[input.index()] = true;
            }

            // This node's grad, output feature map and saved state are dead.
            if let Some(g) = self.grads[idx].take() {
                self.recycle(g);
            }
            self.grad_present[idx] = false;
            if let Some(t) = self.values[idx].take() {
                self.recycle(t);
            }
            self.saved[idx] = None;

            self.retire_scratches(idx);
        }
        self.bwd_cursor = usize::MAX;
        self.scratch.clear();
        Ok(())
    }

    /// Wavefront backward: three phases per wave, descending node index
    /// throughout.
    ///
    /// * **Phase A (serial)** — the replay triggers of every live entry,
    ///   in exactly the serial interpreter's per-node order. Replays
    ///   mutate the scratch map and workspace pools, so they stay
    ///   single-threaded.
    /// * **Phase B (parallel)** — `op.backward` for every live op entry,
    ///   over borrowed views of values, saved state, scratches and the
    ///   upstream gradient, into per-entry slots. Strictly read-only.
    /// * **Phase C (serial)** — gradient accumulation, frees and scratch
    ///   retirement, in descending order. Two consumers of one node
    ///   therefore `axpy` into its gradient in exactly the serial walk's
    ///   order: the wave tables forbid a lower-index consumer from
    ///   landing in an earlier wave, and within a wave the descending
    ///   commit decides.
    fn plan_backward_waves(
        &mut self,
        plan: &ExecPlan,
        graph: &Graph,
        pool: &WorkerPool,
    ) -> Result<()> {
        enum Action {
            /// No gradient materialized; processed for refcounts only.
            Skip,
            /// Param (accumulate + free) or Input (discard) entry.
            Leaf,
            Compute {
                op: Arc<dyn Operator + Send + Sync>,
                inputs: Vec<NodeId>,
                needs: StashNeeds,
            },
        }
        type BwdOut = Result<Vec<Option<Tensor>>>;
        self.wavefront = true;
        self.bwd_done.clear();
        self.bwd_done.resize(plan.graph_len, false);
        let mut actions: Vec<Action> = Vec::new();
        let mut slots: Vec<Mutex<Option<BwdOut>>> = Vec::new();
        for w in 0..plan.bwd_waves.waves() {
            let wave = plan.bwd_waves.wave(w);

            // Phase A — replay triggers, serial, descending.
            actions.clear();
            for &entry in wave {
                let idx = entry as usize;
                let id = NodeId::from_index(idx);
                self.bwd_cursor = idx;
                if !self.grad_present[idx] {
                    actions.push(Action::Skip);
                    continue;
                }
                let node = &graph.nodes()[idx];
                let (op, input_ids) = match &node.kind {
                    NodeKind::Op { op, inputs } => (Arc::clone(op), inputs.clone()),
                    _ => {
                        actions.push(Action::Leaf);
                        continue;
                    }
                };
                let needs = plan.ops[idx].as_ref().expect("op tables").needs;
                if needs.inputs {
                    for &i in &input_ids {
                        if !self.value_at_hand(i) {
                            if let StashPolicy::Recompute(seg) = self.exec.plan.policy(i) {
                                self.ensure_replayed(seg.id)?;
                            }
                        }
                    }
                }
                if needs.output && !self.value_at_hand(id) {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
                if self.saved[idx].is_none() {
                    if let StashPolicy::Recompute(seg) = self.exec.plan.policy(id) {
                        self.ensure_replayed(seg.id)?;
                    }
                }
                actions.push(Action::Compute {
                    op,
                    inputs: input_ids,
                    needs,
                });
            }

            // Phase B — backward kernels, parallel, read-only.
            slots.clear();
            slots.resize_with(wave.len(), || Mutex::new(None));
            {
                let values = &self.values;
                let grads = &self.grads;
                let saved = &self.saved;
                let scratch = &self.scratch;
                let params = &self.exec.params;
                let bindings = self.bindings;
                let slots = &slots;
                let actions = &actions;
                pool.run_indexed(wave.len(), &|k| {
                    let Action::Compute { op, inputs, needs } = &actions[k] else {
                        return;
                    };
                    let idx = wave[k] as usize;
                    let id = NodeId::from_index(idx);
                    let result = (|| -> BwdOut {
                        let input_refs: Vec<Option<&Tensor>> = if needs.inputs {
                            let mut refs = Vec::with_capacity(inputs.len());
                            for &i in inputs {
                                refs.push(Some(lookup_backward_value(
                                    values, params, bindings, scratch, graph, i,
                                )?));
                            }
                            refs
                        } else {
                            vec![None; inputs.len()]
                        };
                        let output_ref = if needs.output {
                            Some(lookup_backward_value(
                                values, params, bindings, scratch, graph, id,
                            )?)
                        } else {
                            None
                        };
                        let saved_ref: &[Tensor] = match &saved[idx] {
                            Some(s) => s,
                            None => scratch
                                .values()
                                .find_map(|s| s.saved.get(&id))
                                .map_or(&[][..], |s| s.as_slice()),
                        };
                        let dy = grads[idx].as_ref().expect("grad present");
                        op.backward(&input_refs, output_ref, saved_ref, dy)
                    })();
                    *slots[k].lock().expect("backward slot") = Some(result);
                });
            }

            // Phase C — accumulate, free, retire; serial, descending.
            for (k, &entry) in wave.iter().enumerate() {
                let idx = entry as usize;
                let id = NodeId::from_index(idx);
                match &actions[k] {
                    Action::Skip => {}
                    Action::Leaf => {
                        match &graph.nodes()[idx].kind {
                            NodeKind::Param => {
                                if let Some(g) = self.grads[idx].take() {
                                    let acc = self
                                        .exec
                                        .grads
                                        .get_mut(&id)
                                        .expect("param grad buffer exists");
                                    acc.axpy(1.0, &g).map_err(GraphError::from)?;
                                    self.recycle(g);
                                }
                            }
                            NodeKind::Input => {
                                if let Some(g) = self.grads[idx].take() {
                                    self.recycle(g);
                                }
                            }
                            NodeKind::Op { .. } => {
                                unreachable!("leaf entries are params or inputs")
                            }
                        }
                        self.grad_present[idx] = false;
                    }
                    Action::Compute { op, inputs, .. } => {
                        let mut input_grads = slots[k]
                            .lock()
                            .expect("backward slot")
                            .take()
                            .expect("wave entry computed")?;
                        if input_grads.len() != inputs.len() {
                            return Err(GraphError::Operator {
                                op: op.name().to_string(),
                                message: format!(
                                    "backward returned {} gradients for {} inputs",
                                    input_grads.len(),
                                    inputs.len()
                                ),
                            });
                        }
                        for (slot, &input) in inputs.iter().enumerate() {
                            if !op.input_differentiable(slot) {
                                continue;
                            }
                            if let Some(g) = input_grads[slot].take() {
                                match &mut self.grads[input.index()] {
                                    Some(acc) => acc.axpy(1.0, &g).map_err(GraphError::from)?,
                                    slot_ref @ None => *slot_ref = Some(g),
                                }
                            } else {
                                continue;
                            }
                            self.grad_present[input.index()] = true;
                        }
                        if let Some(g) = self.grads[idx].take() {
                            self.recycle(g);
                        }
                        self.grad_present[idx] = false;
                        if let Some(t) = self.values[idx].take() {
                            self.recycle(t);
                        }
                        self.saved[idx] = None;
                    }
                }
                self.bwd_done[idx] = true;
                self.retire_scratches(idx);
            }
        }
        self.bwd_cursor = usize::MAX;
        self.wavefront = false;
        self.scratch.clear();
        Ok(())
    }

    /// Borrows `id`'s value for backward without cloning: from the run
    /// tables, parameters, bindings, or an active replay scratch. Only
    /// called after phase 1 has replayed everything this node needs.
    fn borrowed_value(&self, id: NodeId) -> Result<&Tensor> {
        if let Some(v) = &self.values[id.index()] {
            return Ok(v);
        }
        if let Some(v) = self.exec.params.get(&id) {
            return Ok(v);
        }
        if let Some(v) = self.bindings.get(&id) {
            return Ok(v);
        }
        for s in self.scratch.values() {
            if let Some(v) = s.values.get(&id) {
                return Ok(v);
            }
        }
        Err(GraphError::MissingBinding {
            name: self.exec.graph.nodes()[id.index()].name.clone(),
        })
    }

    /// Borrows `id`'s operator-private saved tensors from an active replay
    /// scratch.
    fn scratch_saved(&self, id: NodeId) -> Option<&Saved> {
        self.scratch.values().find_map(|s| s.saved.get(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{KernelLaunch, StashNeeds};
    use echo_device::{DeviceSpec, KernelCategory, KernelCost};
    use echo_memory::LayerKind;
    use echo_tensor::kernels;

    /// y = tanh(x), stashing its output like a real framework op.
    #[derive(Debug)]
    struct Tanh;

    impl crate::op::Operator for Tanh {
        fn name(&self) -> &str {
            "tanh"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Activation
        }
        fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
            Ok(inputs[0].clone())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
            Ok((kernels::tanh(inputs[0]), Vec::new()))
        }
        fn backward(
            &self,
            _inputs: &[Option<&Tensor>],
            output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let y = output.expect("tanh stashes its output");
            Ok(vec![Some(kernels::tanh_backward(y, dy)?)])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::OUTPUT
        }
        fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "tanh_fwd",
                KernelCategory::Activation,
                KernelCost::elementwise(o.num_elements(), 2),
            )]
        }
        fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "tanh_bwd",
                KernelCategory::Activation,
                KernelCost::elementwise(o.num_elements(), 3),
            )]
        }
    }

    /// y = x * w (element-wise), with w a parameter.
    #[derive(Debug)]
    struct MulParam;

    impl crate::op::Operator for MulParam {
        fn name(&self) -> &str {
            "mul"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Elementwise
        }
        fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
            Ok(inputs[0].clone())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
            Ok((inputs[0].mul(inputs[1])?, Vec::new()))
        }
        fn backward(
            &self,
            inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let x = inputs[0].expect("stash inputs");
            let w = inputs[1].expect("stash inputs");
            Ok(vec![Some(dy.mul(w)?), Some(dy.mul(x)?)])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::INPUTS
        }
        fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "mul_fwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(o.num_elements(), 3),
            )]
        }
        fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "mul_bwd",
                KernelCategory::Elementwise,
                KernelCost::elementwise(o.num_elements(), 4),
            )]
        }
    }

    /// loss = sum(x).
    #[derive(Debug)]
    struct SumAll;

    impl crate::op::Operator for SumAll {
        fn name(&self) -> &str {
            "sum"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Reduction
        }
        fn infer_shape(&self, _inputs: &[&Shape]) -> Result<Shape> {
            Ok(Shape::scalar())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
            Ok((Tensor::scalar(inputs[0].sum() as f32), Vec::new()))
        }
        fn backward(
            &self,
            inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let x = inputs[0].expect("stash inputs");
            Ok(vec![Some(Tensor::full(x.shape().clone(), dy.data()[0]))])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::INPUTS
        }
        fn forward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "sum_fwd",
                KernelCategory::Reduction,
                KernelCost::elementwise(i[0].num_elements(), 1),
            )]
        }
        fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "sum_bwd",
                KernelCategory::Reduction,
                KernelCost::elementwise(i[0].num_elements(), 1),
            )]
        }
    }

    fn chain_graph() -> (Arc<Graph>, NodeId, NodeId, NodeId, NodeId, NodeId) {
        // loss = sum(tanh(tanh(x * w)))
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let w = g.param("w", LayerKind::Rnn);
        let m = g.apply("m", Arc::new(MulParam), &[x, w], LayerKind::Rnn);
        let t1 = g.apply("t1", Arc::new(Tanh), &[m], LayerKind::Rnn);
        let t2 = g.apply("t2", Arc::new(Tanh), &[t1], LayerKind::Rnn);
        let loss = g.apply("loss", Arc::new(SumAll), &[t2], LayerKind::Output);
        (Arc::new(g), x, w, t1, t2, loss)
    }

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
    }

    #[test]
    fn forward_computes_chain() {
        let (g, x, w, _, t2, _) = chain_graph();
        let mut exec = Executor::new(g, StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
        let out = exec
            .forward(&bindings, t2, ExecOptions::default(), None)
            .unwrap();
        let expect = (0.5f32).tanh().tanh();
        assert!((out.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn train_step_produces_param_grads() {
        let (g, x, w, _, _, loss) = chain_graph();
        let mut exec = Executor::new(g, StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
        let stats = exec
            .train_step(&bindings, loss, ExecOptions::default(), None)
            .unwrap();
        let loss_v = stats.loss.unwrap();
        assert!((loss_v - 4.0 * (0.5f32).tanh().tanh()).abs() < 1e-5);
        let grad = exec.grad(w).unwrap().clone();
        // Finite-difference check.
        let eps = 1e-3f32;
        let loss_at = |wv: f32| 4.0 * (wv).tanh().tanh();
        let fd = (loss_at(0.5 + eps) - loss_at(0.5 - eps)) / (2.0 * eps);
        for &gv in grad.data() {
            assert!((gv - fd / 4.0 * 1.0).abs() < 1e-3, "grad {gv} vs fd {fd}");
        }
    }

    #[test]
    fn recompute_matches_stash_bitwise() {
        let (g, x, w, t1, _, loss) = chain_graph();
        let run = |plan: StashPlan| {
            let mut exec = Executor::new(Arc::clone(&g), plan, mem());
            exec.bind_param(w, Tensor::from_fn(Shape::d1(4), |i| 0.1 * i as f32 + 0.2))
                .unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::from_fn(Shape::d1(4), |i| 1.0 - 0.3 * i as f32));
            let stats = exec
                .train_step(&bindings, loss, ExecOptions::default(), None)
                .unwrap();
            (stats, exec.grad(w).unwrap().clone())
        };
        let (s_stash, g_stash) = run(StashPlan::stash_all());
        let mut plan = StashPlan::stash_all();
        plan.set(
            t1,
            StashPolicy::Recompute(crate::policy::SegmentId { id: 0, pool: 0 }),
        );
        let (s_rec, g_rec) = run(plan);
        assert_eq!(s_stash.loss, s_rec.loss);
        assert_eq!(g_stash.data(), g_rec.data(), "gradients must be bit-exact");
        assert_eq!(s_rec.replays, 1);
        assert_eq!(s_stash.replays, 0);
    }

    #[test]
    fn recompute_reduces_peak_memory() {
        // Larger tensors so the policy effect dominates bookkeeping.
        let (g, x, w, t1, _, loss) = chain_graph();
        let n = 64 * 1024;
        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&g), plan, m.clone());
            exec.bind_param(w, Tensor::full(Shape::d1(n), 0.5)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(n), 1.0));
            exec.train_step(&bindings, loss, ExecOptions::default(), None)
                .unwrap();
            m.peak_bytes()
        };
        let peak_stash = run(StashPlan::stash_all());
        let mut plan = StashPlan::stash_all();
        plan.set(
            t1,
            StashPolicy::Recompute(crate::policy::SegmentId { id: 0, pool: 0 }),
        );
        let peak_rec = run(plan);
        assert!(
            peak_rec < peak_stash,
            "recompute peak {peak_rec} must be below stash peak {peak_stash}"
        );
    }

    #[test]
    fn symbolic_plane_matches_numeric_memory() {
        let (g, x, w, _, _, loss) = chain_graph();
        let n = 1024;
        let run = |numeric: bool| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), m.clone());
            if numeric {
                exec.bind_param(w, Tensor::full(Shape::d1(n), 0.5)).unwrap();
            } else {
                exec.bind_param_shape(w, Shape::d1(n)).unwrap();
            }
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(n), 1.0));
            exec.train_step(
                &bindings,
                loss,
                ExecOptions {
                    training: true,
                    numeric,
                },
                None,
            )
            .unwrap();
            m.peak_bytes()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn device_launches_cover_forward_and_backward() {
        let (g, x, w, _, _, loss) = chain_graph();
        let mut exec = Executor::new(g, StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(8), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(8), 1.0));
        let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
        exec.train_step(&bindings, loss, ExecOptions::default(), Some(&mut sim))
            .unwrap();
        sim.synchronize();
        // 4 forward + 4 backward kernels.
        assert_eq!(sim.api_stats().launch_calls, 8);
        let trace = sim.summary();
        assert!(trace.category_ns(KernelCategory::Activation) > 0);
    }

    #[test]
    fn recompute_adds_replay_launches() {
        let (g, x, w, t1, _, loss) = chain_graph();
        let launches = |plan: StashPlan| {
            let mut exec = Executor::new(Arc::clone(&g), plan, mem());
            exec.bind_param(w, Tensor::full(Shape::d1(8), 0.5)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(8), 1.0));
            let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
            exec.train_step(&bindings, loss, ExecOptions::default(), Some(&mut sim))
                .unwrap();
            sim.api_stats().launch_calls
        };
        let base = launches(StashPlan::stash_all());
        let mut plan = StashPlan::stash_all();
        plan.set(
            t1,
            StashPolicy::Recompute(crate::policy::SegmentId { id: 0, pool: 0 }),
        );
        assert_eq!(launches(plan), base + 1, "one replayed forward kernel");
    }

    #[test]
    fn missing_binding_is_reported() {
        let (g, _x, w, _, t2, _) = chain_graph();
        let mut exec = Executor::new(g, StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let err = exec
            .forward(&HashMap::new(), t2, ExecOptions::default(), None)
            .unwrap_err();
        assert!(matches!(err, GraphError::MissingBinding { .. }));
    }

    #[test]
    fn non_scalar_loss_rejected() {
        let (g, x, w, _, t2, _) = chain_graph();
        let mut exec = Executor::new(g, StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
        let err = exec
            .train_step(&bindings, t2, ExecOptions::default(), None)
            .unwrap_err();
        assert!(matches!(err, GraphError::NonScalarLoss { .. }));
    }

    fn recompute_t1_plan() -> StashPlan {
        let mut plan = StashPlan::stash_all();
        let (_, _, _, t1, _, _) = chain_graph();
        plan.set(
            t1,
            StashPolicy::Recompute(crate::policy::SegmentId { id: 0, pool: 0 }),
        );
        plan
    }

    /// Runs one train step legacy and one plan-driven on fresh executors
    /// and returns both `(stats, grad)` pairs.
    fn legacy_vs_planned(
        plan: StashPlan,
    ) -> ((IterationStats, Tensor), (IterationStats, Tensor), u64) {
        let (g, x, w, _, _, loss) = chain_graph();
        let init_w = Tensor::from_fn(Shape::d1(4), |i| 0.1 * i as f32 + 0.2);
        let init_x = Tensor::from_fn(Shape::d1(4), |i| 1.0 - 0.3 * i as f32);
        let run = |planned: bool| {
            let mut exec = Executor::new(Arc::clone(&g), plan.clone(), mem());
            exec.bind_param(w, init_w.clone()).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, init_x.clone());
            let mut planned_peak = 0;
            if planned {
                let ep = exec
                    .plan_for(&bindings, loss, ExecOptions::default())
                    .unwrap();
                planned_peak = ep.planned_peak_bytes();
                exec.set_exec_plan(ep).unwrap();
            }
            let stats = exec
                .train_step(&bindings, loss, ExecOptions::default(), None)
                .unwrap();
            ((stats, exec.grad(w).unwrap().clone()), planned_peak)
        };
        let (legacy, _) = run(false);
        let (planned, planned_peak) = run(true);
        (legacy, planned, planned_peak)
    }

    #[test]
    fn planned_step_is_bit_identical_to_legacy() {
        for plan in [StashPlan::stash_all(), recompute_t1_plan()] {
            let ((ls, lg), (ps, pg), _) = legacy_vs_planned(plan);
            assert_eq!(ls.loss, ps.loss, "loss bits must match");
            assert_eq!(lg.data(), pg.data(), "gradient bits must match");
            assert_eq!(ls.replays, ps.replays, "replay counts must match");
        }
    }

    #[test]
    fn planned_peak_equals_legacy_peak() {
        // The plan's static accounting timeline replays the interpreter's
        // allocator events exactly, and slot packing is size-exact — so the
        // planned peak is not merely a bound, it is the same number.
        for plan in [StashPlan::stash_all(), recompute_t1_plan()] {
            let ((ls, _), (ps, _), planned_peak) = legacy_vs_planned(plan);
            assert_eq!(ps.peak_bytes, ls.peak_bytes, "step peaks must agree");
            assert_eq!(planned_peak, ls.peak_bytes, "static peak must agree");
        }
    }

    #[test]
    fn planned_steps_are_stable_across_iterations() {
        // Pools and step-persistent tables must not drift the numbers: the
        // loss/replay trajectory matches a fresh legacy executor stepped the
        // same way, and the planned peak holds steady. The peak itself is
        // allowed to sit *below* legacy on steps >= 2: legacy retains the
        // recompute workspace buffer between steps, and that idle buffer sits
        // underneath the early-backward transient peak, while the planned
        // accounting reuses it — the reusing-allocator number the plan models.
        let (g, x, w, _, _, loss) = chain_graph();
        let run = |planned: bool| {
            let mut exec = Executor::new(Arc::clone(&g), recompute_t1_plan(), mem());
            exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
            if planned {
                let ep = exec
                    .plan_for(&bindings, loss, ExecOptions::default())
                    .unwrap();
                exec.set_exec_plan(ep).unwrap();
            }
            let mut out = Vec::new();
            for _ in 0..3 {
                let stats = exec
                    .train_step(&bindings, loss, ExecOptions::default(), None)
                    .unwrap();
                out.push((stats.loss, stats.peak_bytes, stats.replays));
            }
            out
        };
        let legacy = run(false);
        let planned = run(true);
        for (l, p) in legacy.iter().zip(&planned) {
            assert_eq!(p.0, l.0, "loss trajectories must agree");
            assert_eq!(p.2, l.2, "replay counts must agree");
            assert!(p.1 <= l.1, "planned peak {} above legacy {}", p.1, l.1);
        }
        // Planned peaks are identical every step; legacy's may creep up once
        // the workspace pool is warm.
        assert!(planned.iter().all(|s| s.1 == planned[0].1));
        assert_eq!(planned[0].1, legacy[0].1);
    }

    #[test]
    fn planned_forward_matches_legacy_forward() {
        let (g, x, w, _, t2, _) = chain_graph();
        let run = |planned: bool| {
            let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
            exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
            if planned {
                let ep = exec
                    .plan_for(&bindings, t2, ExecOptions::default())
                    .unwrap();
                exec.set_exec_plan(ep).unwrap();
            }
            exec.forward(&bindings, t2, ExecOptions::default(), None)
                .unwrap()
        };
        assert_eq!(run(false).data(), run(true).data());
    }

    #[test]
    fn planned_device_launches_match_legacy() {
        let (g, x, w, _, _, loss) = chain_graph();
        let launches = |plan: StashPlan, planned: bool| {
            let mut exec = Executor::new(Arc::clone(&g), plan, mem());
            exec.bind_param(w, Tensor::full(Shape::d1(8), 0.5)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(8), 1.0));
            if planned {
                let ep = exec
                    .plan_for(&bindings, loss, ExecOptions::default())
                    .unwrap();
                exec.set_exec_plan(ep).unwrap();
            }
            let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
            exec.train_step(&bindings, loss, ExecOptions::default(), Some(&mut sim))
                .unwrap();
            sim.api_stats().launch_calls
        };
        assert_eq!(launches(StashPlan::stash_all(), true), 8);
        assert_eq!(
            launches(recompute_t1_plan(), true),
            launches(recompute_t1_plan(), false)
        );
    }

    #[test]
    fn mismatched_bindings_fall_back_to_legacy() {
        // A plan is specialized to its binding shapes. Presenting a batch
        // of a different shape (a real case: NMT bucketed batches) must
        // silently use the legacy interpreter, not fail and not misuse
        // the plan.
        let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let loss = g.apply(
            "probe",
            Arc::new(PtrProbe(Arc::clone(&seen))),
            &[x],
            LayerKind::Output,
        );
        let g = Arc::new(g);
        let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(1024), 0.5));
        let ep = exec
            .plan_for(&bindings, loss, ExecOptions::default())
            .unwrap();
        exec.set_exec_plan(ep).unwrap();
        let mut other = HashMap::new();
        other.insert(x, Tensor::full(Shape::d1(2048), 0.25));
        let stats = exec
            .train_step(&other, loss, ExecOptions::default(), None)
            .unwrap();
        assert_eq!(stats.loss, Some(0.25 * 2048.0));
    }

    #[test]
    fn set_exec_plan_rejects_foreign_graph() {
        let (g, x, w, _, _, loss) = chain_graph();
        let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
        let ep = exec
            .plan_for(&bindings, loss, ExecOptions::default())
            .unwrap();

        let mut other_graph = Graph::new();
        let _ = other_graph.input("x", LayerKind::Other);
        let mut other = Executor::new(Arc::new(other_graph), StashPlan::stash_all(), mem());
        assert!(other.set_exec_plan(ep).is_err());
    }

    #[test]
    fn clone_replica_shares_exec_plan() {
        let (g, x, w, _, _, loss) = chain_graph();
        let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::full(Shape::d1(4), 0.5)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(4), 1.0));
        let ep = exec
            .plan_for(&bindings, loss, ExecOptions::default())
            .unwrap();
        exec.set_exec_plan(Arc::clone(&ep)).unwrap();
        let replica = exec.clone_replica(mem()).unwrap();
        let shared = replica.exec_plan().expect("replica inherits the plan");
        assert!(Arc::ptr_eq(shared, &ep), "no replanning per replica");
    }

    /// Records the data pointer its input tensor presented to `forward`.
    #[derive(Debug)]
    struct PtrProbe(Arc<std::sync::atomic::AtomicUsize>);

    impl crate::op::Operator for PtrProbe {
        fn name(&self) -> &str {
            "ptr_probe"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Reduction
        }
        fn infer_shape(&self, _inputs: &[&Shape]) -> Result<Shape> {
            Ok(Shape::scalar())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
            self.0.store(
                inputs[0].data().as_ptr() as usize,
                std::sync::atomic::Ordering::SeqCst,
            );
            Ok((Tensor::scalar(inputs[0].sum() as f32), Vec::new()))
        }
        fn backward(
            &self,
            inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let x = inputs[0].expect("stash inputs");
            Ok(vec![Some(Tensor::full(x.shape().clone(), dy.data()[0]))])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::INPUTS
        }
        fn forward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "probe_fwd",
                KernelCategory::Reduction,
                KernelCost::elementwise(i[0].num_elements(), 1),
            )]
        }
        fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "probe_bwd",
                KernelCategory::Reduction,
                KernelCost::elementwise(i[0].num_elements(), 1),
            )]
        }
    }

    #[test]
    fn bindings_are_borrowed_not_copied_per_step() {
        // Regression test for the former `value.clone()` of every input
        // binding into the run state: the tensor an op sees must be the
        // caller's own storage, on both the legacy and the planned path.
        let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut g = Graph::new();
        let x = g.input("embedding_input", LayerKind::Embedding);
        let loss = g.apply(
            "probe",
            Arc::new(PtrProbe(Arc::clone(&seen))),
            &[x],
            LayerKind::Output,
        );
        let g = Arc::new(g);
        for planned in [false, true] {
            let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::full(Shape::d1(1024), 0.5));
            if planned {
                let ep = exec
                    .plan_for(&bindings, loss, ExecOptions::default())
                    .unwrap();
                exec.set_exec_plan(ep).unwrap();
            }
            seen.store(0, std::sync::atomic::Ordering::SeqCst);
            exec.train_step(&bindings, loss, ExecOptions::default(), None)
                .unwrap();
            let caller_ptr = bindings[&x].data().as_ptr() as usize;
            assert_eq!(
                seen.load(std::sync::atomic::Ordering::SeqCst),
                caller_ptr,
                "op must see the caller's buffer, not a per-step copy (planned={planned})"
            );
        }
    }

    #[test]
    fn inference_plan_is_leaner_than_training_plan() {
        let (g, x, w, t1, t2, loss) = chain_graph();
        let exec = {
            let mut e = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
            e.bind_param(w, Tensor::full(Shape::d1(1024), 0.5)).unwrap();
            e
        };
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::full(Shape::d1(1024), 1.0));
        let training = exec
            .plan_for(&bindings, loss, ExecOptions::default())
            .unwrap();
        let inference = exec.plan_for_inference(&bindings, &[t2, t1]).unwrap();
        assert!(!inference.training());
        assert_eq!(inference.outputs(), &[t2, t1]);
        assert!(
            inference.arena_bytes() < training.arena_bytes(),
            "inference arena {} must be strictly below training arena {}",
            inference.arena_bytes(),
            training.arena_bytes()
        );
        assert!(
            inference.launch_count() < training.launch_count(),
            "no backward launches in an inference plan"
        );
        assert!(inference.planned_peak_bytes() < training.planned_peak_bytes());
    }

    #[test]
    fn forward_many_planned_matches_legacy_bitwise() {
        let (g, x, w, t1, t2, _) = chain_graph();
        let run = |planned: bool| {
            let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
            exec.bind_param(w, Tensor::from_fn(Shape::d1(4), |i| 0.1 * i as f32 + 0.2))
                .unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, Tensor::from_fn(Shape::d1(4), |i| 1.0 - 0.3 * i as f32));
            if planned {
                let ep = exec.plan_for_inference(&bindings, &[t2, t1]).unwrap();
                exec.set_exec_plan(ep).unwrap();
            }
            let opts = ExecOptions {
                training: false,
                numeric: true,
            };
            exec.forward_many(&bindings, &[t2, t1], opts, None).unwrap()
        };
        let legacy = run(false);
        let planned = run(true);
        assert_eq!(legacy.len(), 2);
        for (l, p) in legacy.iter().zip(&planned) {
            assert_eq!(l.data(), p.data(), "multi-output values must be bit-exact");
        }
        // And each output individually matches a single-target forward.
        let mut exec = Executor::new(Arc::clone(&g), StashPlan::stash_all(), mem());
        exec.bind_param(w, Tensor::from_fn(Shape::d1(4), |i| 0.1 * i as f32 + 0.2))
            .unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, Tensor::from_fn(Shape::d1(4), |i| 1.0 - 0.3 * i as f32));
        let opts = ExecOptions {
            training: false,
            numeric: true,
        };
        let single = exec.forward(&bindings, t2, opts, None).unwrap();
        assert_eq!(single.data(), legacy[0].data());
    }

    #[test]
    fn oom_surfaces_from_execution() {
        let (g, x, w, _, _, loss) = chain_graph();
        let tiny = DeviceMemory::with_overhead_model(256, 0, 0.0);
        let mut exec = Executor::new(g, StashPlan::stash_all(), tiny);
        match exec.bind_param(w, Tensor::full(Shape::d1(64), 0.5)) {
            Ok(()) => {
                let mut bindings = HashMap::new();
                bindings.insert(x, Tensor::full(Shape::d1(64), 1.0));
                let err = exec
                    .train_step(&bindings, loss, ExecOptions::default(), None)
                    .unwrap_err();
                assert!(matches!(err, GraphError::Oom(_)));
            }
            Err(err) => assert!(matches!(err, GraphError::Oom(_))),
        }
    }
}
