//! Common-subexpression elimination over the GIR.
//!
//! Two live op nodes are duplicates when their operators render to the
//! same `Debug` string (operators are pure value types, so their debug
//! form is their full configuration) and their canonical inputs match.
//! Detection walks nodes in ascending id order, resolving inputs through
//! the redirect table as it goes, so chains of duplicates collapse
//! transitively.
//!
//! **Merging is not always bit-exact for training.** Redirecting every
//! consumer of a duplicate onto one canonical node concentrates gradient
//! contributions that the serial interpreter would have accumulated into
//! separate tensors, re-associating float adds. Callers therefore choose:
//! `merge = false` reports duplicates without touching the graph (the
//! training default — the pipeline records the count in the pass trace),
//! `merge = true` rewrites consumers (bit-exact for inference, which runs
//! forward only).

use super::{Gir, Rewrite};
use crate::graph::{NodeId, NodeKind};
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Finds (and with `merge`, eliminates) duplicate live op nodes. Returns
/// the number of duplicates found.
///
/// # Errors
///
/// Returns an error when the merged graph fails to re-infer shapes — a
/// pass bug, never expected on well-formed graphs.
pub fn common_subexpr_elim(gir: &mut Gir, merge: bool) -> Result<usize> {
    let graph = Arc::clone(gir.graph());
    let n = graph.len();
    let mask = gir.live_mask();

    // redirect[i]: the canonical node computing node i's value.
    let mut redirect: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut seen: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    let mut duplicates = 0usize;
    for node in graph.nodes() {
        if !mask[node.id.index()] {
            continue;
        }
        let NodeKind::Op { op, inputs } = &node.kind else {
            continue;
        };
        let canon_inputs: Vec<NodeId> = inputs.iter().map(|i| redirect[i.index()]).collect();
        let key = (format!("{op:?}"), canon_inputs);
        match seen.get(&key) {
            Some(&first) => {
                redirect[node.id.index()] = first;
                duplicates += 1;
            }
            None => {
                seen.insert(key, node.id);
            }
        }
    }
    if duplicates == 0 || !merge {
        return Ok(duplicates);
    }

    // Rewrite consumers whose inputs changed under the redirect table.
    // Duplicates keep their definitions but fall out of the cone (unless
    // protected, in which case they stay live and still compute the same
    // value).
    let mut rewrites: Vec<Rewrite> = Vec::new();
    for node in graph.nodes() {
        let NodeKind::Op { op, inputs } = &node.kind else {
            continue;
        };
        if redirect[node.id.index()] != node.id {
            continue; // the duplicate itself: leave its definition alone
        }
        let new_inputs: Vec<NodeId> = inputs.iter().map(|i| redirect[i.index()]).collect();
        if new_inputs != *inputs {
            rewrites.push(Rewrite {
                id: node.id,
                op: Arc::clone(op),
                inputs: new_inputs,
            });
        }
    }
    gir.apply_rewrites(rewrites)?;
    Ok(duplicates)
}
