//! The generic fused-group operator.
//!
//! A [`FusedGroup`] hosts a single-escape subgraph — a set of elementwise
//! constituents whose only externally visible value is the group's last
//! (host) output — behind the ordinary [`Operator`] interface, so every
//! downstream layer (stash policies, O-shape detection, plan lowering,
//! both executor paths) treats it as one node launching one kernel each
//! way.
//!
//! **Bit-exactness.** Forward runs the constituents in their original
//! ascending node-id order with the same input tensors the unfused graph
//! would pass, so every value is bit-identical by construction. Backward
//! runs them in descending id order and accumulates gradients with the
//! executor's exact discipline — first contribution stored, later ones
//! added via `axpy` in arrival order — which matches the serial
//! interpreter's descending-consumer traversal of the unfused graph. The
//! one ordering freedom fusion introduces (a group posts its combined
//! contribution to a shared external value at the host's schedule
//! position rather than at each constituent's) is only permitted by the
//! fusion pass when it is provably bit-neutral; see
//! [`fusion`](super::fusion) for the admission rules.
//!
//! Interior outputs are returned as operator-private `Saved` state — the
//! analogue of cuDNN's LSTM "reserve space": fusion removes launches, not
//! backward dependencies, so the saved bytes match what the unfused graph
//! stashed for the same nodes.

use crate::op::{KernelLaunch, Operator, Saved, StashNeeds};
use crate::{GraphError, Result};
use echo_device::{KernelCategory, KernelCost};
use echo_tensor::{Shape, Tensor};
use std::sync::Arc;

/// Where one constituent input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedInput {
    /// The group's `k`-th external input.
    External(usize),
    /// The output of constituent step `j` (an interior value).
    Interior(usize),
}

/// One constituent of a fused group, in original topological position.
#[derive(Debug, Clone)]
pub struct FusedStep {
    /// The original operator.
    pub op: Arc<dyn Operator + Send + Sync>,
    /// Where each of its inputs comes from.
    pub inputs: Vec<FusedInput>,
    /// The original node name (for traces and errors).
    pub name: String,
}

/// A fused single-escape group of elementwise operators. See the module
/// docs for the construction and bit-exactness contract.
#[derive(Debug, Clone)]
pub struct FusedGroup {
    name: String,
    steps: Vec<FusedStep>,
    n_inputs: usize,
    needs: StashNeeds,
    differentiable: Vec<bool>,
}

impl FusedGroup {
    /// Assembles a fused group from constituents listed in ascending
    /// original-id order; the last step is the host whose output escapes.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or an interior reference points at or
    /// past its own step — programming errors in the fusion pass.
    pub fn new(name: impl Into<String>, steps: Vec<FusedStep>, n_inputs: usize) -> Self {
        assert!(!steps.is_empty(), "fused group needs at least one step");
        for (j, step) in steps.iter().enumerate() {
            for input in &step.inputs {
                match *input {
                    FusedInput::External(k) => assert!(k < n_inputs, "external {k} out of range"),
                    FusedInput::Interior(i) => assert!(i < j, "interior {i} not before step {j}"),
                }
            }
        }
        // The group needs its external inputs stashed iff some
        // constituent's backward reads an input that is external; the
        // host's output iff the host's own backward reads its output.
        let inputs_needed = steps.iter().any(|s| {
            s.op.stash().inputs
                && s.inputs
                    .iter()
                    .any(|i| matches!(i, FusedInput::External(_)))
        });
        let host_needs_output = steps.last().expect("non-empty").op.stash().output;
        // An external input is differentiable iff any consuming slot is.
        let mut differentiable = vec![false; n_inputs];
        for step in &steps {
            for (slot, input) in step.inputs.iter().enumerate() {
                if let FusedInput::External(k) = *input {
                    if step.op.input_differentiable(slot) {
                        differentiable[k] = true;
                    }
                }
            }
        }
        FusedGroup {
            name: name.into(),
            steps,
            n_inputs,
            needs: StashNeeds {
                inputs: inputs_needed,
                output: host_needs_output,
            },
            differentiable,
        }
    }

    /// The constituents, in execution (ascending original-id) order.
    pub fn steps(&self) -> &[FusedStep] {
        &self.steps
    }

    /// Number of fused-away launches: constituents minus the single fused
    /// kernel.
    pub fn launches_saved(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// Shapes of every step output, computed from the external input
    /// shapes.
    fn step_shapes(&self, inputs: &[&Shape]) -> Result<Vec<Shape>> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let in_shapes: Vec<&Shape> = step
                .inputs
                .iter()
                .map(|i| match *i {
                    FusedInput::External(k) => inputs[k],
                    FusedInput::Interior(j) => &shapes[j],
                })
                .collect();
            shapes.push(step.op.infer_shape(&in_shapes)?);
        }
        Ok(shapes)
    }

    /// Summed kernel costs of the constituents' launches, rolled into one
    /// fused launch description.
    fn fused_cost(
        &self,
        inputs: &[&Shape],
        launches_of: impl Fn(&FusedStep, &[&Shape], &Shape) -> Vec<KernelLaunch>,
    ) -> KernelCost {
        let shapes = match self.step_shapes(inputs) {
            Ok(s) => s,
            Err(_) => return KernelCost::elementwise(0, 1),
        };
        let mut flops: u64 = 0;
        let mut parallelism: usize = 1;
        for (j, step) in self.steps.iter().enumerate() {
            let in_shapes: Vec<&Shape> = step
                .inputs
                .iter()
                .map(|i| match *i {
                    FusedInput::External(k) => inputs[k],
                    FusedInput::Interior(jj) => &shapes[jj],
                })
                .collect();
            let out = shapes[j].clone();
            for launch in launches_of(step, &in_shapes, &out) {
                flops += crate::plan::launch_flops(std::slice::from_ref(&launch));
                if let crate::op::LaunchSpec::Kernel(c) = &launch.spec {
                    parallelism = parallelism.max(c.parallelism);
                }
            }
        }
        // External traffic: the fused kernel reads the group inputs and
        // writes the host output plus the interior (reserve-space) values.
        let in_bytes: u64 = inputs.iter().map(|s| s.num_bytes() as u64).sum();
        let out_bytes: u64 = shapes.iter().map(|s| s.num_bytes() as u64).sum();
        KernelCost {
            flops,
            dram_bytes: in_bytes + out_bytes,
            l2_bytes: 0,
            parallelism,
            bandwidth_efficiency: 0.85,
        }
    }
}

impl Operator for FusedGroup {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }

    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        Ok(self
            .step_shapes(inputs)?
            .pop()
            .expect("fused group is non-empty"))
    }

    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
        let mut values: Vec<Tensor> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let refs: Vec<&Tensor> = step
                .inputs
                .iter()
                .map(|i| match *i {
                    FusedInput::External(k) => inputs[k],
                    FusedInput::Interior(j) => &values[j],
                })
                .collect();
            let (y, saved) = step.op.forward(&refs)?;
            if !saved.is_empty() {
                return Err(GraphError::Operator {
                    op: self.name.clone(),
                    message: format!(
                        "constituent {} has private saved state; not fusible",
                        step.name
                    ),
                });
            }
            values.push(y);
        }
        let output = values.pop().expect("fused group is non-empty");
        // Saved = interior outputs, in step order — the reserve space the
        // grouped backward replays from.
        Ok((output, values))
    }

    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let n = self.steps.len();
        if saved.len() != n - 1 {
            return Err(GraphError::Operator {
                op: self.name.clone(),
                message: format!("expected {} interior values, got {}", n - 1, saved.len()),
            });
        }
        let value_of = |j: usize| -> Option<&Tensor> {
            if j + 1 == n {
                output
            } else {
                Some(&saved[j])
            }
        };
        // Per-step and per-external gradient accumulators. Discipline is
        // the interpreter's: first contribution stored, later ones added
        // in arrival order; steps processed in descending original order.
        let mut step_grads: Vec<Option<Tensor>> = vec![None; n];
        let mut ext_grads: Vec<Option<Tensor>> = vec![None; self.n_inputs];
        step_grads[n - 1] = Some(dy.clone());
        for (j, step) in self.steps.iter().enumerate().rev() {
            let Some(g) = step_grads[j].take() else {
                continue;
            };
            let needs = step.op.stash();
            let owned: Vec<Option<&Tensor>> = step
                .inputs
                .iter()
                .map(|i| {
                    if !needs.inputs {
                        return None;
                    }
                    match *i {
                        FusedInput::External(k) => inputs[k],
                        FusedInput::Interior(jj) => Some(&saved[jj]),
                    }
                })
                .collect();
            let out_val = if needs.output { value_of(j) } else { None };
            let grads = step.op.backward(&owned, out_val, &[], &g)?;
            if grads.len() != step.inputs.len() {
                return Err(GraphError::Operator {
                    op: self.name.clone(),
                    message: format!(
                        "constituent {} returned {} gradients for {} inputs",
                        step.name,
                        grads.len(),
                        step.inputs.len()
                    ),
                });
            }
            for (slot, gi) in grads.into_iter().enumerate() {
                if !step.op.input_differentiable(slot) {
                    continue;
                }
                let Some(gi) = gi else { continue };
                let acc = match step.inputs[slot] {
                    FusedInput::External(k) => &mut ext_grads[k],
                    FusedInput::Interior(jj) => &mut step_grads[jj],
                };
                match acc {
                    Some(t) => t.axpy(1.0, &gi).map_err(GraphError::from)?,
                    slot_ref @ None => *slot_ref = Some(gi),
                }
            }
        }
        Ok(ext_grads)
    }

    fn stash(&self) -> StashNeeds {
        self.needs
    }

    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            format!("{}_fwd", self.name),
            KernelCategory::Elementwise,
            self.fused_cost(inputs, |s, i, o| s.op.forward_launches(i, o)),
        )]
    }

    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            format!("{}_bwd", self.name),
            KernelCategory::Elementwise,
            self.fused_cost(inputs, |s, i, o| s.op.backward_launches(i, o)),
        )]
    }

    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        // Interior outputs (everything but the host) are saved verbatim.
        match self.step_shapes(inputs) {
            Ok(mut shapes) => {
                shapes.pop();
                shapes.iter().map(|s| s.num_bytes() as u64).sum()
            }
            Err(_) => 0,
        }
    }

    fn input_differentiable(&self, index: usize) -> bool {
        self.differentiable.get(index).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny constituent: y = a * b (stashes inputs, like `Mul`).
    #[derive(Debug)]
    struct TestMul;
    impl Operator for TestMul {
        fn name(&self) -> &str {
            "mul"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Elementwise
        }
        fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
            Ok(inputs[0].clone())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
            let mut y = inputs[0].clone();
            for (v, b) in y.data_mut().iter_mut().zip(inputs[1].data()) {
                *v *= *b;
            }
            Ok((y, Vec::new()))
        }
        fn backward(
            &self,
            inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let a = inputs[0].expect("stashes inputs");
            let b = inputs[1].expect("stashes inputs");
            let mut da = dy.clone();
            for (v, x) in da.data_mut().iter_mut().zip(b.data()) {
                *v *= *x;
            }
            let mut db = dy.clone();
            for (v, x) in db.data_mut().iter_mut().zip(a.data()) {
                *v *= *x;
            }
            Ok(vec![Some(da), Some(db)])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::INPUTS
        }
        fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            vec![KernelLaunch::kernel(
                "mul",
                KernelCategory::Elementwise,
                KernelCost::elementwise(o.num_elements(), 3),
            )]
        }
        fn backward_launches(&self, i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
            self.forward_launches(i, o)
        }
    }

    #[test]
    fn fused_chain_matches_serial_bits() {
        // y = (a*b) * a — interior (a*b), host mul; `a` feeds both steps.
        let group = FusedGroup::new(
            "fused_test",
            vec![
                FusedStep {
                    op: Arc::new(TestMul),
                    inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                    name: "ab".to_string(),
                },
                FusedStep {
                    op: Arc::new(TestMul),
                    inputs: vec![FusedInput::Interior(0), FusedInput::External(0)],
                    name: "y".to_string(),
                },
            ],
            2,
        );
        let a = Tensor::from_fn(Shape::d1(4), |i| 0.3 + i as f32 * 0.7);
        let b = Tensor::from_fn(Shape::d1(4), |i| 1.1 - i as f32 * 0.2);
        let (y, saved) = group.forward(&[&a, &b]).unwrap();
        assert_eq!(saved.len(), 1);
        // Serial reference.
        let (ab, _) = TestMul.forward(&[&a, &b]).unwrap();
        let (y_ref, _) = TestMul.forward(&[&ab, &a]).unwrap();
        assert_eq!(y.data(), y_ref.data());

        let dy = Tensor::from_fn(Shape::d1(4), |i| 0.9 - i as f32 * 0.1);
        let grads = group
            .backward(&[Some(&a), Some(&b)], Some(&y), &saved, &dy)
            .unwrap();
        // Serial reference backward, interpreter discipline: host first
        // (descending), contributions stored-then-axpy'd.
        let host = TestMul
            .backward(&[Some(&ab), Some(&a)], None, &[], &dy)
            .unwrap();
        let d_ab = host[0].clone().unwrap();
        let mut da = host[1].clone().unwrap(); // first contribution: stored
        let inner = TestMul
            .backward(&[Some(&a), Some(&b)], None, &[], &d_ab)
            .unwrap();
        da.axpy(1.0, inner[0].as_ref().unwrap()).unwrap(); // second: axpy
        let db = inner[1].clone().unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(grads[0].as_ref().unwrap()), bits(&da));
        assert_eq!(bits(grads[1].as_ref().unwrap()), bits(&db));
    }

    #[test]
    fn fused_group_declares_one_launch_and_reserve_bytes() {
        let group = FusedGroup::new(
            "fused_test",
            vec![
                FusedStep {
                    op: Arc::new(TestMul),
                    inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                    name: "ab".to_string(),
                },
                FusedStep {
                    op: Arc::new(TestMul),
                    inputs: vec![FusedInput::Interior(0), FusedInput::External(0)],
                    name: "y".to_string(),
                },
            ],
            2,
        );
        let s = Shape::d1(4);
        assert_eq!(group.forward_launches(&[&s, &s], &s).len(), 1);
        assert_eq!(group.backward_launches(&[&s, &s], &s).len(), 1);
        assert_eq!(group.saved_bytes(&[&s, &s], &s), 16);
        assert_eq!(group.launches_saved(), 1);
        assert!(group.stash().inputs);
        assert!(!group.stash().output);
    }
}
