//! Fusion passes: LSTM-cell fusion and elementwise-chain fusion.
//!
//! Both passes share one greedy **single-escape group** formation: walking
//! live op nodes in descending id order, an unclaimed fusible node becomes
//! a group host, and the group repeatedly absorbs a producer `p` when `p`
//! is itself fusible, unprotected, unclaimed, and *every* live consumer of
//! `p` is already in the group — so the host's output is the only value
//! that escapes. The absorbed interiors keep their node definitions but
//! fall out of every dependency cone; the host is redefined as a
//! [`FusedGroup`] over the group's external inputs.
//!
//! **Bit-exactness admission.** Fusion moves the group's gradient
//! contributions to a shared external value `v` from each constituent's
//! schedule position to the host's, which can re-associate the float-add
//! accumulation of `dv`. An absorb is only admitted when, for every
//! external differentiable input `v` of the tentative group, one of these
//! holds:
//!
//! 1. every differentiable consumption of `v` is inside the group — the
//!    group accumulates them in descending original order, exactly the
//!    interpreter's association;
//! 2. `v` has at most two differentiable consumptions in total — two
//!    contributions are accumulated as one store plus one `axpy`, and IEEE
//!    float addition of two operands is commutative bitwise;
//! 3. every differentiable consumer of `v` is a single-input operator
//!    whose [`grad_col_span`](crate::Operator::grad_col_span) is `Some`,
//!    with pairwise-disjoint column ranges — the contributions scatter
//!    into disjoint columns padded with `+0.0`, so any association order
//!    produces identical bits (the gate-slice pattern that splits an LSTM
//!    pre-activation).
//!
//! Anything else is rejected and the producer stays unfused.

use super::fused::{FusedGroup, FusedInput, FusedStep};
use super::{Gir, Rewrite};
use crate::graph::{Graph, NodeId, NodeKind};
use crate::Result;
use echo_device::KernelCategory;
use echo_tensor::Shape;
use std::sync::Arc;

/// Fuses LSTM-style cell bodies: single-escape groups containing at least
/// two activation (sigmoid/tanh) constituents — the gate math between the
/// recurrent GEMMs. Returns the number of groups formed.
///
/// # Errors
///
/// Returns an error when a formed group fails to re-infer shapes — a
/// pass bug, never expected on well-formed graphs.
pub fn fuse_lstm_cells(gir: &mut Gir) -> Result<usize> {
    fuse(gir, "cell", |graph, members| {
        members
            .iter()
            .filter(|&&m| {
                matches!(
                    &graph.nodes()[m].kind,
                    NodeKind::Op { op, .. } if op.category() == KernelCategory::Activation
                )
            })
            .count()
            >= 2
    })
}

/// Fuses remaining elementwise chains: any single-escape group of two or
/// more fusible constituents. Runs after [`fuse_lstm_cells`], which has
/// already claimed the activation-heavy cell bodies. Returns the number
/// of groups formed.
///
/// # Errors
///
/// Returns an error when a formed group fails to re-infer shapes — a
/// pass bug, never expected on well-formed graphs.
pub fn fuse_elementwise_chains(gir: &mut Gir) -> Result<usize> {
    fuse(gir, "chain", |_, _| true)
}

/// Categories whose ops are candidates for fusion: cheap memory-bound
/// kernels where the launch overhead dominates.
fn fusible_category(c: KernelCategory) -> bool {
    matches!(
        c,
        KernelCategory::Elementwise | KernelCategory::Activation | KernelCategory::Transpose
    )
}

/// One differentiable consumption of a value: consumer node + input slot.
type Post = (NodeId, usize);

fn fuse(gir: &mut Gir, tag: &str, keep: impl Fn(&Graph, &[usize]) -> bool) -> Result<usize> {
    let graph = Arc::clone(gir.graph());
    let n = graph.len();
    let mask = gir.live_mask();

    // Differentiable consumptions of each value, over the live cone.
    let mut posts: Vec<Vec<Post>> = vec![Vec::new(); n];
    for node in graph.nodes() {
        if !mask[node.id.index()] {
            continue;
        }
        if let NodeKind::Op { op, inputs } = &node.kind {
            for (slot, inp) in inputs.iter().enumerate() {
                if op.input_differentiable(slot) {
                    posts[inp.index()].push((node.id, slot));
                }
            }
        }
    }

    // Fusibility per node: live op, fusible category, no operator-private
    // saved state (which excludes already-formed FusedGroups, whose
    // reserve space is non-empty).
    let fusible: Vec<bool> = graph
        .nodes()
        .iter()
        .map(|node| {
            if !mask[node.id.index()] {
                return false;
            }
            match &node.kind {
                NodeKind::Op { op, inputs } => {
                    if !fusible_category(op.category()) {
                        return false;
                    }
                    let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| gir.shape(i)).collect();
                    op.saved_bytes(&in_shapes, gir.shape(node.id)) == 0
                }
                _ => false,
            }
        })
        .collect();

    let protected = {
        let mut p = vec![false; n];
        for id in gir.protected() {
            p[id.index()] = true;
        }
        p
    };

    let mut claimed = vec![false; n];
    let mut rewrites: Vec<Rewrite> = Vec::new();

    for host in (0..n).rev() {
        if claimed[host] || !fusible[host] {
            continue;
        }
        let mut in_group = vec![false; n];
        in_group[host] = true;
        let mut members = vec![host];
        let mut rejected = vec![false; n];
        // Grow until fixpoint: absorb producers whose every live consumer
        // is already inside, re-checking gradient safety after each step.
        loop {
            let mut grew = false;
            let candidates: Vec<usize> = members
                .iter()
                .flat_map(|&m| graph.nodes()[m].inputs().iter().map(|i| i.index()))
                .collect();
            for p in candidates {
                if in_group[p] || rejected[p] || claimed[p] || !fusible[p] || protected[p] {
                    continue;
                }
                let escapes = graph
                    .consumers(NodeId::from_index(p))
                    .iter()
                    .any(|c| mask[c.index()] && !in_group[c.index()]);
                if escapes {
                    continue;
                }
                in_group[p] = true;
                members.push(p);
                if group_grads_bit_exact(&graph, &posts, &in_group, &members) {
                    grew = true;
                } else {
                    in_group[p] = false;
                    members.pop();
                    rejected[p] = true;
                }
            }
            if !grew {
                break;
            }
        }
        if members.len() < 2 || !keep(&graph, &members) {
            continue;
        }
        for &m in &members {
            claimed[m] = true;
        }
        rewrites.push(build_group(&graph, &mut members, host, tag));
    }

    let formed = rewrites.len();
    gir.apply_rewrites(rewrites)?;
    Ok(formed)
}

/// The admission rule from the module docs, checked for every external
/// differentiable input of the tentative group.
fn group_grads_bit_exact(
    graph: &Graph,
    posts: &[Vec<Post>],
    in_group: &[bool],
    members: &[usize],
) -> bool {
    let mut externals: Vec<usize> = members
        .iter()
        .flat_map(|&m| graph.nodes()[m].inputs().iter().map(|i| i.index()))
        .filter(|&v| !in_group[v])
        .collect();
    externals.sort_unstable();
    externals.dedup();
    externals
        .iter()
        .all(|&v| value_accumulation_safe(graph, &posts[v], in_group))
}

fn value_accumulation_safe(graph: &Graph, posts: &[Post], in_group: &[bool]) -> bool {
    let inside = posts.iter().filter(|(c, _)| in_group[c.index()]).count();
    if inside == 0 || inside == posts.len() {
        // Not differentiably consumed by the group, or consumed only by
        // it (rule 1): the accumulation association is unchanged.
        return true;
    }
    if posts.len() <= 2 {
        // Rule 2: two contributions commute bitwise.
        return true;
    }
    // Rule 3: disjoint column scatters.
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(posts.len());
    for (c, _) in posts {
        let node = &graph.nodes()[c.index()];
        let NodeKind::Op { op, inputs } = &node.kind else {
            return false;
        };
        if inputs.len() != 1 {
            return false;
        }
        let Some(span) = op.grad_col_span() else {
            return false;
        };
        spans.push(span);
    }
    spans.sort_unstable();
    spans.windows(2).all(|w| w[0].1 <= w[1].0)
}

/// Assembles the [`FusedGroup`] rewrite hosted at the group's escaping
/// node (always the member with the largest id, since every other member's
/// consumers lie inside the group).
fn build_group(graph: &Graph, members: &mut [usize], host: usize, tag: &str) -> Rewrite {
    members.sort_unstable();
    debug_assert_eq!(*members.last().expect("non-empty group"), host);
    let mut externals: Vec<NodeId> = members
        .iter()
        .flat_map(|&m| graph.nodes()[m].inputs().iter().copied())
        .filter(|i| !members.contains(&i.index()))
        .collect();
    externals.sort_unstable();
    externals.dedup();
    let step_of = |id: usize| members.iter().position(|&m| m == id);
    let steps: Vec<FusedStep> = members
        .iter()
        .map(|&m| {
            let node = &graph.nodes()[m];
            let NodeKind::Op { op, inputs } = &node.kind else {
                unreachable!("group members are op nodes");
            };
            FusedStep {
                op: Arc::clone(op),
                inputs: inputs
                    .iter()
                    .map(|i| match step_of(i.index()) {
                        Some(j) => FusedInput::Interior(j),
                        None => FusedInput::External(
                            externals.binary_search(i).expect("external listed"),
                        ),
                    })
                    .collect(),
                name: node.name.clone(),
            }
        })
        .collect();
    let n_ext = externals.len();
    Rewrite {
        id: NodeId::from_index(host),
        op: Arc::new(FusedGroup::new(format!("fused_{tag}_{host}"), steps, n_ext)),
        inputs: externals,
    }
}
