//! Layout selection over the GIR.
//!
//! Generalises the old single recurrent-FC binary layout choice: any
//! operator may advertise alternative implementations via
//! [`layout_variants`](crate::Operator::layout_variants) — bit-identical
//! numerics, different kernel launches (weight layouts, tiling schemes,
//! fused vs split gate GEMMs). The pass replays each candidate's forward
//! plus backward launches through a throwaway device simulator and keeps
//! the cheapest, so the choice is driven by the same cost model the
//! launch-level IR is scheduled against.

use super::{Gir, Rewrite};
use crate::graph::NodeKind;
use crate::op::{KernelLaunch, LaunchSpec, Operator};
use crate::Result;
use echo_device::{DeviceSim, DeviceSpec};
use echo_tensor::Shape;
use std::sync::Arc;

/// Replaces live operators with their cheapest advertised layout variant,
/// scored on the device simulator. Returns the number of swaps.
///
/// # Errors
///
/// Returns an error when a swapped variant fails to re-infer shapes —
/// a violation of the bit-identical-variants contract.
pub fn select_layouts(gir: &mut Gir) -> Result<usize> {
    let graph = Arc::clone(gir.graph());
    let mask = gir.live_mask();
    let mut rewrites: Vec<Rewrite> = Vec::new();
    for node in graph.nodes() {
        if !mask[node.id.index()] {
            continue;
        }
        let NodeKind::Op { op, inputs } = &node.kind else {
            continue;
        };
        let variants = op.layout_variants();
        if variants.is_empty() {
            continue;
        }
        let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| gir.shape(i)).collect();
        let out = gir.shape(node.id);
        let incumbent = score(op.as_ref(), &in_shapes, out);
        let best = variants
            .into_iter()
            .map(|v| (score(v.as_ref(), &in_shapes, out), v))
            .min_by_key(|(ns, _)| *ns);
        if let Some((ns, v)) = best {
            if ns < incumbent {
                rewrites.push(Rewrite {
                    id: node.id,
                    op: v,
                    inputs: inputs.clone(),
                });
            }
        }
    }
    let swapped = rewrites.len();
    gir.apply_rewrites(rewrites)?;
    Ok(swapped)
}

/// Simulated nanoseconds for one forward + backward execution of `op`.
fn score(op: &dyn Operator, inputs: &[&Shape], output: &Shape) -> u64 {
    let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
    let mut replay = |launches: Vec<KernelLaunch>| {
        for l in launches {
            match l.spec {
                LaunchSpec::Kernel(cost) => {
                    sim.launch(&l.name, l.category, cost);
                }
                LaunchSpec::Gemm(spec) => {
                    sim.launch_gemm(&l.name, &spec);
                }
            }
        }
    };
    replay(op.forward_launches(inputs, output));
    replay(op.backward_launches(inputs, output));
    sim.elapsed_ns()
}
