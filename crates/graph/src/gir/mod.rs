//! The graph-level IR (GIR) and its rewrite passes.
//!
//! Compilation runs as an explicit pass pipeline over two IR levels. The
//! **GIR** — a [`Graph`] annotated with an inferred shape per node and the
//! set of protected (externally observable) nodes — is where structural
//! optimisation happens: common-subexpression elimination, LSTM-cell and
//! elementwise-chain fusion, and layout selection are ordered rewrites,
//! each reporting what it changed as a [`PassTrace`]. The GIR then
//! **lowers** to the launch-level IR, the [`ExecPlan`](crate::ExecPlan)
//! tables (schedule, launch table, slot packing, wave tables), which the
//! executor interprets.
//!
//! Every rewrite here is **id-preserving**: the rewritten graph has the
//! same length and the same dense [`NodeId`]s as the original, so
//! bindings, parameters, stash policies and targets held by callers stay
//! valid across the whole pipeline. A fusion hosts its combined operator
//! at the group's single escaping node; the absorbed interior nodes keep
//! their original definitions but fall out of every target's dependency
//! cone (nothing consumes them), so neither executor path ever runs them.

pub mod cse;
pub mod fused;
pub mod fusion;
pub mod layout;
pub mod stage;

pub use cse::common_subexpr_elim;
pub use fused::FusedGroup;
pub use fusion::{fuse_elementwise_chains, fuse_lstm_cells};
pub use layout::select_layouts;
pub use stage::{partition_stages, StagePartition, StageSpec};

use crate::graph::{Graph, NodeId, NodeKind};
use crate::op::Operator;
use crate::{GraphError, Result};
use echo_tensor::Shape;
use std::collections::HashMap;
use std::sync::Arc;

/// One replacement a structural pass wants applied to the graph: node
/// `id` becomes an application of `op` over `inputs` (all of which must
/// have lower ids than `id`).
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// The node being redefined.
    pub id: NodeId,
    /// Its new operator.
    pub op: Arc<dyn Operator + Send + Sync>,
    /// Its new inputs.
    pub inputs: Vec<NodeId>,
}

/// What one pass did, with before/after metrics over the live cone —
/// the per-pass accounting entry of the pipeline report.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// Pass name (`"cse"`, `"fuse-lstm-cell"`, …).
    pub pass: String,
    /// Number of graph rewrites the pass applied (fused groups, merged
    /// duplicates, swapped layouts).
    pub rewrites: usize,
    /// Live op-node count before the pass.
    pub live_ops_before: usize,
    /// Live op-node count after the pass.
    pub live_ops_after: usize,
    /// Forward launch-table length over the live cone before the pass.
    pub fwd_launches_before: usize,
    /// Forward launch-table length over the live cone after the pass.
    pub fwd_launches_after: usize,
    /// Forward FLOPs over the live cone before the pass.
    pub fwd_flops_before: u64,
    /// Forward FLOPs over the live cone after the pass.
    pub fwd_flops_after: u64,
    /// Output bytes of live nodes before the pass.
    pub live_bytes_before: u64,
    /// Output bytes of live nodes after the pass.
    pub live_bytes_after: u64,
    /// Wall time the pass took, in microseconds.
    pub wall_us: f64,
    /// Whether the rewrite is bit-exact by construction. A pass that
    /// cannot guarantee bit-identical loss/grads (e.g. CSE merging on a
    /// gradient path) must flag itself here.
    pub bit_exact: bool,
    /// Whether the structural equivalence check between the pre- and
    /// post-pass GIR passed.
    pub equivalence_ok: bool,
}

/// The graph-level IR: a graph plus per-node inferred shapes and the
/// protected node set structural passes must never absorb.
#[derive(Debug, Clone)]
pub struct Gir {
    graph: Arc<Graph>,
    shapes: Vec<Shape>,
    protected: Vec<NodeId>,
}

impl Gir {
    /// Builds the GIR from a graph and the shapes of its inputs and
    /// parameters, running whole-graph shape inference.
    ///
    /// `protected` nodes (loss, logits, exported states) keep their
    /// identity and value through every pass.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingBinding`] for an input or parameter
    /// with no shape, or operator errors on inconsistent shapes.
    pub fn from_graph(
        graph: Arc<Graph>,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        protected: &[NodeId],
    ) -> Result<Gir> {
        let shapes = infer_all(&graph, binding_shapes, param_shapes)?;
        Ok(Gir {
            graph,
            shapes,
            protected: protected.to_vec(),
        })
    }

    /// The current (possibly rewritten) graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The inferred shape of `id`.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// Shapes of every node, densely indexed.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// The protected node set.
    pub fn protected(&self) -> &[NodeId] {
        &self.protected
    }

    /// `mask[i]` is true when node `i` lies in the dependency cone of at
    /// least one protected node — the nodes an execution actually runs.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.graph.len()];
        for &p in &self.protected {
            for id in self.graph.ancestors(p) {
                mask[id.index()] = true;
            }
        }
        mask
    }

    /// Number of live op nodes.
    pub fn live_ops(&self) -> usize {
        let mask = self.live_mask();
        self.graph
            .nodes()
            .iter()
            .filter(|n| mask[n.id.index()] && matches!(n.kind, NodeKind::Op { .. }))
            .count()
    }

    /// Forward launch-table length over the live cone: the number of
    /// kernels one forward execution of all protected targets launches.
    pub fn forward_launch_count(&self) -> usize {
        self.fold_live_launches(|launches| launches.len() as u64) as usize
    }

    /// Forward FLOPs over the live cone.
    pub fn forward_flops(&self) -> u64 {
        self.fold_live_launches(crate::plan::launch_flops)
    }

    /// Total output bytes of live nodes.
    pub fn live_bytes(&self) -> u64 {
        let mask = self.live_mask();
        self.shapes
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask[i])
            .map(|(_, s)| s.num_bytes() as u64)
            .sum()
    }

    fn fold_live_launches(&self, f: impl Fn(&[crate::op::KernelLaunch]) -> u64) -> u64 {
        let mask = self.live_mask();
        let mut total: u64 = 0;
        for node in self.graph.nodes() {
            if !mask[node.id.index()] {
                continue;
            }
            if let NodeKind::Op { op, inputs } = &node.kind {
                let in_shapes: Vec<&Shape> =
                    inputs.iter().map(|&i| &self.shapes[i.index()]).collect();
                let launches = op.forward_launches(&in_shapes, &self.shapes[node.id.index()]);
                total += f(&launches);
            }
        }
        total
    }

    /// Applies a batch of node redefinitions, rebuilding the graph with
    /// identical ids and re-running shape inference (which doubles as a
    /// well-formedness check of the rewrite).
    ///
    /// # Errors
    ///
    /// Returns an error when a rewritten node's shape no longer infers —
    /// the rewrite is rejected and the GIR is left unchanged.
    pub fn apply_rewrites(&mut self, rewrites: Vec<Rewrite>) -> Result<()> {
        if rewrites.is_empty() {
            return Ok(());
        }
        let mut by_id: HashMap<usize, Rewrite> = HashMap::new();
        for r in rewrites {
            by_id.insert(r.id.index(), r);
        }
        let mut rebuilt = Graph::new();
        for node in self.graph.nodes() {
            match (&node.kind, by_id.remove(&node.id.index())) {
                (NodeKind::Input, None) => {
                    rebuilt.input(node.name.clone(), node.layer);
                }
                (NodeKind::Param, None) => {
                    rebuilt.param(node.name.clone(), node.layer);
                }
                (NodeKind::Op { op, inputs }, None) => {
                    rebuilt.apply(node.name.clone(), Arc::clone(op), inputs, node.layer);
                }
                (NodeKind::Op { .. }, Some(r)) => {
                    rebuilt.apply(node.name.clone(), r.op, &r.inputs, node.layer);
                }
                (_, Some(r)) => {
                    return Err(GraphError::Operator {
                        op: "gir".to_string(),
                        message: format!("rewrite targets non-op node {}", r.id),
                    });
                }
            }
        }
        // Re-infer from the rewritten definitions; input/param shapes are
        // positions in the existing table (ids are preserved).
        let mut shapes: Vec<Shape> = Vec::with_capacity(rebuilt.len());
        for node in rebuilt.nodes() {
            let shape = match &node.kind {
                NodeKind::Input | NodeKind::Param => self.shapes[node.id.index()].clone(),
                NodeKind::Op { op, inputs } => {
                    let in_shapes: Vec<&Shape> =
                        inputs.iter().map(|&i| &shapes[i.index()]).collect();
                    op.infer_shape(&in_shapes)?
                }
            };
            shapes.push(shape);
        }
        self.graph = Arc::new(rebuilt);
        self.shapes = shapes;
        Ok(())
    }

    /// Pretty-prints the IR, one node per line — what `ECHO_DUMP_IR`
    /// emits before/after each pass. Dead (out-of-cone) nodes are marked.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mask = self.live_mask();
        let mut out = String::new();
        for node in self.graph.nodes() {
            let shape = &self.shapes[node.id.index()];
            let _ = match &node.kind {
                NodeKind::Input => writeln!(out, "  {} = input {:?} : {shape}", node.id, node.name),
                NodeKind::Param => writeln!(out, "  {} = param {:?} : {shape}", node.id, node.name),
                NodeKind::Op { op, inputs } => {
                    let args: Vec<String> = inputs.iter().map(|i| i.to_string()).collect();
                    let dead = if mask[node.id.index()] {
                        ""
                    } else {
                        "  // dead"
                    };
                    let prot = if self.protected.contains(&node.id) {
                        "  // protected"
                    } else {
                        ""
                    };
                    writeln!(
                        out,
                        "  {} = {}({}) : {shape}{dead}{prot}",
                        node.id,
                        op.name(),
                        args.join(", "),
                    )
                }
            };
        }
        out
    }
}

/// Structural equivalence check between two pipeline stages: the rewritten
/// GIR must preserve the external interface of the original — same node
/// count and ids, identical input/parameter nodes, and identical shapes
/// for every protected node. Passes that satisfy this plus their own
/// bit-exactness argument leave every observable bit unchanged.
///
/// # Errors
///
/// Returns [`GraphError::Operator`] describing the first violation.
pub fn check_equivalence(before: &Gir, after: &Gir) -> Result<()> {
    let fail = |message: String| {
        Err(GraphError::Operator {
            op: "gir-equivalence".to_string(),
            message,
        })
    };
    if before.graph.len() != after.graph.len() {
        return fail(format!(
            "node count changed: {} -> {}",
            before.graph.len(),
            after.graph.len()
        ));
    }
    for (b, a) in before.graph.nodes().iter().zip(after.graph.nodes()) {
        if b.name != a.name {
            return fail(format!(
                "node {} renamed {:?} -> {:?}",
                b.id, b.name, a.name
            ));
        }
        let same_kind = matches!(
            (&b.kind, &a.kind),
            (NodeKind::Input, NodeKind::Input)
                | (NodeKind::Param, NodeKind::Param)
                | (NodeKind::Op { .. }, NodeKind::Op { .. })
        );
        if !same_kind {
            return fail(format!("node {} changed kind", b.id));
        }
        if let NodeKind::Op { inputs, .. } = &a.kind {
            if inputs.iter().any(|i| *i >= a.id) {
                return fail(format!("node {} breaks topological order", a.id));
            }
        }
    }
    if before.protected != after.protected {
        return fail("protected set changed".to_string());
    }
    for &p in &before.protected {
        if before.shape(p) != after.shape(p) {
            return fail(format!(
                "protected node {p} changed shape: {} -> {}",
                before.shape(p),
                after.shape(p)
            ));
        }
    }
    Ok(())
}

fn infer_all(
    graph: &Graph,
    binding_shapes: &HashMap<NodeId, Shape>,
    param_shapes: &HashMap<NodeId, Shape>,
) -> Result<Vec<Shape>> {
    let mut shapes: Vec<Shape> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let shape =
            match &node.kind {
                NodeKind::Input => binding_shapes.get(&node.id).cloned().ok_or_else(|| {
                    GraphError::MissingBinding {
                        name: node.name.clone(),
                    }
                })?,
                NodeKind::Param => param_shapes.get(&node.id).cloned().ok_or_else(|| {
                    GraphError::MissingBinding {
                        name: node.name.clone(),
                    }
                })?,
                NodeKind::Op { op, inputs } => {
                    let in_shapes: Vec<&Shape> =
                        inputs.iter().map(|&i| &shapes[i.index()]).collect();
                    op.infer_shape(&in_shapes)?
                }
            };
        shapes.push(shape);
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_memory::LayerKind;
    use echo_tensor::Tensor;

    // A minimal elementwise op for degenerate-graph tests.
    #[derive(Debug)]
    struct Double;
    impl Operator for Double {
        fn name(&self) -> &str {
            "double"
        }
        fn category(&self) -> echo_device::KernelCategory {
            echo_device::KernelCategory::Elementwise
        }
        fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
            Ok(inputs[0].clone())
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
            let mut y = inputs[0].clone();
            for v in y.data_mut() {
                *v *= 2.0;
            }
            Ok((y, Vec::new()))
        }
        fn backward(
            &self,
            _inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> Result<Vec<Option<Tensor>>> {
            let mut dx = dy.clone();
            for v in dx.data_mut() {
                *v *= 2.0;
            }
            Ok(vec![Some(dx)])
        }
        fn stash(&self) -> crate::StashNeeds {
            crate::StashNeeds::NONE
        }
        fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<crate::KernelLaunch> {
            vec![crate::KernelLaunch::kernel(
                "double",
                echo_device::KernelCategory::Elementwise,
                echo_device::KernelCost::elementwise(o.num_elements(), 2),
            )]
        }
        fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<crate::KernelLaunch> {
            self.forward_launches(_i, o)
        }
    }

    fn single_op_gir() -> Gir {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let y = g.apply("y", Arc::new(Double), &[x], LayerKind::Other);
        let mut bindings = HashMap::new();
        bindings.insert(x, Shape::d2(2, 2));
        Gir::from_graph(Arc::new(g), &bindings, &HashMap::new(), &[y]).unwrap()
    }

    #[test]
    fn degenerate_single_op_graph_passes_through_untouched() {
        // Mirrors `fell_back_to_heuristic` in the stash search: a graph
        // with nothing to optimise must flow through fusion and CSE as
        // the identity, not an error.
        let mut gir = single_op_gir();
        let before = gir.clone();
        assert_eq!(fuse_lstm_cells(&mut gir).unwrap(), 0);
        assert_eq!(fuse_elementwise_chains(&mut gir).unwrap(), 0);
        assert_eq!(common_subexpr_elim(&mut gir, false).unwrap(), 0);
        assert_eq!(select_layouts(&mut gir).unwrap(), 0);
        check_equivalence(&before, &gir).unwrap();
        assert_eq!(gir.forward_launch_count(), 1);
        assert!(Arc::ptr_eq(before.graph(), gir.graph()));
    }

    #[test]
    fn degenerate_zero_interior_graph_passes_through_untouched() {
        // Inputs and params only — no op interior at all.
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let _w = g.param("w", LayerKind::Other);
        let mut bindings = HashMap::new();
        bindings.insert(x, Shape::d1(3));
        let mut params = HashMap::new();
        params.insert(_w, Shape::d1(3));
        let mut gir = Gir::from_graph(Arc::new(g), &bindings, &params, &[x]).unwrap();
        let before = gir.clone();
        assert_eq!(fuse_lstm_cells(&mut gir).unwrap(), 0);
        assert_eq!(fuse_elementwise_chains(&mut gir).unwrap(), 0);
        assert_eq!(common_subexpr_elim(&mut gir, false).unwrap(), 0);
        check_equivalence(&before, &gir).unwrap();
        assert_eq!(gir.forward_launch_count(), 0);
        assert_eq!(gir.live_ops(), 0);
    }

    #[test]
    fn dump_lists_every_node_and_marks_dead() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let y = g.apply("y", Arc::new(Double), &[x], LayerKind::Other);
        let _z = g.apply("z", Arc::new(Double), &[x], LayerKind::Other);
        let mut bindings = HashMap::new();
        bindings.insert(x, Shape::d2(2, 2));
        let gir = Gir::from_graph(Arc::new(g), &bindings, &HashMap::new(), &[y]).unwrap();
        let text = gir.dump();
        assert!(text.contains("input \"x\""));
        assert!(text.contains("double(%0)"));
        assert!(text.contains("// dead"), "{text}");
        assert!(text.contains("// protected"), "{text}");
    }

    #[test]
    fn equivalence_check_rejects_shape_and_interface_changes() {
        let gir = single_op_gir();
        // Different protected shape.
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let y = g.apply("y", Arc::new(Double), &[x], LayerKind::Other);
        let mut bindings = HashMap::new();
        bindings.insert(x, Shape::d2(4, 4));
        let other = Gir::from_graph(Arc::new(g), &bindings, &HashMap::new(), &[y]).unwrap();
        assert!(check_equivalence(&gir, &other).is_err());
        // Different node count.
        let mut g2 = Graph::new();
        let x2 = g2.input("x", LayerKind::Other);
        let mut b2 = HashMap::new();
        b2.insert(x2, Shape::d2(2, 2));
        let shorter = Gir::from_graph(Arc::new(g2), &b2, &HashMap::new(), &[x2]).unwrap();
        assert!(check_equivalence(&gir, &shorter).is_err());
    }

    #[test]
    fn apply_rewrites_preserves_ids_and_reinfer_shapes() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let a = g.apply("a", Arc::new(Double), &[x], LayerKind::Other);
        let b = g.apply("b", Arc::new(Double), &[a], LayerKind::Other);
        let mut bindings = HashMap::new();
        bindings.insert(x, Shape::d2(2, 3));
        let mut gir = Gir::from_graph(Arc::new(g), &bindings, &HashMap::new(), &[b]).unwrap();
        gir.apply_rewrites(vec![Rewrite {
            id: b,
            op: Arc::new(Double),
            inputs: vec![x],
        }])
        .unwrap();
        assert_eq!(gir.graph().len(), 3);
        assert_eq!(gir.graph().nodes()[b.index()].inputs(), &[x]);
        assert_eq!(gir.shape(b), &Shape::d2(2, 3));
        // `a` is now dead: out of b's cone.
        assert_eq!(gir.live_ops(), 1);
    }
}
