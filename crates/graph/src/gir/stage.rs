//! GPipe-style stage partitioning over the GIR.
//!
//! [`partition_stages`] cuts the live cone of a [`Gir`] into `P`
//! contiguous op-index ranges ("stages") so a pipelined trainer can run
//! each range on its own worker with activations flowing forward and
//! activation-gradients flowing backward across the cuts. Cuts are only
//! placed at *parameter-respecting* boundaries: every live parameter's
//! live consumers must fall entirely inside one stage, so each stage owns
//! a disjoint subset of the parameters and gradient all-reduce never
//! crosses a cut.
//!
//! Because the original insertion order is topological and stages are
//! contiguous index ranges, every cross-stage edge points forward: all
//! consumers of a stage-`s` node that live downstream have strictly
//! larger op indices. That is what lets the pipelined backward seed each
//! stage with the downstream partial gradient *first* and then accumulate
//! in-stage contributions in descending index order — bit-identical
//! association to the serial backward walk.

use super::Gir;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::policy::{SegmentId, StashPlan, StashPolicy};
use crate::{GraphError, Result};
use echo_tensor::Shape;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

fn stage_err(message: String) -> GraphError {
    GraphError::Operator {
        op: "stage-partition".to_string(),
        message,
    }
}

/// One pipeline stage: a self-contained local graph plus the maps tying
/// it back to the original graph.
///
/// The local graph is built by walking the original nodes in ascending id
/// order and emitting, for this stage: received interface activations and
/// directly-consumed batch inputs as local `Input` nodes, owned
/// parameters as local `Param` nodes, and owned ops with remapped inputs.
/// Local ids are therefore ascending in original id, so a descending
/// local backward walk visits nodes in descending *original* order.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage index in `0..P`.
    pub index: usize,
    /// The stage-local graph.
    pub graph: Arc<Graph>,
    /// Inferred shape per local node, densely indexed by local id.
    pub shapes: Vec<Shape>,
    /// Original graph ids of batch `Input` nodes this stage consumes
    /// directly (ascending). The trainer binds these from the batch.
    pub batch_inputs: Vec<NodeId>,
    /// Original ids of parameters owned by this stage (ascending).
    pub params: Vec<NodeId>,
    /// Original ids of activations received from the previous stage
    /// (ascending): values produced upstream that this stage (or a later
    /// one, via pass-through) still needs.
    pub recv_interface: Vec<NodeId>,
    /// Original ids of activations sent to the next stage (ascending).
    /// Equals the next stage's `recv_interface`.
    pub send_interface: Vec<NodeId>,
    /// Protected nodes owned by this stage (ascending original ids).
    pub targets: Vec<NodeId>,
    /// Local id → original id.
    to_orig: Vec<NodeId>,
    /// Original id → local id.
    to_local: HashMap<NodeId, NodeId>,
}

impl StageSpec {
    /// The local id of original node `orig`, if this stage carries it.
    pub fn to_local(&self, orig: NodeId) -> Option<NodeId> {
        self.to_local.get(&orig).copied()
    }

    /// The original id of local node `local`.
    pub fn to_orig(&self, local: NodeId) -> NodeId {
        self.to_orig[local.index()]
    }

    /// All original ids carried by this stage, ascending by local id.
    pub fn orig_ids(&self) -> &[NodeId] {
        &self.to_orig
    }

    /// `send_interface` mapped to local ids.
    pub fn local_send(&self) -> Vec<NodeId> {
        self.send_interface
            .iter()
            .map(|&id| self.to_local[&id])
            .collect()
    }

    /// `recv_interface` mapped to local ids.
    pub fn local_recv(&self) -> Vec<NodeId> {
        self.recv_interface
            .iter()
            .map(|&id| self.to_local[&id])
            .collect()
    }

    /// `targets` mapped to local ids.
    pub fn local_targets(&self) -> Vec<NodeId> {
        self.targets.iter().map(|&id| self.to_local[&id]).collect()
    }

    /// Owned op count (local ops, excluding interface inputs).
    pub fn owned_ops(&self) -> usize {
        self.graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { .. }))
            .count()
    }
}

/// The result of cutting a graph into pipeline stages.
#[derive(Debug, Clone)]
pub struct StagePartition {
    specs: Vec<StageSpec>,
    /// Original op index → owning stage (live ops only).
    stage_of: Vec<Option<usize>>,
    /// Raw original index of the first op of stages `1..P`.
    boundaries: Vec<usize>,
    orig: Arc<Graph>,
    orig_shapes: Vec<Shape>,
    protected: Vec<NodeId>,
    live: Vec<bool>,
}

impl StagePartition {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.specs.len()
    }

    /// All stage specs, in pipeline order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.specs
    }

    /// One stage spec.
    pub fn stage(&self, s: usize) -> &StageSpec {
        &self.specs[s]
    }

    /// The stage owning original node `id` (ops only; `None` for
    /// inputs, params and dead nodes).
    pub fn stage_of(&self, id: NodeId) -> Option<usize> {
        self.stage_of[id.index()]
    }

    /// Raw original indices of the chosen cut points (first op of each
    /// stage after the first).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Activation bytes crossing each cut: entry `s` is the total output
    /// bytes of stage `s`'s send interface.
    pub fn cut_bytes(&self) -> Vec<u64> {
        self.specs
            .iter()
            .take(self.specs.len().saturating_sub(1))
            .map(|sp| {
                sp.send_interface
                    .iter()
                    .map(|&id| self.orig_shapes[id.index()].num_bytes() as u64)
                    .sum()
            })
            .collect()
    }

    /// Total live op count across all stages.
    pub fn live_op_count(&self) -> usize {
        self.stage_of.iter().filter(|s| s.is_some()).count()
    }

    /// Rewrites `plan` (over original ids) into the *normalized* plan the
    /// pipelined execution actually runs: send-interface, protected and
    /// dead recompute nodes are forced to `Stash` (their values must
    /// survive the cut or never run at all), and every surviving segment
    /// is split per stage under a fresh deterministic id so no segment
    /// straddles a cut. A serial executor running the normalized plan
    /// produces bit-identical loss/grads to the original plan (stashing
    /// more never changes values) and the *same replay counts* as the
    /// pipelined run — the determinism suite's replay contract.
    pub fn normalized_plan(&self, plan: &StashPlan) -> StashPlan {
        let send_any: BTreeSet<NodeId> = self
            .specs
            .iter()
            .flat_map(|sp| sp.send_interface.iter().copied())
            .collect();
        let mut seg_map: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // Pools are re-keyed per (original pool, stage): workspace sharing
        // survives within a stage (the paper's identical-segment pooling),
        // but the per-stage pieces of a split segment get distinct pools —
        // exactly the physical situation in the pipeline, where each stage
        // worker owns its own executor and pools. Keeping the original
        // pool across a cut would let a wavefront backward hold two
        // concurrent leases on one exclusive workspace.
        let mut pool_map: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut next = 0usize;
        let mut next_pool = 0usize;
        let mut out = StashPlan::stash_all();
        for node in self.orig.nodes() {
            let id = node.id;
            if let StashPolicy::Recompute(seg) = plan.policy(id) {
                let stage = self.stage_of[id.index()];
                let keep = match stage {
                    Some(_) => !send_any.contains(&id) && !self.protected.contains(&id),
                    None => false,
                };
                match (keep, stage) {
                    (true, Some(s)) => {
                        let nid = *seg_map.entry((seg.id, s)).or_insert_with(|| {
                            let v = next;
                            next += 1;
                            v
                        });
                        let pool = *pool_map.entry((seg.pool, s)).or_insert_with(|| {
                            let v = next_pool;
                            next_pool += 1;
                            v
                        });
                        out.set(id, StashPolicy::Recompute(SegmentId { id: nid, pool }));
                    }
                    _ => out.set(id, StashPolicy::Stash),
                }
            }
        }
        out
    }

    /// Per-stage stash plans over *local* ids, derived from
    /// [`normalized_plan`](Self::normalized_plan). Interface nodes are
    /// guaranteed `Stash`; each stage's plan only names segments whose
    /// nodes it owns.
    pub fn stage_plans(&self, plan: &StashPlan) -> Vec<StashPlan> {
        let norm = self.normalized_plan(plan);
        self.specs
            .iter()
            .map(|sp| {
                let mut p = StashPlan::stash_all();
                for (local_idx, &orig) in sp.to_orig.iter().enumerate() {
                    if self.stage_of[orig.index()] != Some(sp.index) {
                        continue;
                    }
                    if let StashPolicy::Recompute(seg) = norm.policy(orig) {
                        p.set(NodeId::from_index(local_idx), StashPolicy::Recompute(seg));
                    }
                }
                p
            })
            .collect()
    }

    /// Structural self-check: every live op owned by exactly one stage,
    /// parameters uniquely owned, protected shapes preserved, and the
    /// cross-stage edge set fully represented by interface chains
    /// (`recv(s+1) == send(s)`, with pass-through for edges skipping
    /// stages). The partition proptests drive this.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        let p = self.specs.len();
        // Ops partition exactly.
        let owned: usize = self.specs.iter().map(StageSpec::owned_ops).sum();
        let live_ops = self
            .orig
            .nodes()
            .iter()
            .filter(|n| self.live[n.id.index()] && matches!(n.kind, NodeKind::Op { .. }))
            .count();
        if owned != live_ops {
            return Err(stage_err(format!(
                "stages own {owned} ops, live cone has {live_ops}"
            )));
        }
        // Params uniquely owned.
        let mut param_owner: HashMap<NodeId, usize> = HashMap::new();
        for sp in &self.specs {
            for &pid in &sp.params {
                if let Some(prev) = param_owner.insert(pid, sp.index) {
                    return Err(stage_err(format!(
                        "param {pid} owned by stages {prev} and {}",
                        sp.index
                    )));
                }
            }
        }
        // Protected shapes preserved in their owning stage.
        for &t in &self.protected {
            let Some(s) = self.stage_of[t.index()] else {
                return Err(stage_err(format!("protected node {t} not owned")));
            };
            let sp = &self.specs[s];
            let local = sp
                .to_local(t)
                .ok_or_else(|| stage_err(format!("protected node {t} missing from stage {s}")))?;
            if sp.shapes[local.index()] != self.orig_shapes[t.index()] {
                return Err(stage_err(format!(
                    "protected node {t} shape changed across partition"
                )));
            }
        }
        // Interface chains cover the cross-stage edge set.
        for node in self.orig.nodes() {
            let Some(su) = self.stage_of[node.id.index()] else {
                continue;
            };
            for &c in self.orig.consumers(node.id) {
                let Some(sc) = self.stage_of[c.index()] else {
                    continue;
                };
                if sc <= su {
                    continue;
                }
                for t in su + 1..=sc {
                    if self.specs[t]
                        .recv_interface
                        .binary_search(&node.id)
                        .is_err()
                    {
                        return Err(stage_err(format!(
                            "edge {} -> {c} crosses stages {su}->{sc} but {} not in recv({t})",
                            node.id, node.id
                        )));
                    }
                }
            }
        }
        // recv(s+1) == send(s).
        for s in 0..p.saturating_sub(1) {
            if self.specs[s].send_interface != self.specs[s + 1].recv_interface {
                return Err(stage_err(format!(
                    "send({s}) != recv({}) interface mismatch",
                    s + 1
                )));
            }
        }
        if let Some(last) = self.specs.last() {
            if !last.send_interface.is_empty() {
                return Err(stage_err("last stage has a send interface".to_string()));
            }
        }
        Ok(())
    }
}

/// Cuts the live cone of `gir` into `stages` contiguous, load-balanced
/// stages at parameter-respecting boundaries.
///
/// Per-op weight is the forward FLOP count of the op's kernel launches
/// (minimum 1), and boundaries are chosen greedily: the `k`-th cut is the
/// valid candidate whose cumulative weight is closest to `k/P` of the
/// total, subject to leaving enough candidates for the remaining cuts.
///
/// # Errors
///
/// Fails when the live cone has fewer ops than stages or too few valid
/// (parameter-respecting) cut points — e.g. a fused single-op LSTM stack
/// cannot be pipelined.
pub fn partition_stages(gir: &Gir, stages: usize) -> Result<StagePartition> {
    if stages == 0 {
        return Err(stage_err("at least one stage required".to_string()));
    }
    let graph = Arc::clone(gir.graph());
    let live = gir.live_mask();
    let live_ops: Vec<usize> = graph
        .nodes()
        .iter()
        .filter(|n| live[n.id.index()] && matches!(n.kind, NodeKind::Op { .. }))
        .map(|n| n.id.index())
        .collect();
    if live_ops.len() < stages {
        return Err(stage_err(format!(
            "{} live ops cannot fill {stages} stages",
            live_ops.len()
        )));
    }

    // Live-consumer span of every live parameter: a cut strictly inside a
    // span would split the parameter's gradient across stages.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for node in graph.nodes() {
        if !live[node.id.index()] || !matches!(node.kind, NodeKind::Param) {
            continue;
        }
        let cons: Vec<usize> = graph
            .consumers(node.id)
            .iter()
            .filter(|c| live[c.index()])
            .map(|c| c.index())
            .collect();
        if let (Some(&mn), Some(&mx)) = (cons.iter().min(), cons.iter().max()) {
            spans.push((mn, mx));
        }
    }

    // Per-op forward FLOPs as the balance weight.
    let weights: Vec<u64> = live_ops
        .iter()
        .map(|&idx| {
            let node = &graph.nodes()[idx];
            match &node.kind {
                NodeKind::Op { op, inputs } => {
                    let in_shapes: Vec<&Shape> = inputs.iter().map(|&i| gir.shape(i)).collect();
                    let launches = op.forward_launches(&in_shapes, gir.shape(node.id));
                    crate::plan::launch_flops(&launches).max(1)
                }
                _ => 1,
            }
        })
        .collect();
    let mut cum: Vec<u64> = Vec::with_capacity(weights.len() + 1);
    cum.push(0);
    for &w in &weights {
        cum.push(cum.last().unwrap() + w);
    }
    let total = *cum.last().unwrap();

    // Candidate cuts: positions k in live-op space whose raw boundary
    // (first op of the next stage) splits no parameter span.
    let candidates: Vec<usize> = (1..live_ops.len())
        .filter(|&k| {
            let b = live_ops[k];
            !spans.iter().any(|&(mn, mx)| mn < b && b <= mx)
        })
        .collect();
    if candidates.len() < stages - 1 {
        return Err(stage_err(format!(
            "only {} valid cut points for {} cuts (parameter spans block the rest)",
            candidates.len(),
            stages - 1
        )));
    }

    // Greedy balanced selection inside the feasibility window.
    let mut chosen: Vec<usize> = Vec::with_capacity(stages - 1);
    let mut lo = 0usize;
    for j in 1..stages {
        let target = total * j as u64 / stages as u64;
        let hi = candidates.len() - (stages - 1 - j);
        let (pos, _) = candidates[lo..hi]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &k)| cum[k].abs_diff(target))
            .expect("window non-empty by candidate-count check");
        chosen.push(candidates[lo + pos]);
        lo += pos + 1;
    }

    // Stage assignment per live op, then per raw index.
    let mut stage_of: Vec<Option<usize>> = vec![None; graph.len()];
    let mut s = 0usize;
    for (pos, &raw) in live_ops.iter().enumerate() {
        while s < chosen.len() && pos >= chosen[s] {
            s += 1;
        }
        stage_of[raw] = Some(s);
    }
    let boundaries: Vec<usize> = chosen.iter().map(|&k| live_ops[k]).collect();

    // Interface sets: recv(s) = live ops produced before stage s still
    // needed at or after it.
    let mut recv: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); stages];
    for node in graph.nodes() {
        let Some(su) = stage_of[node.id.index()] else {
            continue;
        };
        let max_cons = graph
            .consumers(node.id)
            .iter()
            .filter_map(|c| stage_of[c.index()])
            .max();
        if let Some(mc) = max_cons {
            for set in recv.iter_mut().take(mc + 1).skip(su + 1) {
                set.insert(node.id);
            }
        }
    }

    // Build stage-local graphs.
    let mut specs: Vec<StageSpec> = Vec::with_capacity(stages);
    for s in 0..stages {
        let mut g = Graph::new();
        let mut to_orig: Vec<NodeId> = Vec::new();
        let mut to_local: HashMap<NodeId, NodeId> = HashMap::new();
        let mut shapes: Vec<Shape> = Vec::new();
        let mut batch_inputs: Vec<NodeId> = Vec::new();
        let mut params: Vec<NodeId> = Vec::new();
        let mut targets: Vec<NodeId> = Vec::new();
        for node in graph.nodes() {
            let idx = node.id.index();
            let local = if recv[s].contains(&node.id) {
                g.input(node.name.clone(), node.layer)
            } else {
                match &node.kind {
                    NodeKind::Input
                        if live[idx]
                            && graph
                                .consumers(node.id)
                                .iter()
                                .any(|c| stage_of[c.index()] == Some(s)) =>
                    {
                        batch_inputs.push(node.id);
                        g.input(node.name.clone(), node.layer)
                    }
                    NodeKind::Param
                        if live[idx]
                            && graph
                                .consumers(node.id)
                                .iter()
                                .any(|c| stage_of[c.index()] == Some(s)) =>
                    {
                        params.push(node.id);
                        g.param(node.name.clone(), node.layer)
                    }
                    NodeKind::Op { op, inputs } if stage_of[idx] == Some(s) => {
                        let linputs: Vec<NodeId> = inputs
                            .iter()
                            .map(|i| {
                                to_local.get(i).copied().ok_or_else(|| {
                                    stage_err(format!(
                                        "stage {s} op {} consumes unmapped node {i}",
                                        node.id
                                    ))
                                })
                            })
                            .collect::<Result<_>>()?;
                        g.apply(node.name.clone(), Arc::clone(op), &linputs, node.layer)
                    }
                    _ => continue,
                }
            };
            if gir.protected().contains(&node.id) && stage_of[idx] == Some(s) {
                targets.push(node.id);
            }
            to_local.insert(node.id, local);
            to_orig.push(node.id);
            shapes.push(gir.shape(node.id).clone());
        }
        let send_interface: Vec<NodeId> = if s + 1 < stages {
            recv[s + 1].iter().copied().collect()
        } else {
            Vec::new()
        };
        specs.push(StageSpec {
            index: s,
            graph: Arc::new(g),
            shapes,
            batch_inputs,
            params,
            recv_interface: recv[s].iter().copied().collect(),
            send_interface,
            targets,
            to_orig,
            to_local,
        });
    }

    Ok(StagePartition {
        specs,
        stage_of,
        boundaries,
        orig: graph,
        orig_shapes: gir.shapes().to_vec(),
        protected: gir.protected().to_vec(),
        live,
    })
}
