//! Finite-difference gradient checking for whole graphs.
//!
//! Used by every operator's integration tests: build a small graph ending
//! in a scalar loss, and compare the executor's analytic parameter
//! gradients against central finite differences.

use crate::exec::{ExecOptions, Executor};
use crate::graph::NodeId;
use crate::Result;
use echo_tensor::Tensor;
use std::collections::HashMap;

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// The parameter checked.
    pub param: NodeId,
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_err: f64,
    /// Number of elements checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed under the given tolerance.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Compares the executor's analytic gradient for `param` against central
/// finite differences of the loss, checking up to `max_elems` elements
/// (spread evenly through the parameter).
///
/// # Errors
///
/// Propagates execution errors.
///
/// # Panics
///
/// Panics if `param` is not a bound parameter of `exec`.
pub fn check_param_grad(
    exec: &mut Executor,
    bindings: &HashMap<NodeId, Tensor>,
    loss: NodeId,
    param: NodeId,
    eps: f32,
    max_elems: usize,
) -> Result<GradCheckReport> {
    let opts = ExecOptions::default();
    exec.train_step(bindings, loss, opts, None)?;
    let analytic = exec
        .grad(param)
        .expect("param must be bound with a gradient buffer")
        .clone();
    let n = analytic.len();
    let stride = (n / max_elems.max(1)).max(1);

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;
    for i in (0..n).step_by(stride) {
        let original = exec.param(param).expect("bound param").data()[i];

        exec.param_mut(param).expect("bound param").data_mut()[i] = original + eps;
        let lp = exec
            .train_step(bindings, loss, opts, None)?
            .loss
            .expect("numeric loss");
        exec.param_mut(param).expect("bound param").data_mut()[i] = original - eps;
        let lm = exec
            .train_step(bindings, loss, opts, None)?
            .loss
            .expect("numeric loss");
        exec.param_mut(param).expect("bound param").data_mut()[i] = original;

        let fd = f64::from(lp - lm) / (2.0 * f64::from(eps));
        let an = f64::from(analytic.data()[i]);
        let abs = (fd - an).abs();
        let rel = abs / fd.abs().max(an.abs()).max(1e-4);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    }
    Ok(GradCheckReport {
        param,
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    })
}
