//! The static dataflow graph.

use crate::op::Operator;
use crate::{GraphError, Result};
use echo_memory::LayerKind;
use std::fmt;
use std::sync::Arc;

/// Identifier of a node within its [`Graph`].
///
/// Node ids are dense indices in insertion (and therefore topological)
/// order: the builder only lets a node consume already-created nodes, so
/// `id_a < id_b` implies `a` cannot depend on `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `NodeId` from a dense index previously obtained via
    /// [`NodeId::index`] (for analysis tables indexed by node).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A value bound per execution (data batches, target ids, …).
    Input,
    /// A trainable parameter, bound once and updated by the optimizer.
    Param,
    /// An operator application.
    Op {
        /// The operator.
        op: Arc<dyn Operator + Send + Sync>,
        /// Ids of the nodes whose outputs this op consumes.
        inputs: Vec<NodeId>,
    },
}

/// One node of the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Human-readable name (unique within the graph).
    pub name: String,
    /// Input / parameter / operator.
    pub kind: NodeKind,
    /// Which model layer this node belongs to, for memory and trace tagging.
    pub layer: LayerKind,
}

impl Node {
    /// Input node ids (empty for inputs/params).
    pub fn inputs(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Op { inputs, .. } => inputs,
            _ => &[],
        }
    }

    /// The operator, if this is an op node.
    pub fn op(&self) -> Option<&(dyn Operator + Send + Sync)> {
        match &self.kind {
            NodeKind::Op { op, .. } => Some(op.as_ref()),
            _ => None,
        }
    }
}

/// A static, single-assignment dataflow graph.
///
/// Build it once per model configuration; the `Executor` then runs it any
/// number of times. Node insertion order is the topological order.
///
/// # Example
///
/// ```
/// use echo_graph::Graph;
/// use echo_memory::LayerKind;
///
/// let mut g = Graph::new();
/// let x = g.input("x", LayerKind::Other);
/// assert_eq!(g.node(x).unwrap().name, "x");
/// assert_eq!(g.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// consumers[i] = ids of op nodes that read node i's output.
    consumers: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an input (per-execution binding) node.
    pub fn input(&mut self, name: impl Into<String>, layer: LayerKind) -> NodeId {
        self.push(name.into(), NodeKind::Input, layer)
    }

    /// Adds a parameter node.
    pub fn param(&mut self, name: impl Into<String>, layer: LayerKind) -> NodeId {
        self.push(name.into(), NodeKind::Param, layer)
    }

    /// Applies an operator to existing nodes.
    ///
    /// # Panics
    ///
    /// Panics if any input id does not belong to this graph — that is a
    /// programming error in model-construction code, not a runtime
    /// condition.
    pub fn apply(
        &mut self,
        name: impl Into<String>,
        op: Arc<dyn Operator + Send + Sync>,
        inputs: &[NodeId],
        layer: LayerKind,
    ) -> NodeId {
        for &i in inputs {
            assert!(
                i.0 < self.nodes.len(),
                "input {i} does not belong to this graph"
            );
        }
        let id = self.push(
            name.into(),
            NodeKind::Op {
                op,
                inputs: inputs.to_vec(),
            },
            layer,
        );
        for &i in inputs {
            self.consumers[i.0].push(id);
        }
        id
    }

    fn push(&mut self, name: String, kind: NodeKind, layer: LayerKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name,
            kind,
            layer,
        });
        self.consumers.push(Vec::new());
        id
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.0)
            .ok_or(GraphError::UnknownNode { id: id.0 })
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Op nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.0]
    }

    /// Finds a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Ids of all parameter nodes.
    pub fn params(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Param))
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all input nodes.
    pub fn input_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Input))
            .map(|n| n.id)
            .collect()
    }

    /// The set of node ids that `target` transitively depends on, including
    /// itself — the subgraph an execution of `target` must cover.
    pub fn ancestors(&self, target: NodeId) -> Vec<NodeId> {
        let mut needed = vec![false; self.nodes.len()];
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            if needed[id.0] {
                continue;
            }
            needed[id.0] = true;
            stack.extend_from_slice(self.nodes[id.0].inputs());
        }
        (0..self.nodes.len())
            .filter(|&i| needed[i])
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{KernelLaunch, Saved, StashNeeds};
    use echo_device::KernelCategory;
    use echo_tensor::{Shape, Tensor};

    #[derive(Debug)]
    struct Nop;

    impl Operator for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn category(&self) -> KernelCategory {
            KernelCategory::Other
        }
        fn infer_shape(&self, inputs: &[&Shape]) -> crate::Result<Shape> {
            Ok(inputs[0].clone())
        }
        fn forward(&self, inputs: &[&Tensor]) -> crate::Result<(Tensor, Saved)> {
            Ok((inputs[0].clone(), Vec::new()))
        }
        fn backward(
            &self,
            _inputs: &[Option<&Tensor>],
            _output: Option<&Tensor>,
            _saved: &[Tensor],
            dy: &Tensor,
        ) -> crate::Result<Vec<Option<Tensor>>> {
            Ok(vec![Some(dy.clone())])
        }
        fn stash(&self) -> StashNeeds {
            StashNeeds::NONE
        }
        fn forward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            Vec::new()
        }
        fn backward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
            Vec::new()
        }
    }

    #[test]
    fn build_and_query() {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Other);
        let w = g.param("w", LayerKind::Rnn);
        let y = g.apply("y", Arc::new(Nop), &[x], LayerKind::Rnn);
        let z = g.apply("z", Arc::new(Nop), &[y], LayerKind::Rnn);
        assert_eq!(g.len(), 4);
        assert_eq!(g.consumers(x), &[y]);
        assert_eq!(g.consumers(y), &[z]);
        assert_eq!(g.find("w"), Some(w));
        assert_eq!(g.params(), vec![w]);
        assert_eq!(g.input_nodes(), vec![x]);
        assert!(g.node(NodeId(99)).is_err());
    }

    #[test]
    fn ancestors_cover_dependency_cone() {
        let mut g = Graph::new();
        let a = g.input("a", LayerKind::Other);
        let b = g.input("b", LayerKind::Other);
        let c = g.apply("c", Arc::new(Nop), &[a], LayerKind::Other);
        let _d = g.apply("d", Arc::new(Nop), &[b], LayerKind::Other);
        let anc = g.ancestors(c);
        assert!(anc.contains(&a) && anc.contains(&c));
        assert!(!anc.contains(&b));
    }

    #[test]
    fn insertion_order_is_topological() {
        let mut g = Graph::new();
        let a = g.input("a", LayerKind::Other);
        let b = g.apply("b", Arc::new(Nop), &[a], LayerKind::Other);
        let c = g.apply("c", Arc::new(Nop), &[b, a], LayerKind::Other);
        for node in g.nodes() {
            for &i in node.inputs() {
                assert!(i < node.id);
            }
        }
        assert!(a < b && b < c);
    }
}
