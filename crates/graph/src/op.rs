//! The operator interface.

use crate::Result;
use echo_cachesim::TiledGemmSpec;
use echo_device::{KernelCategory, KernelCost};
use echo_tensor::{Shape, Tensor};
use std::fmt;

/// What an operator needs the executor to keep alive for its backward pass.
///
/// This mirrors MXNet's `OperatorProperty` declarations (paper Figure 10):
/// a tanh declares `output: true` (its derivative is `1 − y²`), a
/// fully-connected layer declares `inputs: true` (it needs `X` and `W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StashNeeds {
    /// Backward reads the forward inputs.
    pub inputs: bool,
    /// Backward reads the forward output.
    pub output: bool,
}

impl StashNeeds {
    /// Backward needs neither inputs nor output (e.g. plain addition).
    pub const NONE: StashNeeds = StashNeeds {
        inputs: false,
        output: false,
    };
    /// Backward needs the inputs only.
    pub const INPUTS: StashNeeds = StashNeeds {
        inputs: true,
        output: false,
    };
    /// Backward needs the output only.
    pub const OUTPUT: StashNeeds = StashNeeds {
        inputs: false,
        output: true,
    };
    /// Backward needs both.
    pub const BOTH: StashNeeds = StashNeeds {
        inputs: true,
        output: true,
    };
}

/// How a kernel's cost is described to the device simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchSpec {
    /// A fixed roofline cost.
    Kernel(KernelCost),
    /// A GEMM whose memory behaviour the cache simulator derives from the
    /// problem geometry and operand layouts.
    Gemm(TiledGemmSpec),
}

/// One GPU kernel an operator would launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLaunch {
    /// Kernel name for the trace.
    pub name: String,
    /// Category for breakdown figures.
    pub category: KernelCategory,
    /// Cost description.
    pub spec: LaunchSpec,
}

impl KernelLaunch {
    /// A roofline kernel.
    pub fn kernel(name: impl Into<String>, category: KernelCategory, cost: KernelCost) -> Self {
        KernelLaunch {
            name: name.into(),
            category,
            spec: LaunchSpec::Kernel(cost),
        }
    }

    /// A GEMM kernel.
    pub fn gemm(name: impl Into<String>, spec: TiledGemmSpec) -> Self {
        KernelLaunch {
            name: name.into(),
            category: KernelCategory::FullyConnected,
            spec: LaunchSpec::Gemm(spec),
        }
    }
}

/// Values produced by `forward` that only the same operator's `backward`
/// reads — cuDNN's "reserved space" (gates of a fused LSTM, softmax
/// probabilities, layer-norm statistics).
pub type Saved = Vec<Tensor>;

/// A single-output differentiable operator.
///
/// Operators are pure: all state lives in the tensors. The executor owns
/// scheduling, stashing and memory; the operator describes computation
/// (numeric plane) and kernel costs (device plane).
pub trait Operator: fmt::Debug {
    /// Short name used in traces and errors (e.g. `"fully_connected"`).
    fn name(&self) -> &str;

    /// Trace category for the operator's kernels.
    fn category(&self) -> KernelCategory;

    /// Output shape from input shapes.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shapes are unacceptable.
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape>;

    /// Numeric forward pass: output plus operator-private saved tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when the inputs are numerically unacceptable.
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)>;

    /// Numeric backward pass: gradient w.r.t. each input (`None` for
    /// non-differentiable inputs such as integer id tensors).
    ///
    /// `inputs`/`output` are only populated when [`Operator::stash`]
    /// requested them; `saved` is whatever `forward` returned.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes are inconsistent.
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>>;

    /// What the executor must keep alive for [`Operator::backward`].
    fn stash(&self) -> StashNeeds;

    /// Kernels launched by the forward pass, for the device plane.
    fn forward_launches(&self, inputs: &[&Shape], output: &Shape) -> Vec<KernelLaunch>;

    /// Kernels launched by the backward pass, for the device plane.
    fn backward_launches(&self, inputs: &[&Shape], output: &Shape) -> Vec<KernelLaunch>;

    /// Bytes of operator-private saved state per forward call, for the
    /// symbolic plane (must match what `forward` actually saves).
    fn saved_bytes(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        let _ = (inputs, output);
        0
    }

    /// Whether each input is differentiable (defaults to all-true).
    fn input_differentiable(&self, index: usize) -> bool {
        let _ = index;
        true
    }

    /// If `Some((start, end))`, this operator has exactly one input and its
    /// backward writes the input gradient only into columns `[start, end)`
    /// of the last dimension, leaving `+0.0` everywhere else — the
    /// slice-like ops that split the LSTM gate pre-activation. The fusion
    /// pass uses this to prove that when one value feeds several such
    /// consumers, their gradient contributions have disjoint supports, so
    /// any association order of the accumulation produces identical bits.
    fn grad_col_span(&self) -> Option<(usize, usize)> {
        None
    }

    /// Alternative implementations of this operator that compute
    /// bit-identical numerics but launch different kernels (e.g. a
    /// row-major vs column-major weight layout for a recurrent GEMM).
    /// The layout-selection pass scores each variant on the device
    /// simulator and keeps the cheapest. Implementations MUST preserve
    /// `forward`/`backward` bits exactly; only launch descriptions may
    /// differ. Defaults to "no alternatives".
    fn layout_variants(&self) -> Vec<std::sync::Arc<dyn Operator + Send + Sync>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stash_constants() {
        let cases = [
            (StashNeeds::BOTH, true, true),
            (StashNeeds::NONE, false, false),
            (StashNeeds::INPUTS, true, false),
            (StashNeeds::OUTPUT, false, true),
        ];
        for (needs, inputs, output) in cases {
            assert_eq!(needs.inputs, inputs);
            assert_eq!(needs.output, output);
        }
    }

    #[test]
    fn launch_constructors() {
        let k = KernelLaunch::kernel(
            "k",
            KernelCategory::Elementwise,
            KernelCost::elementwise(10, 2),
        );
        assert!(matches!(k.spec, LaunchSpec::Kernel(_)));
        let g = KernelLaunch::gemm("g", TiledGemmSpec::new(4, 4, 4));
        assert_eq!(g.category, KernelCategory::FullyConnected);
    }
}
