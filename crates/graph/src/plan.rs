//! Ahead-of-time execution plans: static schedules, liveness analysis and
//! slot-based buffer reuse.
//!
//! The executor's legacy interpreter re-derives everything per step: the
//! execution cone, per-node shapes, saved-byte declarations, kernel-launch
//! descriptions, and one device allocation per node output. All of that is
//! a pure function of `(Graph, StashPlan, ExecOptions, binding shapes)` —
//! exactly the inputs the Echo compiler already sees — so [`ExecPlan`]
//! computes it **once**:
//!
//! * the forward topological **schedule** over the target's cone, with
//!   static shapes and per-node output/saved byte sizes;
//! * the backward schedule (nodes a gradient can statically reach);
//! * **liveness intervals** for every transient value (birth at its
//!   producing step, death at its last in-cone forward use — the same rule
//!   the interpreter applies dynamically) and every transient gradient
//!   (birth at its highest-index consumer's backward step, death at its
//!   own);
//! * a greedy interval-packing **slot assignment** mapping those transient
//!   tensors onto a small set of reusable buffers. Packing is size-exact
//!   (a slot is reused only by a tensor of identical byte size, the rule
//!   MXNet's memory planner uses), which keeps the reported peak equal to
//!   the exact-liveness peak: a coarser best-fit packing could *inflate*
//!   the footprint it claims to measure. Stashed nodes are excluded — their
//!   lifetimes span forward-to-backward by definition of the
//!   [`StashPlan`](crate::StashPlan), so they can never share a step-local
//!   slot; recompute-policy nodes die at their last forward use, which is
//!   what makes Echo's recomputation decisions directly shrink the slot
//!   set;
//! * a static **accounting timeline** that replays the exact allocator
//!   event sequence of the legacy interpreter (input placeholders, stashed
//!   feature maps + saved state, transient placeholders, gradient
//!   placeholders, workspace-pool growth at replay trigger points) and
//!   records the peak and its per-(layer, kind) breakdown. The plan-driven
//!   executor feeds this to
//!   [`DeviceMemory::record_planned_peak`](echo_memory::DeviceMemory::record_planned_peak)
//!   in one call per step instead of issuing hundreds of tagged
//!   allocations.
//!
//! Plans are built by `EchoCompiler::compile`/`attach` (or
//! [`Executor::plan_for`](crate::Executor::plan_for)) and shared across
//! data-parallel replicas as `Arc<ExecPlan>`: planning happens once per
//! model configuration, not once per replica or per step.

use crate::graph::{Graph, NodeId, NodeKind};
use crate::op::{KernelLaunch, StashNeeds};
use crate::policy::{StashPlan, StashPolicy};
use crate::{ExecOptions, GraphError, Result};
use echo_memory::{DataStructureKind, LayerKind};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of [`ExecPlan`]s built over the process lifetime.
///
/// Exists so tests can assert that constructing K data-parallel replicas
/// performs exactly one planning pass (the plan is shared, not re-derived).
static PLANS_BUILT: AtomicU64 = AtomicU64::new(0);

/// Number of execution plans built so far in this process.
pub fn plans_built() -> u64 {
    PLANS_BUILT.load(Ordering::Relaxed)
}

/// Number of executions that found an installed plan inapplicable (shape,
/// target or mode mismatch) and silently fell back to the legacy
/// interpreter.
///
/// The fallback is deliberate behaviour — bucketed NMT batches present a
/// different shape every few steps — but it must be *observable*: a fleet
/// that plans for batch 32 and serves batch 33 would otherwise pay the
/// interpreter tax forever without anyone noticing. One increment per
/// executed step, however many passes that step runs.
static PLAN_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Number of plan-to-legacy fallbacks over the process lifetime.
pub fn plan_fallbacks() -> u64 {
    PLAN_FALLBACKS.load(Ordering::Relaxed)
}

/// Records one plan-to-legacy fallback (called by the executor when an
/// installed plan fails its `matches` check for a requested execution).
pub(crate) fn record_plan_fallback() {
    PLAN_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// A per-(layer, data-structure) byte total in a planned breakdown.
pub type PlannedBreakdown = Vec<((LayerKind, DataStructureKind), u64)>;

/// Total floating-point operations of a launch list. Roofline kernels
/// declare their flops directly; a GEMM's are derived from its geometry
/// (`2·m·n·k` multiply-adds).
pub fn launch_flops(launches: &[KernelLaunch]) -> u64 {
    launches
        .iter()
        .map(|l| match &l.spec {
            crate::op::LaunchSpec::Kernel(cost) => cost.flops,
            crate::op::LaunchSpec::Gemm(spec) => {
                2 * (spec.m as u64) * (spec.n as u64) * (spec.k as u64)
            }
        })
        .sum()
}

/// A wavefront schedule: node indices grouped into dependency levels.
///
/// Wave `w` contains entries whose dependencies all complete in waves
/// `< w`, so every entry of one wave can execute concurrently. The
/// grouping is stored flat (`order`) with per-wave `bounds` so reading a
/// wave is a slice, not an allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct WaveTable {
    /// Node indices, contiguous by wave.
    pub order: Vec<u32>,
    /// Wave boundaries into `order`: wave `w` is
    /// `order[bounds[w]..bounds[w + 1]]`. Always `waves() + 1` long.
    pub bounds: Vec<u32>,
}

impl WaveTable {
    fn from_buckets(buckets: Vec<Vec<u32>>) -> WaveTable {
        let mut order = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
        let mut bounds = Vec::with_capacity(buckets.len() + 1);
        bounds.push(0);
        for bucket in buckets {
            order.extend_from_slice(&bucket);
            bounds.push(order.len() as u32);
        }
        WaveTable { order, bounds }
    }

    /// Number of waves.
    pub fn waves(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// The node indices of wave `w`.
    pub fn wave(&self, w: usize) -> &[u32] {
        &self.order[self.bounds[w] as usize..self.bounds[w + 1] as usize]
    }
}

/// Per-op-node static tables the planned interpreter reads instead of
/// re-deriving. Indexed by the node's dense index.
#[derive(Debug, Clone, Default)]
pub(crate) struct OpTables {
    /// What the op's backward needs kept alive.
    pub needs: StashNeeds,
    /// Kernel launches of the forward pass, precomputed from static shapes.
    pub fwd_launches: Vec<KernelLaunch>,
    /// Kernel launches of the backward pass.
    pub bwd_launches: Vec<KernelLaunch>,
    /// Declared operator-private saved bytes.
    pub saved_bytes: u64,
}

/// An ahead-of-time execution plan for one `(graph, stash plan, target,
/// training)` configuration and one set of binding shapes.
///
/// Immutable once built; shared via `Arc` between the compiler, the
/// executor and all data-parallel replicas.
#[derive(Debug)]
pub struct ExecPlan {
    pub(crate) target: NodeId,
    /// Every node whose value the caller receives. Training plans keep
    /// exactly the target; inference plans may keep several (logits plus
    /// recurrent state outputs).
    pub(crate) outputs: Vec<NodeId>,
    /// Dense keep-alive mask over the graph: kept nodes are never freed
    /// during forward and never packed into a reuse slot.
    pub(crate) keep: Vec<bool>,
    pub(crate) training: bool,
    pub(crate) graph_len: usize,
    /// In-cone nodes in topological (execution) order.
    pub(crate) schedule: Vec<NodeId>,
    /// In-cone nodes a gradient statically reaches, descending.
    pub(crate) bwd_schedule: Vec<NodeId>,
    /// Whether each node is in the execution cone.
    pub(crate) in_cone: Vec<bool>,
    /// In-cone forward consumer counts (for transient freeing).
    pub(crate) fwd_uses: Vec<u32>,
    /// Static output shape of every in-cone node.
    pub(crate) shapes: Vec<Option<Shape>>,
    /// Whether each node's output is dropped after its last forward use.
    pub(crate) transient: Vec<bool>,
    /// Whether forward must keep the op's saved tensors for backward.
    pub(crate) keep_saved: Vec<bool>,
    /// Per-op static tables (`None` for inputs/params/out-of-cone).
    pub(crate) ops: Vec<Option<OpTables>>,
    /// Slot id for each transient value (dense node index -> slot).
    pub(crate) value_slots: Vec<Option<u32>>,
    /// Slot id for each transient gradient.
    pub(crate) grad_slots: Vec<Option<u32>>,
    /// Byte size of each slot.
    pub(crate) slot_sizes: Vec<u64>,
    /// Input binding shapes the plan was specialized to.
    pub(crate) input_shapes: Vec<(NodeId, Shape)>,
    /// Parameter shapes the plan assumed.
    pub(crate) param_shapes: Vec<(NodeId, Shape)>,
    /// Absolute planned peak (parameters + gradients included).
    pub(crate) planned_peak_bytes: u64,
    /// Peak minus the persistent parameter base: what one training step
    /// transiently adds on top of what is live between steps.
    pub(crate) step_delta: u64,
    /// Same, for a forward-only execution.
    pub(crate) fwd_delta: u64,
    /// Workspace bytes contained in `step_delta` that the executor serves
    /// through real pool leases (pools retain their buffers across steps).
    pub(crate) assumed_workspace: u64,
    /// Full live set at the planned peak moment, per (layer, kind).
    pub(crate) peak_breakdown: PlannedBreakdown,
    /// Live set at the forward-only peak moment.
    pub(crate) fwd_peak_breakdown: PlannedBreakdown,
    /// Segment replays one training step performs.
    pub(crate) planned_replays: u64,
    /// Flops of one step's scheduled forward + backward launches,
    /// excluding replays — the no-extra-recompute work a step must do
    /// under *any* stash plan for this cone.
    pub(crate) planned_step_flops: u64,
    /// Extra flops the step spends replaying recompute segments.
    pub(crate) planned_recompute_flops: u64,
    /// Forward op wavefronts: ops grouped by producer depth, ascending
    /// node index within a wave. Ops in one wave share no
    /// producer-consumer edge, so the wavefront executor may compute them
    /// concurrently (committing results serially in index order keeps the
    /// step bit-identical to the serial interpreter).
    pub(crate) fwd_waves: WaveTable,
    /// Backward wavefronts over `bwd_schedule`, descending node index
    /// within a wave. Levels respect two edge kinds: *strict* edges (a
    /// node's backward runs only after every contributing consumer's
    /// backward has committed its gradient) and *non-strict*
    /// accumulation-chain edges (two consumers of the same node may not
    /// commit their `axpy` into its gradient out of descending-index
    /// order; same wave is allowed because within-wave commits are serial
    /// and descending). Empty for inference plans.
    pub(crate) bwd_waves: WaveTable,
}

impl ExecPlan {
    /// Compiles `(graph, stash plan, options, binding shapes, parameter
    /// shapes, target)` into an execution plan.
    ///
    /// `opts.numeric` is ignored: a plan drives both the numeric and the
    /// symbolic plane (they share schedule, policies and accounting by
    /// design). `opts.training` is part of the plan's identity — it decides
    /// stashing, the backward schedule and gradient liveness.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingBinding`] when an in-cone input or
    /// parameter has no shape, and propagates shape-inference failures.
    pub fn build(
        graph: &Graph,
        stash: &StashPlan,
        opts: ExecOptions,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        target: NodeId,
    ) -> Result<ExecPlan> {
        Self::build_multi(graph, stash, opts, binding_shapes, param_shapes, &[target])
    }

    /// Compiles an **inference-mode** plan: a forward-only schedule over
    /// the union cone of `outputs`, with every one of them kept alive to
    /// the end of the step.
    ///
    /// Relative to a training plan for the same graph and shapes the
    /// inference plan carries *no* backward schedule, *no* stash table
    /// (every op output is transient and dies at its last forward use —
    /// there is no backward pass to save it for) and *no* gradient slots,
    /// so its launch table is shorter and its slot arena strictly smaller.
    /// This is what a serving engine runs per decode step.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingBinding`] when an in-cone input or
    /// parameter has no shape, and propagates shape-inference failures.
    pub fn build_inference(
        graph: &Graph,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        outputs: &[NodeId],
    ) -> Result<ExecPlan> {
        Self::build_multi(
            graph,
            &StashPlan::stash_all(),
            ExecOptions {
                training: false,
                numeric: true,
            },
            binding_shapes,
            param_shapes,
            outputs,
        )
    }

    fn build_multi(
        graph: &Graph,
        stash: &StashPlan,
        opts: ExecOptions,
        binding_shapes: &HashMap<NodeId, Shape>,
        param_shapes: &HashMap<NodeId, Shape>,
        outputs: &[NodeId],
    ) -> Result<ExecPlan> {
        let target = *outputs.first().ok_or_else(|| GraphError::Operator {
            op: "exec_plan".to_string(),
            message: "a plan needs at least one output".to_string(),
        })?;
        let n = graph.len();
        let mut in_cone = vec![false; n];
        let mut keep = vec![false; n];
        for &out in outputs {
            graph.node(out)?;
            keep[out.index()] = true;
            for id in graph.ancestors(out) {
                in_cone[id.index()] = true;
            }
        }
        let schedule: Vec<NodeId> = graph
            .nodes()
            .iter()
            .filter(|node| in_cone[node.id.index()])
            .map(|node| node.id)
            .collect();

        // Shapes, per-op tables, forward use counts.
        let mut shapes: Vec<Option<Shape>> = vec![None; n];
        let mut ops: Vec<Option<OpTables>> = vec![None; n];
        let mut fwd_uses = vec![0u32; n];
        let mut input_shapes = Vec::new();
        let mut used_params = Vec::new();
        for &id in &schedule {
            let node = &graph.nodes()[id.index()];
            match &node.kind {
                NodeKind::Input => {
                    let shape = binding_shapes.get(&id).cloned().ok_or_else(|| {
                        GraphError::MissingBinding {
                            name: node.name.clone(),
                        }
                    })?;
                    input_shapes.push((id, shape.clone()));
                    shapes[id.index()] = Some(shape);
                }
                NodeKind::Param => {
                    let shape = param_shapes.get(&id).cloned().ok_or_else(|| {
                        GraphError::MissingBinding {
                            name: node.name.clone(),
                        }
                    })?;
                    used_params.push((id, shape.clone()));
                    shapes[id.index()] = Some(shape);
                }
                NodeKind::Op { op, inputs } => {
                    let in_shapes: Vec<&Shape> = inputs
                        .iter()
                        .map(|&i| shapes[i.index()].as_ref().expect("topological order"))
                        .collect();
                    let out_shape = op.infer_shape(&in_shapes)?;
                    ops[id.index()] = Some(OpTables {
                        needs: op.stash(),
                        fwd_launches: op.forward_launches(&in_shapes, &out_shape),
                        bwd_launches: op.backward_launches(&in_shapes, &out_shape),
                        saved_bytes: op.saved_bytes(&in_shapes, &out_shape),
                    });
                    shapes[id.index()] = Some(out_shape);
                    for &i in inputs {
                        fwd_uses[i.index()] += 1;
                    }
                }
            }
        }

        // Stashing and transience, by the interpreter's exact rules.
        let mut transient = vec![false; n];
        let mut keep_saved = vec![false; n];
        for &id in &schedule {
            if ops[id.index()].is_none() {
                continue;
            }
            let stashed = opts.training && matches!(stash.policy(id), StashPolicy::Stash);
            transient[id.index()] = !stashed;
            keep_saved[id.index()] = stashed && opts.training;
        }

        // Static gradient reachability (superset of the runtime flow: an
        // operator may return no gradient for a differentiable input, but
        // never the reverse) and the backward schedule.
        let mut grad_reaches = vec![false; n];
        let mut bwd_schedule = Vec::new();
        if opts.training {
            grad_reaches[target.index()] = true;
            for &id in schedule.iter().rev() {
                if !grad_reaches[id.index()] {
                    continue;
                }
                bwd_schedule.push(id);
                if let NodeKind::Op { op, inputs } = &graph.nodes()[id.index()].kind {
                    for (slot, &i) in inputs.iter().enumerate() {
                        if op.input_differentiable(slot) {
                            grad_reaches[i.index()] = true;
                        }
                    }
                }
            }
        }

        // Forward wavefronts: an op's level is one past the deepest of its
        // producers (inputs and params sit at level 0 — they are bindings,
        // not compute). The schedule is ascending, so pushing in schedule
        // order keeps every wave sorted ascending for the serial commit.
        let mut fwd_level = vec![0u32; n];
        let mut fwd_buckets: Vec<Vec<u32>> = Vec::new();
        for &id in &schedule {
            if let NodeKind::Op { inputs, .. } = &graph.nodes()[id.index()].kind {
                let lvl = 1 + inputs
                    .iter()
                    .map(|i| fwd_level[i.index()])
                    .max()
                    .unwrap_or(0);
                fwd_level[id.index()] = lvl;
                let wave = (lvl - 1) as usize;
                if fwd_buckets.len() <= wave {
                    fwd_buckets.resize_with(wave + 1, Vec::new);
                }
                fwd_buckets[wave].push(id.index() as u32);
            }
        }
        let fwd_waves = WaveTable::from_buckets(fwd_buckets);

        // Backward wavefronts. Walking `bwd_schedule` (descending) levels
        // every entry after all of its consumers:
        //  * strict edges — each contributing consumer `c` of node `v`
        //    (an op for which `v` sits in a differentiable slot) raises
        //    `v`'s floor to `level(c) + 1`, so `v`'s own backward runs
        //    only once its gradient is fully accumulated;
        //  * non-strict accumulation-chain edges — consumers of `v`
        //    accumulate into `v`'s gradient in descending index order in
        //    the serial interpreter. A lower-index consumer therefore may
        //    not land in an *earlier* wave than a higher-index one
        //    (`level >= level(prev higher-index consumer)`); landing in
        //    the same wave is fine because within-wave gradient commits
        //    are serial and descending.
        let mut bwd_waves = WaveTable::default();
        if opts.training {
            let mut blevel = vec![0u32; n];
            let mut floor = vec![0u32; n];
            // Lowest-index contributing consumer leveled so far, per node.
            let mut last_contrib = vec![u32::MAX; n];
            let mut buckets: Vec<Vec<u32>> = Vec::new();
            for &id in &bwd_schedule {
                let idx = id.index();
                let mut lvl = floor[idx];
                if let NodeKind::Op { op, inputs } = &graph.nodes()[idx].kind {
                    for (slot, &v) in inputs.iter().enumerate() {
                        if !op.input_differentiable(slot) || !grad_reaches[v.index()] {
                            continue;
                        }
                        let prev = last_contrib[v.index()];
                        if prev != u32::MAX {
                            lvl = lvl.max(blevel[prev as usize]);
                        }
                        last_contrib[v.index()] = idx as u32;
                    }
                }
                blevel[idx] = lvl;
                if let NodeKind::Op { op, inputs } = &graph.nodes()[idx].kind {
                    for (slot, &v) in inputs.iter().enumerate() {
                        if op.input_differentiable(slot) && grad_reaches[v.index()] {
                            floor[v.index()] = floor[v.index()].max(lvl + 1);
                        }
                    }
                }
                let wave = lvl as usize;
                if buckets.len() <= wave {
                    buckets.resize_with(wave + 1, Vec::new);
                }
                // `bwd_schedule` is descending, so each wave stays sorted
                // descending for the serial commit phase.
                buckets[wave].push(idx as u32);
            }
            bwd_waves = WaveTable::from_buckets(buckets);
        }

        let bytes_of =
            |id: NodeId| shapes[id.index()].as_ref().expect("in cone").num_bytes() as u64;

        // Liveness intervals on a unified clock: forward step `i` happens
        // at time `i`, backward step `i` at time `2n - i`.
        let last_use: Vec<usize> = (0..n)
            .map(|i| {
                graph
                    .consumers(NodeId::from_index(i))
                    .iter()
                    .filter(|c| in_cone[c.index()])
                    .map(|c| c.index())
                    .max()
                    .unwrap_or(i)
            })
            .collect();
        struct Interval {
            node: usize,
            grad: bool,
            birth: usize,
            death: usize,
            bytes: u64,
        }
        let mut intervals = Vec::new();
        for &id in &schedule {
            let idx = id.index();
            if transient[idx] && !keep[idx] {
                let death = if fwd_uses[idx] > 0 {
                    last_use[idx]
                } else {
                    2 * n + 2 // never freed by forward; lives out the step
                };
                intervals.push(Interval {
                    node: idx,
                    grad: false,
                    birth: idx,
                    death,
                    bytes: bytes_of(id),
                });
            }
        }
        for &id in &bwd_schedule {
            let idx = id.index();
            if matches!(graph.nodes()[idx].kind, NodeKind::Param) {
                continue; // parameter gradients are persistent
            }
            let birth = if id == target {
                2 * n - idx // the seed, written before the walk
            } else {
                let highest_consumer = graph
                    .consumers(id)
                    .iter()
                    .filter(|c| grad_reaches[c.index()])
                    .map(|c| c.index())
                    .max()
                    .expect("a gradient reaches this node through a consumer");
                2 * n - highest_consumer
            };
            intervals.push(Interval {
                node: idx,
                grad: true,
                birth,
                death: 2 * n - idx,
                bytes: bytes_of(id),
            });
        }
        intervals.sort_by_key(|iv| (iv.birth, iv.node));

        // Greedy size-exact interval packing.
        let mut value_slots: Vec<Option<u32>> = vec![None; n];
        let mut grad_slots: Vec<Option<u32>> = vec![None; n];
        let mut slot_sizes: Vec<u64> = Vec::new();
        let mut slot_expiry: Vec<usize> = Vec::new();
        for iv in &intervals {
            let free = (0..slot_sizes.len())
                .find(|&s| slot_sizes[s] == iv.bytes && slot_expiry[s] < iv.birth);
            let slot = match free {
                Some(s) => s,
                None => {
                    slot_sizes.push(iv.bytes);
                    slot_expiry.push(0);
                    slot_sizes.len() - 1
                }
            };
            slot_expiry[slot] = iv.death;
            let table = if iv.grad {
                &mut grad_slots
            } else {
                &mut value_slots
            };
            table[iv.node] = Some(slot as u32);
        }

        let mut plan = ExecPlan {
            target,
            outputs: outputs.to_vec(),
            keep,
            training: opts.training,
            graph_len: n,
            schedule,
            bwd_schedule,
            in_cone,
            fwd_uses,
            shapes,
            transient,
            keep_saved,
            ops,
            value_slots,
            grad_slots,
            slot_sizes,
            input_shapes,
            param_shapes: used_params,
            planned_peak_bytes: 0,
            step_delta: 0,
            fwd_delta: 0,
            assumed_workspace: 0,
            peak_breakdown: Vec::new(),
            fwd_peak_breakdown: Vec::new(),
            planned_replays: 0,
            planned_step_flops: 0,
            planned_recompute_flops: 0,
            fwd_waves,
            bwd_waves,
        };
        let fwd_flops: u64 = plan
            .schedule
            .iter()
            .filter_map(|id| plan.ops[id.index()].as_ref())
            .map(|t| launch_flops(&t.fwd_launches))
            .sum();
        let bwd_flops: u64 = plan
            .bwd_schedule
            .iter()
            .filter_map(|id| plan.ops[id.index()].as_ref())
            .map(|t| launch_flops(&t.bwd_launches))
            .sum();
        plan.planned_step_flops = fwd_flops + bwd_flops;
        let sim = AccountingSim::new(graph, stash, &plan).run();
        plan.planned_peak_bytes = sim.planned_peak_bytes;
        plan.step_delta = sim.step_delta;
        plan.fwd_delta = sim.fwd_delta;
        plan.assumed_workspace = sim.assumed_workspace;
        plan.peak_breakdown = sim.peak_breakdown;
        plan.fwd_peak_breakdown = sim.fwd_peak_breakdown;
        plan.planned_replays = sim.planned_replays;
        plan.planned_recompute_flops = sim.planned_recompute_flops;
        PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }

    /// The node this plan executes to.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Every node the plan keeps alive for the caller. Training plans
    /// return exactly `[target]`; inference plans return the full output
    /// set passed to [`ExecPlan::build_inference`].
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Total kernel launches in the forward (+ backward, when training)
    /// launch tables — inference plans are strictly shorter than training
    /// plans for the same cone.
    pub fn launch_count(&self) -> usize {
        self.ops
            .iter()
            .flatten()
            .map(|t| {
                t.fwd_launches.len()
                    + if self.training {
                        t.bwd_launches.len()
                    } else {
                        0
                    }
            })
            .sum()
    }

    /// Kernel launches in the forward launch table alone — the quantity
    /// fusion shrinks (the backward table shrinks with it, but the
    /// forward table is the figure the launch-overhead gate tracks).
    pub fn forward_launch_count(&self) -> usize {
        self.ops
            .iter()
            .flatten()
            .map(|t| t.fwd_launches.len())
            .sum()
    }

    /// Whether the plan schedules a backward pass.
    pub fn training(&self) -> bool {
        self.training
    }

    /// Absolute planned peak footprint of one step, parameters included —
    /// what a step of the plan-driven executor reports as `peak_bytes`.
    pub fn planned_peak_bytes(&self) -> u64 {
        self.planned_peak_bytes
    }

    /// Number of forward wavefronts (dependency levels over the op
    /// schedule). A stacked multi-step LSTM cone has fewer waves than ops
    /// whenever layers or gates are independent — the headroom the
    /// wavefront executor converts into parallelism.
    pub fn forward_wave_count(&self) -> usize {
        self.fwd_waves.waves()
    }

    /// Number of backward wavefronts (zero for inference plans).
    pub fn backward_wave_count(&self) -> usize {
        self.bwd_waves.waves()
    }

    /// Number of reusable transient buffers the plan packs values and
    /// gradients into.
    pub fn slot_count(&self) -> usize {
        self.slot_sizes.len()
    }

    /// Total bytes of the slot arena (sum of slot sizes).
    pub fn arena_bytes(&self) -> u64 {
        self.slot_sizes.iter().sum()
    }

    /// The reuse slot a transient node output was packed into, when the
    /// node is transient (stashed outputs live outside the slot arena by
    /// design — their lifetime spans forward to backward).
    pub fn value_slot(&self, id: NodeId) -> Option<u32> {
        self.value_slots.get(id.index()).copied().flatten()
    }

    /// The reuse slot a node's transient gradient was packed into.
    pub fn grad_slot(&self, id: NodeId) -> Option<u32> {
        self.grad_slots.get(id.index()).copied().flatten()
    }

    /// Segment replays one planned training step performs.
    pub fn planned_replays(&self) -> u64 {
        self.planned_replays
    }

    /// Flops of one step's scheduled forward + backward launches,
    /// excluding replays. Identical across stash plans for the same cone,
    /// which is what makes it the reference a recompute-FLOP budget is a
    /// multiplier over.
    pub fn planned_step_flops(&self) -> u64 {
        self.planned_step_flops
    }

    /// Extra forward flops one step spends replaying recompute segments —
    /// the cost side of the memory/recompute trade a stash-set search
    /// optimizes under a budget.
    pub fn planned_recompute_flops(&self) -> u64 {
        self.planned_recompute_flops
    }

    /// The full live set at the planned peak moment, per (layer, kind).
    pub fn peak_breakdown(&self) -> &PlannedBreakdown {
        &self.peak_breakdown
    }

    /// Parameter shapes the plan was built against.
    pub fn param_shapes(&self) -> &[(NodeId, Shape)] {
        &self.param_shapes
    }

    /// Whether this plan can drive an execution of `target` under `opts`
    /// with the given bindings: same graph size, same target, same
    /// training mode, and every input the plan was specialized to bound
    /// with an identical shape.
    pub fn matches(
        &self,
        graph_len: usize,
        bindings: &HashMap<NodeId, Tensor>,
        target: NodeId,
        opts: ExecOptions,
    ) -> bool {
        self.graph_len == graph_len
            && self.outputs.len() == 1
            && self.target == target
            && self.training == opts.training
            && self
                .input_shapes
                .iter()
                .all(|(id, shape)| bindings.get(id).is_some_and(|t| t.shape() == shape))
    }

    /// Whether this plan can serve a forward-only execution producing
    /// exactly `outputs` (order-sensitive) with the given bindings: the
    /// multi-output analogue of [`ExecPlan::matches`].
    pub fn matches_many(
        &self,
        graph_len: usize,
        bindings: &HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
        opts: ExecOptions,
    ) -> bool {
        self.graph_len == graph_len
            && self.outputs == outputs
            && self.training == opts.training
            && self
                .input_shapes
                .iter()
                .all(|(id, shape)| bindings.get(id).is_some_and(|t| t.shape() == shape))
    }

    pub(crate) fn shape(&self, idx: usize) -> &Shape {
        self.shapes[idx].as_ref().expect("in-cone node has a shape")
    }
}

/// Replays the legacy interpreter's allocator event sequence statically.
///
/// Every event mirrors one accounting action of `exec.rs`: input
/// placeholder allocs, op output (+ stashed saved) allocs, transient frees
/// after the last forward use, the gradient seed, per-node gradient
/// allocs/frees, stash frees at each node's backward step, and
/// workspace-pool growth at the exact replay trigger points of the numeric
/// backward discipline. Byte totals therefore match what a legacy run
/// records — the slot packing above never inflates them because it is
/// size-exact.
struct AccountingSim<'a> {
    graph: &'a Graph,
    stash: &'a StashPlan,
    plan: &'a ExecPlan,
    live: u64,
    by_tag: HashMap<(LayerKind, DataStructureKind), u64>,
    peak: u64,
    peak_by_tag: HashMap<(LayerKind, DataStructureKind), u64>,
    /// Active replay scratches: segment id -> min node index.
    active: HashMap<usize, usize>,
    /// Pool id -> (layer at creation, high-water bytes).
    pools: HashMap<usize, (LayerKind, u64)>,
    replays: u64,
    replay_flops: u64,
}

impl<'a> AccountingSim<'a> {
    fn new(graph: &'a Graph, stash: &'a StashPlan, plan: &'a ExecPlan) -> Self {
        AccountingSim {
            graph,
            stash,
            plan,
            live: 0,
            by_tag: HashMap::new(),
            peak: 0,
            peak_by_tag: HashMap::new(),
            active: HashMap::new(),
            pools: HashMap::new(),
            replays: 0,
            replay_flops: 0,
        }
    }

    fn add(&mut self, layer: LayerKind, kind: DataStructureKind, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.live += bytes;
        *self.by_tag.entry((layer, kind)).or_default() += bytes;
        if self.live > self.peak {
            self.peak = self.live;
            self.peak_by_tag = self.by_tag.clone();
        }
    }

    fn sub(&mut self, layer: LayerKind, kind: DataStructureKind, bytes: u64) {
        self.live -= bytes;
        if let Some(v) = self.by_tag.get_mut(&(layer, kind)) {
            *v -= bytes;
        }
    }

    fn bytes_of(&self, idx: usize) -> u64 {
        self.plan.shape(idx).num_bytes() as u64
    }

    fn saved_bytes_of(&self, idx: usize) -> u64 {
        self.plan.ops[idx].as_ref().map_or(0, |t| t.saved_bytes)
    }

    /// Whether backward would find this node's value missing (and so
    /// trigger a replay if it is recomputable).
    fn value_missing(&self, idx: usize) -> bool {
        self.plan.transient[idx] && self.plan.ops[idx].is_some()
    }

    fn sim_replay(&mut self, seg: usize) {
        if self.active.contains_key(&seg) {
            return;
        }
        let nodes: Vec<NodeId> = self
            .stash
            .segment_nodes(seg)
            .into_iter()
            .filter(|id| self.plan.in_cone[id.index()])
            .collect();
        if nodes.is_empty() {
            return;
        }
        let pool_id = match self.stash.policy(nodes[0]) {
            StashPolicy::Recompute(s) => s.pool,
            StashPolicy::Stash => 0,
        };
        let min_index = nodes.iter().map(|id| id.index()).min().expect("non-empty");
        // Mark active before recursing so mutually-referencing segments
        // terminate, mirroring the scratch-map insertion order guarantee
        // that topological order gives the interpreter.
        self.active.insert(seg, min_index);
        let mut bytes = 0u64;
        for &id in &nodes {
            if let NodeKind::Op { inputs, .. } = &self.graph.nodes()[id.index()].kind {
                for &i in inputs {
                    let in_this_seg = nodes.contains(&i);
                    if in_this_seg || !self.value_missing(i.index()) || self.scratch_has(i) {
                        continue;
                    }
                    if let StashPolicy::Recompute(other) = self.stash.policy(i) {
                        if other.id != seg {
                            self.sim_replay(other.id);
                        }
                    }
                }
            }
            bytes += self.bytes_of(id.index()) + self.saved_bytes_of(id.index());
            self.replay_flops += self.plan.ops[id.index()]
                .as_ref()
                .map_or(0, |t| launch_flops(&t.fwd_launches));
        }
        let layer = self.graph.nodes()[min_index].layer;
        let entry = self.pools.entry(pool_id).or_insert((layer, 0));
        let (pool_layer, high) = *entry;
        if bytes > high {
            entry.1 = bytes;
            self.add(pool_layer, DataStructureKind::Workspace, bytes - high);
        }
        self.replays += 1;
    }

    fn scratch_has(&self, id: NodeId) -> bool {
        self.active
            .keys()
            .any(|&seg| self.stash.segment_nodes(seg).contains(&id))
    }

    fn run(mut self) -> SimResults {
        let n = self.plan.graph_len;
        let mut results = SimResults::default();
        // Persistent base: every parameter's value + gradient, allocated
        // at bind time.
        for (id, shape) in &self.plan.param_shapes {
            let layer = self.graph.nodes()[id.index()].layer;
            self.add(
                layer,
                DataStructureKind::Weight,
                2 * shape.num_bytes() as u64,
            );
        }
        let persistent = self.live;

        // Forward.
        let mut uses = self.plan.fwd_uses.clone();
        for i in 0..self.plan.schedule.len() {
            let id = self.plan.schedule[i];
            let idx = id.index();
            let node = &self.graph.nodes()[idx];
            match &node.kind {
                NodeKind::Input => {
                    self.add(
                        node.layer,
                        DataStructureKind::Placeholder,
                        self.bytes_of(idx),
                    );
                }
                NodeKind::Param => {}
                NodeKind::Op { inputs, .. } => {
                    let stashed = !self.plan.transient[idx];
                    let kind = if stashed {
                        DataStructureKind::FeatureMap
                    } else {
                        DataStructureKind::Placeholder
                    };
                    let bytes = self.bytes_of(idx)
                        + if stashed && self.plan.training {
                            self.saved_bytes_of(idx)
                        } else {
                            0
                        };
                    self.add(node.layer, kind, bytes);
                    for &input in inputs.clone().iter() {
                        uses[input.index()] -= 1;
                        if uses[input.index()] == 0
                            && !self.plan.keep[input.index()]
                            && self.plan.transient[input.index()]
                        {
                            let in_node = &self.graph.nodes()[input.index()];
                            let layer = in_node.layer;
                            self.sub(
                                layer,
                                DataStructureKind::Placeholder,
                                self.bytes_of(input.index()),
                            );
                        }
                    }
                }
            }
        }
        results.fwd_delta = self.peak - persistent;
        results.fwd_peak_breakdown = breakdown_vec(&self.peak_by_tag);

        if self.plan.training {
            // Backward: seed first, then the descending walk.
            let target_idx = self.plan.target.index();
            let target_layer = self.graph.nodes()[target_idx].layer;
            let mut grad_born = vec![false; n];
            grad_born[target_idx] = true;
            self.add(
                target_layer,
                DataStructureKind::Placeholder,
                self.bytes_of(target_idx),
            );
            for i in 0..self.plan.bwd_schedule.len() {
                let id = self.plan.bwd_schedule[i];
                let idx = id.index();
                let node = &self.graph.nodes()[idx];
                match &node.kind {
                    NodeKind::Param => {}
                    NodeKind::Input => {
                        if grad_born[idx] {
                            self.sub(
                                node.layer,
                                DataStructureKind::Placeholder,
                                self.bytes_of(idx),
                            );
                        }
                    }
                    NodeKind::Op { op, inputs } => {
                        if !grad_born[idx] {
                            continue;
                        }
                        let inputs = inputs.clone();
                        let needs = self.plan.ops[idx].as_ref().expect("op tables").needs;
                        // Replay triggers, in the numeric backward's order:
                        // required input values, then the node's own
                        // output/saved state.
                        if needs.inputs {
                            for &input in &inputs {
                                if self.value_missing(input.index()) {
                                    if let StashPolicy::Recompute(seg) = self.stash.policy(input) {
                                        self.sim_replay(seg.id);
                                    }
                                }
                            }
                        }
                        if let StashPolicy::Recompute(seg) = self.stash.policy(id) {
                            self.sim_replay(seg.id);
                        }
                        // Gradient births at first propagation.
                        for (slot, &input) in inputs.iter().enumerate() {
                            let iidx = input.index();
                            if !op.input_differentiable(slot)
                                || grad_born[iidx]
                                || matches!(self.graph.nodes()[iidx].kind, NodeKind::Param)
                            {
                                continue;
                            }
                            grad_born[iidx] = true;
                            let in_layer = self.graph.nodes()[iidx].layer;
                            self.add(
                                in_layer,
                                DataStructureKind::Placeholder,
                                self.bytes_of(iidx),
                            );
                        }
                        // Frees: this node's gradient, its stashed output
                        // and saved state; retire dead scratches (their
                        // pool buffers stay live).
                        self.sub(
                            node.layer,
                            DataStructureKind::Placeholder,
                            self.bytes_of(idx),
                        );
                        if !self.plan.transient[idx] {
                            let bytes = self.bytes_of(idx)
                                + if self.plan.training {
                                    self.saved_bytes_of(idx)
                                } else {
                                    0
                                };
                            self.sub(node.layer, DataStructureKind::FeatureMap, bytes);
                        }
                        self.active.retain(|_, &mut min| min < idx);
                    }
                }
            }
        }

        results.planned_peak_bytes = self.peak;
        results.step_delta = self.peak - persistent;
        results.assumed_workspace = self.pools.values().map(|&(_, high)| high).sum();
        results.peak_breakdown = breakdown_vec(&self.peak_by_tag);
        results.planned_replays = self.replays;
        results.planned_recompute_flops = self.replay_flops;
        results
    }
}

/// What the static accounting timeline produces.
#[derive(Default)]
struct SimResults {
    planned_peak_bytes: u64,
    step_delta: u64,
    fwd_delta: u64,
    assumed_workspace: u64,
    peak_breakdown: PlannedBreakdown,
    fwd_peak_breakdown: PlannedBreakdown,
    planned_replays: u64,
    planned_recompute_flops: u64,
}

fn breakdown_vec(map: &HashMap<(LayerKind, DataStructureKind), u64>) -> PlannedBreakdown {
    let mut v: PlannedBreakdown = map
        .iter()
        .filter(|(_, &bytes)| bytes > 0)
        .map(|(&k, &bytes)| (k, bytes))
        .collect();
    v.sort_unstable();
    v
}
