//! Stash policies and recomputation segments — the interface the Echo
//! compiler pass manipulates.

use crate::graph::NodeId;
use std::collections::HashMap;

/// Identifier of a recomputation segment.
///
/// A segment is a connected set of op nodes whose outputs are not stashed;
/// when backward needs any of their values the executor replays the whole
/// segment once from its (stashed) boundary inputs. Segments that share a
/// `pool` reuse one workspace — the paper's cross-time-step sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId {
    /// Dense id of the segment.
    pub id: usize,
    /// Workspace pool the segment leases from. All per-time-step instances
    /// of the attention scoring function share one pool.
    pub pool: usize,
}

/// Per-node stashing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StashPolicy {
    /// Keep the node's output (and saved tensors) in device memory from
    /// forward until backward — the framework default.
    #[default]
    Stash,
    /// Drop after the last forward consumer; replay the segment when
    /// backward needs the value (partial forward propagation).
    Recompute(SegmentId),
}

impl StashPolicy {
    /// The segment, if this node is recomputed.
    pub fn segment(self) -> Option<SegmentId> {
        match self {
            StashPolicy::Stash => None,
            StashPolicy::Recompute(s) => Some(s),
        }
    }
}

/// The complete stashing plan for a graph: the artifact the Echo pass
/// produces and the executor consumes.
///
/// # Example
///
/// ```
/// use echo_graph::{StashPlan, StashPolicy, SegmentId};
/// use echo_graph::NodeId;
///
/// let mut plan = StashPlan::default();
/// // Everything defaults to Stash.
/// # // NodeId construction is crate-private; plans are normally built by
/// # // the Echo pass, so this example only exercises the default.
/// assert_eq!(plan.segment_count(), 0);
/// plan.set_default(StashPolicy::Stash);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StashPlan {
    policies: HashMap<NodeId, StashPolicy>,
    default: StashPolicy,
    segments: usize,
}

impl StashPlan {
    /// A plan that stashes everything (the framework-default behaviour).
    pub fn stash_all() -> Self {
        StashPlan::default()
    }

    /// Sets the policy for nodes not explicitly listed.
    pub fn set_default(&mut self, policy: StashPolicy) {
        self.default = policy;
    }

    /// Sets one node's policy.
    pub fn set(&mut self, node: NodeId, policy: StashPolicy) {
        if let StashPolicy::Recompute(seg) = policy {
            self.segments = self.segments.max(seg.id + 1);
        }
        self.policies.insert(node, policy);
    }

    /// The policy for `node`.
    pub fn policy(&self, node: NodeId) -> StashPolicy {
        self.policies.get(&node).copied().unwrap_or(self.default)
    }

    /// Number of distinct segment ids assigned so far.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// All nodes assigned to `segment`, ascending.
    pub fn segment_nodes(&self, segment: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .policies
            .iter()
            .filter(|(_, p)| matches!(p, StashPolicy::Recompute(s) if s.id == segment))
            .map(|(&n, _)| n)
            .collect();
        nodes.sort();
        nodes
    }

    /// Number of nodes marked for recomputation.
    pub fn recompute_count(&self) -> usize {
        self.policies
            .values()
            .filter(|p| matches!(p, StashPolicy::Recompute(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_stash() {
        let plan = StashPlan::stash_all();
        assert_eq!(plan.policy(NodeId(3)), StashPolicy::Stash);
        assert_eq!(plan.recompute_count(), 0);
    }

    #[test]
    fn segments_are_tracked() {
        let mut plan = StashPlan::default();
        let seg0 = SegmentId { id: 0, pool: 0 };
        let seg1 = SegmentId { id: 1, pool: 0 };
        plan.set(NodeId(1), StashPolicy::Recompute(seg0));
        plan.set(NodeId(2), StashPolicy::Recompute(seg0));
        plan.set(NodeId(5), StashPolicy::Recompute(seg1));
        plan.set(NodeId(7), StashPolicy::Stash);
        assert_eq!(plan.segment_count(), 2);
        assert_eq!(plan.segment_nodes(0), vec![NodeId(1), NodeId(2)]);
        assert_eq!(plan.segment_nodes(1), vec![NodeId(5)]);
        assert_eq!(plan.recompute_count(), 3);
        assert_eq!(plan.policy(NodeId(1)).segment(), Some(seg0));
        assert_eq!(plan.policy(NodeId(7)).segment(), None);
    }
}
