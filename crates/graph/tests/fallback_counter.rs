//! Regression test for plan-fallback observability (own test binary: the
//! counter is process-global, and sharing a process with the library tests
//! would make "exactly once per step" racy).

use echo_graph::op::Saved;
use echo_graph::{
    plan_fallbacks, ExecOptions, Executor, Graph, KernelLaunch, Operator, Result, StashNeeds,
    StashPlan,
};
use echo_memory::{DeviceMemory, LayerKind};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// loss = sum(x): one-op graph, enough to exercise the plan-match check.
#[derive(Debug)]
struct SumAll;

impl Operator for SumAll {
    fn name(&self) -> &str {
        "sum"
    }
    fn category(&self) -> echo_device::KernelCategory {
        echo_device::KernelCategory::Reduction
    }
    fn infer_shape(&self, _inputs: &[&Shape]) -> Result<Shape> {
        Ok(Shape::scalar())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
        Ok((Tensor::scalar(inputs[0].sum() as f32), Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("stash inputs");
        Ok(vec![Some(Tensor::full(x.shape().clone(), dy.data()[0]))])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        Vec::new()
    }
    fn backward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        Vec::new()
    }
}

#[test]
fn shape_mismatch_increments_fallback_counter_once_per_step() {
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Other);
    let loss = g.apply("sum", Arc::new(SumAll), &[x], LayerKind::Output);
    let g = Arc::new(g);
    let mut exec = Executor::new(
        Arc::clone(&g),
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
    );

    let mut planned = HashMap::new();
    planned.insert(x, Tensor::full(Shape::d1(32), 1.0));
    let ep = exec
        .plan_for(&planned, loss, ExecOptions::default())
        .unwrap();
    exec.set_exec_plan(ep).unwrap();

    // Matching steps never touch the counter.
    let before = plan_fallbacks();
    for _ in 0..3 {
        exec.train_step(&planned, loss, ExecOptions::default(), None)
            .unwrap();
    }
    assert_eq!(plan_fallbacks(), before, "matched steps must not count");

    // Each mismatched step (a different batch shape, the NMT bucketing
    // case) falls back to the legacy interpreter and counts exactly once,
    // even though a train step runs both a forward and a backward pass.
    let mut mismatched = HashMap::new();
    mismatched.insert(x, Tensor::full(Shape::d1(64), 0.5));
    for step in 1..=3u64 {
        let stats = exec
            .train_step(&mismatched, loss, ExecOptions::default(), None)
            .unwrap();
        assert_eq!(stats.loss, Some(32.0), "legacy fallback must still run");
        assert_eq!(
            plan_fallbacks(),
            before + step,
            "exactly one increment per mismatched step"
        );
    }

    // The forward-only entry points observe fallbacks the same way.
    exec.forward(&mismatched, loss, ExecOptions::default(), None)
        .unwrap();
    assert_eq!(plan_fallbacks(), before + 4);
    exec.forward_many(&mismatched, &[loss], ExecOptions::default(), None)
        .unwrap();
    assert_eq!(plan_fallbacks(), before + 5);

    // An executor with no plan installed never counts: running legacy by
    // construction is not a fallback.
    let mut bare = Executor::new(
        g,
        StashPlan::stash_all(),
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
    );
    bare.train_step(&mismatched, loss, ExecOptions::default(), None)
        .unwrap();
    assert_eq!(plan_fallbacks(), before + 5);
}
