//! Seeded property tests for the GPipe stage partitioner: every
//! partition of a random layered graph preserves the live op set, the
//! protected shapes, and the cross-stage edge set (no silently dropped
//! activations), cuts never split a parameter's consumer span, and plan
//! normalization keeps recompute segments strictly inside one stage.

use echo_graph::gir::{partition_stages, Gir};
use echo_graph::op::Saved;
use echo_graph::{
    Graph, KernelLaunch, NodeId, NodeKind, Operator, Result, SegmentId, StashNeeds, StashPlan,
    StashPolicy,
};
use echo_memory::LayerKind;
use echo_tensor::{Shape, Tensor};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// y = tanh(mean of inputs): arity-polymorphic elementwise op, so random
/// layered graphs with skip edges stay shape-consistent.
#[derive(Debug)]
struct Mix;

impl Operator for Mix {
    fn name(&self) -> &str {
        "mix"
    }
    fn category(&self) -> echo_device::KernelCategory {
        echo_device::KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Saved)> {
        let mut out = inputs[0].clone();
        for x in &inputs[1..] {
            out.axpy(1.0, x)?;
        }
        out.scale_inplace(1.0 / inputs.len() as f32);
        out.map_inplace(|v| v.tanh());
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let y = output.expect("mix stashes its output");
        let scale = 1.0 / inputs.len() as f32;
        let mut base = dy.clone();
        for (g, (&yv, &dyv)) in base
            .data_mut()
            .iter_mut()
            .zip(y.data().iter().zip(dy.data()))
        {
            *g = (1.0 - yv * yv) * dyv * scale;
        }
        Ok(inputs.iter().map(|_| Some(base.clone())).collect())
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::OUTPUT
    }
    fn forward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        Vec::new()
    }
    fn backward_launches(&self, _i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        Vec::new()
    }
}

/// A random layered stack: each layer owns one param consumed by *every*
/// op of the layer (so valid cuts are exactly the layer boundaries), with
/// random skip edges from earlier layers creating pass-through
/// interfaces.
fn layered_graph(
    layers: usize,
    ops_per_layer: &[usize],
    skips: &[(usize, usize)],
) -> (Arc<Graph>, Gir, Vec<NodeId>) {
    let dim = Shape::d1(8);
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let mut binding_shapes = HashMap::new();
    binding_shapes.insert(x, dim.clone());
    let mut param_shapes = HashMap::new();
    let mut prev = x;
    let mut layer_outputs: Vec<NodeId> = Vec::new();
    let mut all_ops: Vec<NodeId> = Vec::new();
    for (l, &n_ops) in ops_per_layer.iter().enumerate().take(layers) {
        let w = g.param(format!("w{l}"), LayerKind::Rnn);
        param_shapes.insert(w, dim.clone());
        for o in 0..n_ops {
            let mut inputs = vec![prev, w];
            // Skip edges reference an earlier layer's final output.
            for &(sl, tl) in skips {
                if tl == l && o == 0 && sl < layer_outputs.len() {
                    inputs.push(layer_outputs[sl]);
                }
            }
            prev = g.apply(format!("l{l}o{o}"), Arc::new(Mix), &inputs, LayerKind::Rnn);
            all_ops.push(prev);
        }
        layer_outputs.push(prev);
    }
    let loss = prev;
    let graph = Arc::new(g);
    let gir = Gir::from_graph(Arc::clone(&graph), &binding_shapes, &param_shapes, &[loss]).unwrap();
    (graph, gir, all_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitions_preserve_structure(
        layers in 2usize..6,
        widths in proptest::collection::vec(1usize..4, 6),
        skip_seed in 0usize..8,
        stages in 1usize..5,
    ) {
        let widths = &widths[..layers];
        let skips: Vec<(usize, usize)> = (1..layers)
            .filter(|&l| (l + skip_seed) % 3 == 0 && l >= 2)
            .map(|l| (l - 2, l))
            .collect();
        let (graph, gir, all_ops) = layered_graph(layers, widths, &skips);
        prop_assume!(stages <= layers); // enough layer boundaries for the cuts
        let part = partition_stages(&gir, stages).unwrap();

        // The structural contract: op partition, protected shapes,
        // cross-stage edge coverage, interface chaining.
        part.validate().unwrap();
        prop_assert_eq!(part.stage_count(), stages);
        prop_assert_eq!(part.live_op_count(), all_ops.len());

        // Stages are contiguous, monotone index ranges covering all ops.
        let stage_seq: Vec<usize> =
            all_ops.iter().map(|&id| part.stage_of(id).unwrap()).collect();
        for w in stage_seq.windows(2) {
            prop_assert!(w[0] <= w[1], "non-monotone stages {stage_seq:?}");
        }

        // No cut splits a parameter's consumer span: all consumers of a
        // param sit in its owner's stage.
        for node in graph.nodes() {
            if !matches!(node.kind, NodeKind::Param) {
                continue;
            }
            let stages_used: Vec<usize> = graph
                .consumers(node.id)
                .iter()
                .filter_map(|&c| part.stage_of(c))
                .collect();
            prop_assert!(
                stages_used.windows(2).all(|w| w[0] == w[1]),
                "param {} split across stages {stages_used:?}",
                node.name
            );
        }

        // Pass-through: any edge skipping a stage appears in every
        // intermediate interface (checked by validate, re-checked here
        // for the specific skip edges we injected).
        for node in graph.nodes() {
            let Some(su) = part.stage_of(node.id) else { continue };
            for &c in graph.consumers(node.id) {
                let Some(sc) = part.stage_of(c) else { continue };
                for mid in su + 1..=sc {
                    prop_assert!(
                        part.stage(mid).recv_interface.contains(&node.id),
                        "activation {} dropped between stages {su} and {sc}",
                        node.id
                    );
                }
            }
        }
    }

    #[test]
    fn normalized_plans_never_straddle_cuts(
        layers in 2usize..6,
        widths in proptest::collection::vec(2usize..4, 6),
        stages in 2usize..4,
        seg_stride in 1usize..4,
    ) {
        let widths = &widths[..layers];
        let (graph, gir, all_ops) = layered_graph(layers, widths, &[]);
        prop_assume!(stages <= layers);
        let part = partition_stages(&gir, stages).unwrap();

        // A plan with segments laid down in fixed strides across the op
        // list — many will straddle cuts on purpose.
        let mut plan = StashPlan::stash_all();
        for (i, &id) in all_ops.iter().enumerate() {
            if id == *all_ops.last().unwrap() {
                continue; // keep the loss stashed
            }
            plan.set(
                id,
                StashPolicy::Recompute(SegmentId { id: i / seg_stride, pool: 0 }),
            );
        }
        let norm = part.normalized_plan(&plan);

        // Interface and protected nodes are forced to Stash.
        for sp in part.stages() {
            for &id in &sp.send_interface {
                prop_assert_eq!(norm.policy(id), StashPolicy::Stash);
            }
        }
        // Every surviving segment lies inside exactly one stage.
        for seg in 0..norm.segment_count() {
            let nodes = norm.segment_nodes(seg);
            let seg_stages: Vec<usize> = nodes
                .iter()
                .filter_map(|&id| part.stage_of(id))
                .collect();
            prop_assert!(
                seg_stages.windows(2).all(|w| w[0] == w[1]),
                "segment {seg} straddles stages {seg_stages:?}"
            );
        }
        // Stage-local plans name exactly the owned recompute nodes.
        let locals = part.stage_plans(&plan);
        let local_recompute: usize = locals.iter().map(StashPlan::recompute_count).sum();
        prop_assert_eq!(local_recompute, norm.recompute_count());
        let _ = graph;
    }
}
