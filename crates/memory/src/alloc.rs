//! The tagged device-memory allocator.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which part of the model an allocation belongs to — the paper's
/// "by layer type" breakdown axis (Figure 5, left bar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// Word embedding layers.
    Embedding,
    /// The LSTM RNN layers (encoder and decoder).
    Rnn,
    /// The attention mechanism, including the scoring function.
    Attention,
    /// The output projection / loss layers.
    Output,
    /// Everything else (optimizer bookkeeping, I/O staging, …).
    Other,
}

impl LayerKind {
    /// All variants in display order.
    pub const ALL: [LayerKind; 5] = [
        LayerKind::Embedding,
        LayerKind::Rnn,
        LayerKind::Attention,
        LayerKind::Output,
        LayerKind::Other,
    ];
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Embedding => "embedding",
            LayerKind::Rnn => "rnn",
            LayerKind::Attention => "attention",
            LayerKind::Output => "output",
            LayerKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// What role an allocation plays — the paper's "by data structure" axis
/// (Figure 5, right bar; §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DataStructureKind {
    /// Space reserved for a layer's inputs and outputs.
    Placeholder,
    /// Parameters, their gradients and optimizer state.
    Weight,
    /// Intermediate values stashed by the forward pass for backward reuse
    /// (cuDNN's "reserved space") — the footprint the Echo pass attacks.
    FeatureMap,
    /// Short-lived scratch space with exclusive access.
    Workspace,
}

impl DataStructureKind {
    /// All variants in display order.
    pub const ALL: [DataStructureKind; 4] = [
        DataStructureKind::Placeholder,
        DataStructureKind::Weight,
        DataStructureKind::FeatureMap,
        DataStructureKind::Workspace,
    ];
}

impl fmt::Display for DataStructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataStructureKind::Placeholder => "placeholder",
            DataStructureKind::Weight => "weights",
            DataStructureKind::FeatureMap => "feature maps",
            DataStructureKind::Workspace => "workspace",
        };
        f.write_str(s)
    }
}

/// Full tag attached to every allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocationTag {
    /// Layer-type axis.
    pub layer: LayerKind,
    /// Data-structure axis.
    pub kind: DataStructureKind,
    /// Free-form label for debugging ("scores", "lstm_l0_h", …).
    pub label: String,
}

impl AllocationTag {
    /// Creates a tag.
    pub fn new(layer: LayerKind, kind: DataStructureKind, label: impl Into<String>) -> Self {
        AllocationTag {
            layer,
            kind,
            label: label.into(),
        }
    }
}

/// Error returned when an allocation would exceed device capacity.
///
/// This is the simulator's `cudaErrorMemoryAllocation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes live at the time of the request.
    pub live: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Tag of the failing request.
    pub tag: AllocationTag,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes for {}/{} `{}` with {} of {} bytes live",
            self.requested, self.tag.layer, self.tag.kind, self.tag.label, self.live, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    live: HashMap<u64, (u64, AllocationTag)>,
    live_bytes: u64,
    live_by_tag: HashMap<(LayerKind, DataStructureKind), u64>,
    peak_bytes: u64,
    /// Per-(layer, kind) live bytes captured at the moment of peak.
    peak_breakdown: HashMap<(LayerKind, DataStructureKind), u64>,
    /// Independent per-(layer, kind) maxima over the whole run — what a
    /// category-by-category profiler (like MXNet's) reports.
    max_by_tag: HashMap<(LayerKind, DataStructureKind), u64>,
    total_allocs: u64,
}

/// The simulated device memory.
///
/// Cheap to clone and share: the handle is an `Arc` around the accounting
/// state, so the graph executor, workspace pools and profiler can all hold
/// it. See the [crate documentation](crate) for the role it plays.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
    /// Bytes the CUDA context + fragmentation would add on top of what the
    /// profiler sees (the striped bar of Figure 5).
    context_overhead: u64,
    fragmentation: f64,
}

impl DeviceMemory {
    /// Creates a device with `capacity` bytes and the default context
    /// overhead model (600 MiB context, 4% fragmentation), calibrated to the
    /// profiler-vs-`nvidia-smi` gap the paper reports.
    pub fn with_capacity(capacity: u64) -> Self {
        DeviceMemory {
            inner: Arc::new(Mutex::new(Inner::default())),
            capacity,
            context_overhead: 600 << 20,
            fragmentation: 0.04,
        }
    }

    /// A 12 GiB device (Titan Xp / Titan V class).
    pub fn titan_xp() -> Self {
        DeviceMemory::with_capacity(12 << 30)
    }

    /// Creates a device with an explicit overhead model.
    pub fn with_overhead_model(capacity: u64, context_overhead: u64, fragmentation: f64) -> Self {
        DeviceMemory {
            inner: Arc::new(Mutex::new(Inner::default())),
            capacity,
            context_overhead,
            fragmentation,
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `bytes` with `tag`, returning an RAII handle that frees on
    /// drop.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the allocation (plus the context-overhead
    /// model) would exceed capacity.
    pub fn alloc(&self, bytes: u64, tag: AllocationTag) -> Result<Allocation, OomError> {
        let mut inner = self.inner.lock();
        let projected = self.overheads(inner.live_bytes + bytes) + inner.live_bytes + bytes;
        if projected > self.capacity {
            return Err(OomError {
                requested: bytes,
                live: inner.live_bytes,
                capacity: self.capacity,
                tag,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.live.insert(id, (bytes, tag.clone()));
        inner.live_bytes += bytes;
        *inner.live_by_tag.entry((tag.layer, tag.kind)).or_default() += bytes;
        let live_now = inner.live_by_tag[&(tag.layer, tag.kind)];
        let entry = inner.max_by_tag.entry((tag.layer, tag.kind)).or_default();
        *entry = (*entry).max(live_now);
        inner.total_allocs += 1;
        if inner.live_bytes > inner.peak_bytes {
            inner.peak_bytes = inner.live_bytes;
            inner.peak_breakdown = inner.live_by_tag.clone();
        }
        Ok(Allocation {
            id,
            bytes,
            mem: self.clone(),
        })
    }

    fn overheads(&self, live: u64) -> u64 {
        self.context_overhead + (live as f64 * self.fragmentation) as u64
    }

    fn free(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some((bytes, tag)) = inner.live.remove(&id) {
            inner.live_bytes -= bytes;
            if let Some(v) = inner.live_by_tag.get_mut(&(tag.layer, tag.kind)) {
                *v -= bytes;
            }
        }
    }

    /// Bytes currently live (profiler view, excludes context overhead).
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live_bytes
    }

    /// Peak live bytes observed so far (profiler view).
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// What `nvidia-smi` would report at the peak: profiler bytes plus the
    /// CUDA-context and fragmentation overheads.
    pub fn nvidia_smi_peak_bytes(&self) -> u64 {
        let peak = self.peak_bytes();
        peak + self.overheads(peak)
    }

    /// Number of allocations performed over the device's lifetime.
    pub fn total_allocs(&self) -> u64 {
        self.inner.lock().total_allocs
    }

    /// Per-(layer, kind) live bytes captured at the moment of peak.
    pub fn peak_breakdown(&self) -> HashMap<(LayerKind, DataStructureKind), u64> {
        self.inner.lock().peak_breakdown.clone()
    }

    /// Independent per-(layer, kind) maxima over the whole run. This is
    /// the MXNet-profiler view: each category's own high-water mark, even
    /// if the maxima did not occur simultaneously (so the sum can exceed
    /// [`DeviceMemory::peak_bytes`]).
    pub fn max_breakdown(&self) -> HashMap<(LayerKind, DataStructureKind), u64> {
        self.inner.lock().max_by_tag.clone()
    }

    /// Current per-(layer, kind) live bytes.
    pub fn live_breakdown(&self) -> HashMap<(LayerKind, DataStructureKind), u64> {
        self.inner.lock().live_by_tag.clone()
    }

    /// Forgets the recorded peak (live allocations are kept), so a fresh
    /// peak can be measured for a new phase.
    pub fn reset_peak(&self) {
        let mut inner = self.inner.lock();
        inner.peak_bytes = inner.live_bytes;
        inner.peak_breakdown = inner.live_by_tag.clone();
    }

    /// Records one *planned* execution phase in a single call: the caller
    /// has statically computed that the phase will transiently hold
    /// `delta` bytes on top of what is live now, with the given
    /// per-(layer, kind) breakdown at the phase's peak moment.
    ///
    /// A plan-driven executor uses this instead of issuing one `alloc` per
    /// node per step. `assumed_workspace` names the portion of `delta`
    /// that the phase serves through real (per-lease) workspace
    /// allocations; whatever part of it is *already* live — pools retain
    /// their high-water buffers across steps — is subtracted so repeated
    /// phases do not double-count it.
    ///
    /// The peak breakdown snapshot is replaced by `breakdown` when the
    /// planned phase sets a new peak; `breakdown` must therefore describe
    /// the full live set at the phase peak (persistent allocations
    /// included), not just the delta.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the projected phase peak (plus the
    /// context-overhead model) would exceed capacity, before any compute
    /// runs — the planned counterpart of failing mid-iteration.
    pub fn record_planned_peak(
        &self,
        delta: u64,
        assumed_workspace: u64,
        breakdown: &[((LayerKind, DataStructureKind), u64)],
    ) -> Result<(), OomError> {
        let mut inner = self.inner.lock();
        let live_workspace: u64 = inner
            .live_by_tag
            .iter()
            .filter(|((_, kind), _)| *kind == DataStructureKind::Workspace)
            .map(|(_, &bytes)| bytes)
            .sum();
        let overlap = assumed_workspace.min(live_workspace).min(delta);
        let candidate = inner.live_bytes + (delta - overlap);
        if candidate + self.overheads(candidate) > self.capacity {
            return Err(OomError {
                requested: delta,
                live: inner.live_bytes,
                capacity: self.capacity,
                tag: AllocationTag::new(
                    LayerKind::Other,
                    DataStructureKind::Placeholder,
                    "planned_step",
                ),
            });
        }
        for &(key, bytes) in breakdown {
            let e = inner.max_by_tag.entry(key).or_default();
            *e = (*e).max(bytes);
        }
        if candidate > inner.peak_bytes {
            inner.peak_bytes = candidate;
            inner.peak_breakdown = breakdown.iter().copied().collect();
        }
        Ok(())
    }
}

/// RAII handle to a device allocation; frees its bytes on drop.
#[derive(Debug)]
pub struct Allocation {
    id: u64,
    bytes: u64,
    mem: DeviceMemory,
}

impl Allocation {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.mem.free(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(layer: LayerKind, kind: DataStructureKind) -> AllocationTag {
        AllocationTag::new(layer, kind, "t")
    }

    fn plain_device(capacity: u64) -> DeviceMemory {
        DeviceMemory::with_overhead_model(capacity, 0, 0.0)
    }

    #[test]
    fn alloc_free_accounting() {
        let mem = plain_device(1000);
        let a = mem
            .alloc(400, tag(LayerKind::Rnn, DataStructureKind::FeatureMap))
            .unwrap();
        let b = mem
            .alloc(300, tag(LayerKind::Attention, DataStructureKind::Workspace))
            .unwrap();
        assert_eq!(mem.live_bytes(), 700);
        drop(a);
        assert_eq!(mem.live_bytes(), 300);
        drop(b);
        assert_eq!(mem.live_bytes(), 0);
        assert_eq!(mem.peak_bytes(), 700);
        assert_eq!(mem.total_allocs(), 2);
    }

    #[test]
    fn oom_at_capacity() {
        let mem = plain_device(1000);
        let _a = mem
            .alloc(900, tag(LayerKind::Rnn, DataStructureKind::Weight))
            .unwrap();
        let err = mem
            .alloc(200, tag(LayerKind::Rnn, DataStructureKind::Weight))
            .unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.live, 900);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn context_overhead_counts_against_capacity() {
        let mem = DeviceMemory::with_overhead_model(1000, 500, 0.0);
        assert!(mem
            .alloc(600, tag(LayerKind::Other, DataStructureKind::Placeholder))
            .is_err());
        assert!(mem
            .alloc(400, tag(LayerKind::Other, DataStructureKind::Placeholder))
            .is_ok());
    }

    #[test]
    fn peak_breakdown_snapshot_is_taken_at_peak() {
        let mem = plain_device(10_000);
        let a = mem
            .alloc(
                100,
                tag(LayerKind::Attention, DataStructureKind::FeatureMap),
            )
            .unwrap();
        {
            let _b = mem
                .alloc(900, tag(LayerKind::Rnn, DataStructureKind::Workspace))
                .unwrap();
        } // drops: peak was 1000 with both live
        let _c = mem
            .alloc(200, tag(LayerKind::Output, DataStructureKind::Weight))
            .unwrap();
        let bd = mem.peak_breakdown();
        assert_eq!(
            bd.get(&(LayerKind::Rnn, DataStructureKind::Workspace)),
            Some(&900)
        );
        assert_eq!(
            bd.get(&(LayerKind::Attention, DataStructureKind::FeatureMap)),
            Some(&100)
        );
        assert!(!bd.contains_key(&(LayerKind::Output, DataStructureKind::Weight)));
        drop(a);
    }

    #[test]
    fn nvidia_smi_exceeds_profiler_view() {
        let mem = DeviceMemory::with_capacity(12 << 30);
        let _a = mem
            .alloc(1 << 30, tag(LayerKind::Rnn, DataStructureKind::FeatureMap))
            .unwrap();
        assert!(mem.nvidia_smi_peak_bytes() > mem.peak_bytes());
    }

    #[test]
    fn reset_peak_rebases_on_live() {
        let mem = plain_device(10_000);
        {
            let _a = mem
                .alloc(5000, tag(LayerKind::Rnn, DataStructureKind::FeatureMap))
                .unwrap();
        }
        let _b = mem
            .alloc(100, tag(LayerKind::Rnn, DataStructureKind::Weight))
            .unwrap();
        assert_eq!(mem.peak_bytes(), 5000);
        mem.reset_peak();
        assert_eq!(mem.peak_bytes(), 100);
    }

    #[test]
    fn shared_handles_see_same_state() {
        let mem = plain_device(1000);
        let clone = mem.clone();
        let _a = mem
            .alloc(500, tag(LayerKind::Rnn, DataStructureKind::Weight))
            .unwrap();
        assert_eq!(clone.live_bytes(), 500);
    }
}
