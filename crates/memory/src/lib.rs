//! Simulated GPU device memory with byte-exact, tag-aware accounting.
//!
//! The paper's memory claims (2× footprint reduction, the 59% → 6% collapse
//! of the attention layers' share, the workspace staying `O(B·T·H)`) are all
//! statements about *what the framework allocates and when*. This crate is
//! the substitute for the 12 GB GDDR5X of a Titan Xp plus the MXNet memory
//! profiler: every tensor the graph executor materializes is registered
//! here, tagged with
//!
//! * the [`LayerKind`] it belongs to (RNN, attention, output, …) and
//! * its [`DataStructureKind`] (placeholder, weight, feature map, workspace),
//!
//! matching the two axes of the paper's Figure 5 breakdown. The allocator
//! enforces a capacity and fails with [`OomError`] exactly where the real
//! GPU would, which is what produces the "memory capacity wall" of
//! Figure 4(b) and the dashed regions of Figure 16.
//!
//! Allocation is *accounting-only*: the numeric plane keeps real data in
//! host `Tensor`s; this crate tracks the bytes a GPU-resident copy would
//! occupy.
//!
//! # Example
//!
//! ```
//! use echo_memory::{AllocationTag, DataStructureKind, DeviceMemory, LayerKind};
//!
//! let mem = DeviceMemory::with_capacity(2 << 30);
//! let tag = AllocationTag::new(LayerKind::Attention, DataStructureKind::FeatureMap, "scores");
//! let buf = mem.alloc(4096, tag)?;
//! assert_eq!(mem.live_bytes(), 4096);
//! drop(buf);
//! assert_eq!(mem.live_bytes(), 0);
//! assert_eq!(mem.peak_bytes(), 4096);
//! # Ok::<(), echo_memory::OomError>(())
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod profiler;
pub mod scratch;
pub mod tensor_pool;
pub mod workspace;

pub use alloc::{Allocation, AllocationTag, DataStructureKind, DeviceMemory, LayerKind, OomError};
pub use profiler::{BreakdownRow, MemoryBreakdown};
pub use scratch::ScratchArena;
pub use tensor_pool::{TensorPool, TensorPoolStats};
pub use workspace::{WorkspaceLease, WorkspacePool};
