//! The memory profiler: breakdown reports over allocator snapshots.
//!
//! This is the substitute for the MXNet GPU memory profiler the paper uses
//! to produce Figures 5 and 14: the same peak snapshot is classified along
//! two axes — layer type and data structure — and rendered as percentage
//! rows.

use crate::alloc::{DataStructureKind, DeviceMemory, LayerKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One row of a breakdown table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Category name ("attention", "feature maps", …).
    pub category: String,
    /// Bytes attributed to the category at the peak.
    pub bytes: u64,
    /// Share of the profiled peak, in `[0, 1]`.
    pub fraction: f64,
}

/// A two-axis memory breakdown of a peak-usage snapshot.
///
/// # Example
///
/// ```
/// use echo_memory::{AllocationTag, DataStructureKind, DeviceMemory, LayerKind, MemoryBreakdown};
///
/// let mem = DeviceMemory::with_capacity(1 << 30);
/// let _a = mem.alloc(
///     3000,
///     AllocationTag::new(LayerKind::Attention, DataStructureKind::FeatureMap, "scores"),
/// )?;
/// let _b = mem.alloc(
///     1000,
///     AllocationTag::new(LayerKind::Rnn, DataStructureKind::Weight, "w"),
/// )?;
/// let report = MemoryBreakdown::at_peak(&mem);
/// assert_eq!(report.layer_fraction(LayerKind::Attention), 0.75);
/// assert_eq!(report.kind_fraction(DataStructureKind::FeatureMap), 0.75);
/// # Ok::<(), echo_memory::OomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Total profiled bytes at the peak.
    pub total_bytes: u64,
    /// What `nvidia-smi` would have reported at the same moment.
    pub nvidia_smi_bytes: u64,
    by_layer: HashMap<LayerKind, u64>,
    by_kind: HashMap<DataStructureKind, u64>,
}

impl MemoryBreakdown {
    /// Builds a breakdown from the device's peak snapshot.
    pub fn at_peak(mem: &DeviceMemory) -> Self {
        Self::from_snapshot(mem, mem.peak_breakdown())
    }

    /// Builds a breakdown from per-category maxima (the MXNet-profiler
    /// view): each category's own high-water mark, which surfaces
    /// short-lived categories such as the recomputation workspace.
    pub fn at_category_maxima(mem: &DeviceMemory) -> Self {
        Self::from_snapshot(mem, mem.max_breakdown())
    }

    fn from_snapshot(
        mem: &DeviceMemory,
        snapshot: std::collections::HashMap<(LayerKind, DataStructureKind), u64>,
    ) -> Self {
        let mut by_layer: HashMap<LayerKind, u64> = HashMap::new();
        let mut by_kind: HashMap<DataStructureKind, u64> = HashMap::new();
        let mut total = 0u64;
        for ((layer, kind), bytes) in snapshot {
            *by_layer.entry(layer).or_default() += bytes;
            *by_kind.entry(kind).or_default() += bytes;
            total += bytes;
        }
        MemoryBreakdown {
            total_bytes: total,
            nvidia_smi_bytes: mem.nvidia_smi_peak_bytes(),
            by_layer,
            by_kind,
        }
    }

    /// Bytes attributed to a layer type at the peak.
    pub fn layer_bytes(&self, layer: LayerKind) -> u64 {
        self.by_layer.get(&layer).copied().unwrap_or(0)
    }

    /// Bytes attributed to a data-structure kind at the peak.
    pub fn kind_bytes(&self, kind: DataStructureKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Fraction of the profiled peak attributed to a layer type.
    pub fn layer_fraction(&self, layer: LayerKind) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.layer_bytes(layer) as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of the profiled peak attributed to a data-structure kind.
    pub fn kind_fraction(&self, kind: DataStructureKind) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.kind_bytes(kind) as f64 / self.total_bytes as f64
        }
    }

    /// Rows of the by-layer bar (Figure 5 left), descending by bytes.
    pub fn layer_rows(&self) -> Vec<BreakdownRow> {
        let mut rows: Vec<BreakdownRow> = LayerKind::ALL
            .iter()
            .map(|&l| BreakdownRow {
                category: l.to_string(),
                bytes: self.layer_bytes(l),
                fraction: self.layer_fraction(l),
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.bytes));
        rows
    }

    /// Rows of the by-data-structure bar (Figure 5 right), descending.
    pub fn kind_rows(&self) -> Vec<BreakdownRow> {
        let mut rows: Vec<BreakdownRow> = DataStructureKind::ALL
            .iter()
            .map(|&k| BreakdownRow {
                category: k.to_string(),
                bytes: self.kind_bytes(k),
                fraction: self.kind_fraction(k),
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.bytes));
        rows
    }

    /// The profiler-vs-`nvidia-smi` discrepancy (Figure 5's striped bar).
    pub fn unattributed_bytes(&self) -> u64 {
        self.nvidia_smi_bytes.saturating_sub(self.total_bytes)
    }
}

impl fmt::Display for MemoryBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "peak {:.2} GiB (nvidia-smi {:.2} GiB)",
            self.total_bytes as f64 / (1u64 << 30) as f64,
            self.nvidia_smi_bytes as f64 / (1u64 << 30) as f64
        )?;
        writeln!(f, "  by layer type:")?;
        for row in self.layer_rows() {
            writeln!(
                f,
                "    {:<12} {:>10.1} MiB  {:>5.1}%",
                row.category,
                row.bytes as f64 / (1u64 << 20) as f64,
                row.fraction * 100.0
            )?;
        }
        writeln!(f, "  by data structure:")?;
        for row in self.kind_rows() {
            writeln!(
                f,
                "    {:<12} {:>10.1} MiB  {:>5.1}%",
                row.category,
                row.bytes as f64 / (1u64 << 20) as f64,
                row.fraction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationTag;

    fn tagged(
        mem: &DeviceMemory,
        layer: LayerKind,
        kind: DataStructureKind,
        bytes: u64,
    ) -> crate::Allocation {
        mem.alloc(bytes, AllocationTag::new(layer, kind, "x"))
            .unwrap()
    }

    #[test]
    fn two_axis_totals_agree() {
        let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
        let _a = tagged(
            &mem,
            LayerKind::Attention,
            DataStructureKind::FeatureMap,
            600,
        );
        let _b = tagged(&mem, LayerKind::Rnn, DataStructureKind::FeatureMap, 300);
        let _c = tagged(&mem, LayerKind::Output, DataStructureKind::Weight, 100);
        let bd = MemoryBreakdown::at_peak(&mem);
        assert_eq!(bd.total_bytes, 1000);
        let layer_sum: u64 = LayerKind::ALL.iter().map(|&l| bd.layer_bytes(l)).sum();
        let kind_sum: u64 = DataStructureKind::ALL
            .iter()
            .map(|&k| bd.kind_bytes(k))
            .sum();
        assert_eq!(layer_sum, 1000);
        assert_eq!(kind_sum, 1000);
        assert_eq!(bd.kind_fraction(DataStructureKind::FeatureMap), 0.9);
    }

    #[test]
    fn rows_sorted_descending() {
        let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
        let _a = tagged(&mem, LayerKind::Rnn, DataStructureKind::Weight, 10);
        let _b = tagged(
            &mem,
            LayerKind::Attention,
            DataStructureKind::FeatureMap,
            90,
        );
        let bd = MemoryBreakdown::at_peak(&mem);
        let rows = bd.layer_rows();
        assert_eq!(rows[0].category, "attention");
        assert!(rows[0].bytes >= rows[1].bytes);
    }

    #[test]
    fn breakdown_reflects_peak_not_current() {
        let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
        {
            let _big = tagged(
                &mem,
                LayerKind::Attention,
                DataStructureKind::FeatureMap,
                5000,
            );
        }
        let _small = tagged(&mem, LayerKind::Rnn, DataStructureKind::Weight, 10);
        let bd = MemoryBreakdown::at_peak(&mem);
        assert_eq!(bd.total_bytes, 5000);
        assert_eq!(bd.layer_bytes(LayerKind::Attention), 5000);
    }

    #[test]
    fn display_renders_percentages() {
        let mem = DeviceMemory::with_capacity(1 << 30);
        let _a = tagged(
            &mem,
            LayerKind::Attention,
            DataStructureKind::FeatureMap,
            1 << 20,
        );
        let text = MemoryBreakdown::at_peak(&mem).to_string();
        assert!(text.contains("attention"));
        assert!(text.contains("feature maps"));
        assert!(text.contains('%'));
    }

    #[test]
    fn unattributed_gap_is_overhead() {
        let mem = DeviceMemory::with_overhead_model(1 << 30, 1000, 0.0);
        let _a = tagged(&mem, LayerKind::Rnn, DataStructureKind::Weight, 500);
        let bd = MemoryBreakdown::at_peak(&mem);
        assert_eq!(bd.unattributed_bytes(), 1000);
    }
}
