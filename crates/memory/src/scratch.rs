//! Host-side scratch arenas for compute kernels.
//!
//! The packed GEMM backend needs per-call pack buffers (contiguous copies
//! of A/B panels). Allocating them with `Vec::new` on every call would put
//! a pair of multi-hundred-kilobyte allocations on the hottest path of
//! training; the [`WorkspacePool`](crate::WorkspacePool) already solves the
//! identical problem for the simulated device plane (one high-water buffer,
//! leased to one consumer at a time). [`ScratchArena`] is the host-plane
//! twin: a small free-list of real `Vec<f32>` buffers that grow to their
//! high-water sizes once and are then reused for the remainder of the
//! process. Kernels keep one arena per thread (`thread_local!`), so leases
//! never contend and never need locking — the arena is deliberately
//! `!Sync`, mirroring the workspace pool's exclusivity invariant at the
//! type level instead of with a runtime panic.

use std::cell::RefCell;

#[derive(Debug, Default)]
struct ArenaInner {
    /// Retained buffers, available for lease. Contents are unspecified
    /// between leases.
    free: Vec<Vec<f32>>,
    /// Largest single lease ever served, in elements.
    high_water_elems: usize,
    /// Number of leases served.
    leases: u64,
    /// Leases that were satisfied without growing a retained buffer.
    reuse_hits: u64,
}

/// A reusable pool of host `f32` scratch buffers.
///
/// # Example
///
/// ```
/// use echo_memory::ScratchArena;
///
/// let arena = ScratchArena::new();
/// for _ in 0..100 {
///     arena.with_f32(1024, |buf| buf.fill(1.0));
/// }
/// assert_eq!(arena.lease_count(), 100);
/// // The first lease allocates; the other 99 reuse the same buffer.
/// assert_eq!(arena.reuse_hits(), 99);
/// assert_eq!(arena.high_water_elems(), 1024);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    inner: RefCell<ArenaInner>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub const fn new() -> Self {
        ScratchArena {
            inner: RefCell::new(ArenaInner {
                free: Vec::new(),
                high_water_elems: 0,
                leases: 0,
                reuse_hits: 0,
            }),
        }
    }

    /// Leases a buffer of exactly `elems` elements for the duration of `f`.
    ///
    /// The buffer's contents are **unspecified** (it may hold data from a
    /// previous lease); callers must fully initialize the region they read.
    /// Leases nest: taking a second buffer inside `f` works and draws from
    /// the same free list.
    pub fn with_f32<R>(&self, elems: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
        let mut buf = {
            let mut inner = self.inner.borrow_mut();
            inner.leases += 1;
            inner.high_water_elems = inner.high_water_elems.max(elems);
            // Prefer the retained buffer with the largest capacity so small
            // leases don't force a big buffer to be reallocated later.
            let best = inner
                .free
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    let b = inner.free.swap_remove(i);
                    if b.capacity() >= elems {
                        inner.reuse_hits += 1;
                    }
                    b
                }
                None => Vec::new(),
            }
        };
        // Grow without zeroing what a previous lease already touched;
        // `resize` zero-fills only the newly exposed tail.
        buf.resize(elems, 0.0);
        let result = f(&mut buf);
        self.inner.borrow_mut().free.push(buf);
        result
    }

    /// Largest lease ever served, in elements.
    pub fn high_water_elems(&self) -> usize {
        self.inner.borrow().high_water_elems
    }

    /// Number of leases served.
    pub fn lease_count(&self) -> u64 {
        self.inner.borrow().leases
    }

    /// Leases served without growing a retained buffer.
    pub fn reuse_hits(&self) -> u64 {
        self.inner.borrow().reuse_hits
    }

    /// Number of buffers currently retained for reuse.
    pub fn retained_buffers(&self) -> usize {
        self.inner.borrow().free.len()
    }

    /// Drops every retained buffer (e.g. at the end of training).
    pub fn release_all(&self) {
        self.inner.borrow_mut().free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_across_leases() {
        let arena = ScratchArena::new();
        let mut seen_ptr = None;
        for _ in 0..10 {
            arena.with_f32(512, |buf| {
                let ptr = buf.as_ptr();
                if let Some(prev) = seen_ptr {
                    assert_eq!(prev, ptr, "same backing buffer every lease");
                }
                seen_ptr = Some(ptr);
            });
        }
        assert_eq!(arena.lease_count(), 10);
        assert_eq!(arena.reuse_hits(), 9);
        assert_eq!(arena.retained_buffers(), 1);
    }

    #[test]
    fn nested_leases_draw_distinct_buffers() {
        let arena = ScratchArena::new();
        arena.with_f32(64, |a| {
            a.fill(1.0);
            arena.with_f32(64, |b| {
                b.fill(2.0);
                assert_ne!(a.as_ptr(), b.as_ptr());
            });
            assert!(a.iter().all(|&v| v == 1.0), "inner lease must not alias");
        });
        assert_eq!(arena.retained_buffers(), 2);
    }

    #[test]
    fn grows_to_high_water_and_new_tail_is_zeroed() {
        let arena = ScratchArena::new();
        arena.with_f32(16, |buf| buf.fill(7.0));
        arena.with_f32(32, |buf| {
            // Reused prefix is unspecified, but the grown tail is zeroed.
            assert_eq!(&buf[16..], &[0.0; 16]);
        });
        assert_eq!(arena.high_water_elems(), 32);
        arena.release_all();
        assert_eq!(arena.retained_buffers(), 0);
    }
}
