//! Step-persistent recycling of owned tensor storage.
//!
//! [`ScratchArena`](crate::ScratchArena) serves *scoped* leases: a kernel
//! borrows a slice for the duration of one call. The plan-driven executor
//! has a different lifetime pattern — it frees a transient value at one
//! point of the step (its last use) and materializes a same-sized value at
//! another (a replay staging copy, a gradient seed, an all-reduce
//! snapshot), with no common scope between the two. [`TensorPool`] covers
//! that pattern: freed storage is *returned* to the pool as an owned
//! `Vec<f32>` and *taken* later, possibly in a different function, without
//! borrowing the pool across the gap.
//!
//! The pool is deliberately small and bounded: retaining every freed
//! buffer of a training step would just move the working set from the
//! allocator into the pool. It keeps at most `max_buffers` vectors,
//! preferring to retain the largest capacities (a big buffer can serve any
//! smaller request; the reverse costs a reallocation).
//!
//! Like the arena, the pool is host-plane only: the simulated device
//! accounting for the storage it recycles is driven by the execution
//! plan's slot table, not by individual `alloc`/`free` calls.

/// A bounded free-list of owned `f32` buffers.
///
/// # Example
///
/// ```
/// use echo_memory::TensorPool;
///
/// let mut pool = TensorPool::new();
/// pool.put(vec![0.0; 1024]);
/// let buf = pool.take(512); // served from the retained 1024-capacity vec
/// assert_eq!(buf.len(), 512);
/// assert_eq!(pool.reuse_hits(), 1);
/// ```
#[derive(Debug)]
pub struct TensorPool {
    free: Vec<Vec<f32>>,
    max_buffers: usize,
    takes: u64,
    reuse_hits: u64,
    high_water_elems: usize,
}

impl Default for TensorPool {
    fn default() -> Self {
        TensorPool::new()
    }
}

impl TensorPool {
    /// Default retention bound: enough for the executor's staging needs
    /// without hoarding a whole step's worth of transients.
    pub const DEFAULT_MAX_BUFFERS: usize = 16;

    /// Creates an empty pool with the default retention bound.
    pub fn new() -> Self {
        TensorPool::with_max_buffers(Self::DEFAULT_MAX_BUFFERS)
    }

    /// Creates an empty pool retaining at most `max_buffers` buffers.
    pub fn with_max_buffers(max_buffers: usize) -> Self {
        TensorPool {
            free: Vec::new(),
            max_buffers,
            takes: 0,
            reuse_hits: 0,
            high_water_elems: 0,
        }
    }

    /// Takes a buffer of exactly `elems` elements.
    ///
    /// Served from the retained buffer with the smallest sufficient
    /// capacity when one exists (best fit), freshly allocated otherwise.
    /// Contents are **unspecified** except that the buffer's length is
    /// `elems`; callers must fully initialize the region they read.
    pub fn take(&mut self, elems: usize) -> Vec<f32> {
        self.takes += 1;
        self.high_water_elems = self.high_water_elems.max(elems);
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= elems)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                self.reuse_hits += 1;
                let mut buf = self.free.swap_remove(i);
                // Within capacity: truncate + zero-extend, no realloc.
                buf.resize(elems, 0.0);
                buf
            }
            None => vec![0.0; elems],
        }
    }

    /// Returns a buffer's storage to the pool.
    ///
    /// When the pool is at its retention bound the smallest buffer is
    /// evicted (dropped), so the pool converges on the largest working-set
    /// sizes it has seen.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.free.len() >= self.max_buffers {
            let smallest = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("non-empty at bound");
            if self.free[smallest].capacity() >= buf.capacity() {
                return; // incoming buffer is the smallest: drop it
            }
            self.free.swap_remove(smallest);
        }
        self.free.push(buf);
    }

    /// Number of `take` calls served.
    pub fn take_count(&self) -> u64 {
        self.takes
    }

    /// Takes that were served from a retained buffer without allocating.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Largest single request ever served, in elements.
    pub fn high_water_elems(&self) -> usize {
        self.high_water_elems
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }

    /// Total capacity retained, in elements.
    pub fn retained_elems(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum()
    }

    /// One-call snapshot of every counter, for engines that report pool
    /// reuse without holding a borrow of the pool itself.
    pub fn stats(&self) -> TensorPoolStats {
        TensorPoolStats {
            takes: self.takes,
            reuse_hits: self.reuse_hits,
            high_water_elems: self.high_water_elems,
            retained: self.free.len(),
            retained_elems: self.retained_elems(),
        }
    }
}

/// Point-in-time counters of a [`TensorPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TensorPoolStats {
    /// Number of `take` calls served.
    pub takes: u64,
    /// Takes served from a retained buffer without allocating.
    pub reuse_hits: u64,
    /// Largest single request ever served, in elements.
    pub high_water_elems: usize,
    /// Buffers currently retained.
    pub retained: usize,
    /// Total capacity retained, in elements.
    pub retained_elems: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_storage() {
        let mut pool = TensorPool::new();
        let a = pool.take(100);
        assert_eq!(a.len(), 100);
        assert_eq!(pool.reuse_hits(), 0);
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.take(100);
        assert_eq!(b.as_ptr(), ptr, "same storage must be reused");
        assert_eq!(pool.reuse_hits(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut pool = TensorPool::new();
        pool.put(vec![0.0; 1000]);
        pool.put(vec![0.0; 64]);
        let b = pool.take(50);
        assert!(b.capacity() < 1000, "the 64-capacity buffer fits better");
        assert_eq!(pool.retained(), 1);
    }

    #[test]
    fn smaller_request_is_zero_extended_not_reallocated() {
        let mut pool = TensorPool::new();
        pool.put(vec![1.0; 256]);
        let b = pool.take(300);
        // 300 > 256: no retained buffer fits, fresh allocation.
        assert_eq!(b.len(), 300);
        assert!(b.iter().all(|&v| v == 0.0));
        let c = pool.take(200);
        // Served from the retained 256-capacity buffer; stale prefix may
        // remain but length is exact.
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn retention_bound_keeps_largest_buffers() {
        let mut pool = TensorPool::with_max_buffers(2);
        pool.put(vec![0.0; 10]);
        pool.put(vec![0.0; 1000]);
        pool.put(vec![0.0; 500]);
        assert_eq!(pool.retained(), 2);
        assert!(pool.retained_elems() >= 1500, "small buffer evicted");
        pool.put(vec![0.0; 5]);
        assert_eq!(pool.retained(), 2, "tiny buffer dropped at the bound");
        assert!(pool.retained_elems() >= 1500);
    }

    #[test]
    fn stats_track_requests() {
        let mut pool = TensorPool::new();
        let a = pool.take(10);
        pool.put(a);
        let _b = pool.take(8);
        assert_eq!(pool.take_count(), 2);
        assert_eq!(pool.reuse_hits(), 1);
        assert_eq!(pool.high_water_elems(), 10);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let mut pool = TensorPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.retained(), 0);
    }
}
