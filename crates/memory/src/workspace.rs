//! The shared workspace pool.
//!
//! Partial forward propagation replays the attention scoring function during
//! the backward pass, which needs scratch space. Done naively — one
//! workspace per decoder time step — the scratch alone would be
//! `O(B·T²·H)`, cancelling the optimization (paper §4.1.2). The paper's
//! observation is that LSTM computation is *sequential along the timeline*,
//! so a single workspace can be leased to one time step at a time. This
//! module enforces exactly that: a [`WorkspacePool`] holds one high-water
//! buffer, hands out at most one [`WorkspaceLease`] at a time, and panics on
//! a second concurrent lease — making a violation of the exclusivity
//! invariant a loud test failure instead of a silent memory-accounting bug.

use crate::alloc::{
    Allocation, AllocationTag, DataStructureKind, DeviceMemory, LayerKind, OomError,
};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct PoolInner {
    /// Currently reserved high-water buffer.
    buffer: Option<Allocation>,
    /// Whether a lease is outstanding.
    leased: bool,
    /// Largest request seen.
    high_water: u64,
    /// Number of leases served.
    leases: u64,
}

/// A pool that serves workspace requests from one reusable buffer.
///
/// # Example
///
/// ```
/// use echo_memory::{DeviceMemory, LayerKind, WorkspacePool};
///
/// let mem = DeviceMemory::with_capacity(1 << 30);
/// let pool = WorkspacePool::new(mem.clone(), LayerKind::Attention, "attn_ws");
/// for _step in 0..10 {
///     let lease = pool.lease(1 << 20)?; // every step reuses the same MiB
///     drop(lease);
/// }
/// assert_eq!(pool.high_water_bytes(), 1 << 20);
/// // Peak device usage is one workspace, not ten.
/// assert!(mem.peak_bytes() <= 1 << 20);
/// # Ok::<(), echo_memory::OomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkspacePool {
    mem: DeviceMemory,
    layer: LayerKind,
    label: String,
    inner: Arc<Mutex<PoolInner>>,
}

impl WorkspacePool {
    /// Creates an empty pool that allocates from `mem` under `layer`.
    pub fn new(mem: DeviceMemory, layer: LayerKind, label: impl Into<String>) -> Self {
        WorkspacePool {
            mem,
            layer,
            label: label.into(),
            inner: Arc::new(Mutex::new(PoolInner::default())),
        }
    }

    /// Leases `bytes` of workspace, growing the pool's buffer if needed.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if growing the buffer exceeds device capacity.
    ///
    /// # Panics
    ///
    /// Panics if a lease is already outstanding — workspaces require
    /// exclusive access (paper §3.2), and the sequential-timeline property
    /// is what the Echo pass relies on.
    pub fn lease(&self, bytes: u64) -> Result<WorkspaceLease, OomError> {
        let mut inner = self.inner.lock();
        assert!(
            !inner.leased,
            "workspace pool `{}`: concurrent lease requested; workspaces require exclusive access",
            self.label
        );
        let current = inner.buffer.as_ref().map_or(0, Allocation::bytes);
        if bytes > current {
            // Grow: free then reallocate at the new high-water mark. The
            // transient dip models cudaFree+cudaMalloc.
            inner.buffer = None;
            let tag =
                AllocationTag::new(self.layer, DataStructureKind::Workspace, self.label.clone());
            inner.buffer = Some(self.mem.alloc(bytes, tag)?);
        }
        inner.leased = true;
        inner.leases += 1;
        inner.high_water = inner.high_water.max(bytes);
        Ok(WorkspaceLease {
            pool: self.clone(),
            bytes,
        })
    }

    /// Largest lease ever requested.
    pub fn high_water_bytes(&self) -> u64 {
        self.inner.lock().high_water
    }

    /// Number of leases served.
    pub fn lease_count(&self) -> u64 {
        self.inner.lock().leases
    }

    /// Releases the pool's retained buffer (e.g. at the end of an
    /// iteration).
    ///
    /// # Panics
    ///
    /// Panics if a lease is outstanding.
    pub fn release_buffer(&self) {
        let mut inner = self.inner.lock();
        assert!(
            !inner.leased,
            "workspace pool `{}`: cannot release while leased",
            self.label
        );
        inner.buffer = None;
    }

    fn end_lease(&self) {
        self.inner.lock().leased = false;
    }
}

/// An exclusive lease on a pool's workspace buffer; returns it on drop.
#[derive(Debug)]
pub struct WorkspaceLease {
    pool: WorkspacePool,
    bytes: u64,
}

impl WorkspaceLease {
    /// Size of this lease.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for WorkspaceLease {
    fn drop(&mut self) {
        self.pool.end_lease();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
    }

    #[test]
    fn buffer_is_reused_across_leases() {
        let mem = mem();
        let pool = WorkspacePool::new(mem.clone(), LayerKind::Attention, "ws");
        for _ in 0..100 {
            let _l = pool.lease(1024).unwrap();
        }
        assert_eq!(pool.lease_count(), 100);
        assert_eq!(mem.peak_bytes(), 1024);
        assert_eq!(mem.total_allocs(), 1, "one buffer serves all time steps");
    }

    #[test]
    fn pool_grows_to_high_water() {
        let mem = mem();
        let pool = WorkspacePool::new(mem.clone(), LayerKind::Rnn, "ws");
        drop(pool.lease(100).unwrap());
        drop(pool.lease(500).unwrap());
        drop(pool.lease(200).unwrap());
        assert_eq!(pool.high_water_bytes(), 500);
        assert_eq!(mem.live_bytes(), 500);
        pool.release_buffer();
        assert_eq!(mem.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "exclusive access")]
    fn concurrent_lease_panics() {
        let pool = WorkspacePool::new(mem(), LayerKind::Attention, "ws");
        let _a = pool.lease(64).unwrap();
        let _b = pool.lease(64).unwrap();
    }

    #[test]
    fn oom_propagates() {
        let small = DeviceMemory::with_overhead_model(100, 0, 0.0);
        let pool = WorkspacePool::new(small, LayerKind::Attention, "ws");
        assert!(pool.lease(1000).is_err());
    }

    #[test]
    fn workspace_is_tagged_as_workspace() {
        let mem = mem();
        let pool = WorkspacePool::new(mem.clone(), LayerKind::Attention, "ws");
        let _l = pool.lease(256).unwrap();
        let bd = mem.live_breakdown();
        assert_eq!(
            bd.get(&(LayerKind::Attention, DataStructureKind::Workspace)),
            Some(&256)
        );
    }
}
