//! Failure-injection tests: the allocator and workspace pool under
//! capacity pressure — the memory-wall behaviour every OOM-dependent
//! figure (4b, 16, 17) rests on.

use echo_memory::{
    AllocationTag, DataStructureKind, DeviceMemory, LayerKind, MemoryBreakdown, WorkspacePool,
};

fn tag(label: &str) -> AllocationTag {
    AllocationTag::new(LayerKind::Rnn, DataStructureKind::FeatureMap, label)
}

#[test]
fn allocation_failure_leaves_state_consistent() {
    let mem = DeviceMemory::with_overhead_model(1000, 0, 0.0);
    let a = mem.alloc(600, tag("a")).expect("fits");
    let before_live = mem.live_bytes();
    let before_allocs = mem.total_allocs();
    // Fails — and must not leak partial accounting.
    let err = mem.alloc(500, tag("b")).unwrap_err();
    assert_eq!(err.live, 600);
    assert_eq!(mem.live_bytes(), before_live);
    assert_eq!(mem.total_allocs(), before_allocs);
    // Freeing recovers the space.
    drop(a);
    assert!(mem.alloc(900, tag("c")).is_ok());
}

#[test]
fn fragmentation_model_reduces_usable_capacity() {
    let plain = DeviceMemory::with_overhead_model(1000, 0, 0.0);
    let frag = DeviceMemory::with_overhead_model(1000, 0, 0.25);
    assert!(plain.alloc(900, tag("a")).is_ok());
    assert!(
        frag.alloc(900, tag("a")).is_err(),
        "25% fragmentation must shrink usable space"
    );
    assert!(frag.alloc(700, tag("a")).is_ok());
}

#[test]
fn workspace_growth_oom_releases_cleanly() {
    let mem = DeviceMemory::with_overhead_model(1000, 0, 0.0);
    let pool = WorkspacePool::new(mem.clone(), LayerKind::Attention, "ws");
    drop(pool.lease(400).expect("fits"));
    // Growing past capacity fails...
    assert!(pool.lease(2000).is_err());
    // ...the pool dropped its buffer during the failed grow; a small lease
    // must still work and re-allocate.
    let lease = pool.lease(300).expect("pool must stay usable after OOM");
    drop(lease);
    assert_eq!(mem.live_bytes(), 300, "retained buffer is the last size");
}

#[test]
fn interleaved_pools_account_independently() {
    let mem = DeviceMemory::with_overhead_model(10_000, 0, 0.0);
    let attn = WorkspacePool::new(mem.clone(), LayerKind::Attention, "attn");
    let rnn = WorkspacePool::new(mem.clone(), LayerKind::Rnn, "rnn");
    let a = attn.lease(1000).unwrap();
    let b = rnn.lease(2000).unwrap();
    assert_eq!(mem.live_bytes(), 3000);
    drop(a);
    drop(b);
    // Buffers are retained per pool.
    assert_eq!(mem.live_bytes(), 3000);
    attn.release_buffer();
    assert_eq!(mem.live_bytes(), 2000);
    let bd = MemoryBreakdown::at_category_maxima(&mem);
    assert_eq!(bd.kind_bytes(DataStructureKind::Workspace), 3000);
}

#[test]
fn peak_survives_oom_attempts() {
    let mem = DeviceMemory::with_overhead_model(1000, 0, 0.0);
    {
        let _a = mem.alloc(800, tag("a")).unwrap();
        let _ = mem.alloc(800, tag("b"));
    }
    assert_eq!(mem.peak_bytes(), 800, "failed allocations never count");
}

#[test]
fn capacity_zero_rejects_everything() {
    let mem = DeviceMemory::with_overhead_model(0, 0, 0.0);
    assert!(mem.alloc(1, tag("a")).is_err());
    assert_eq!(mem.peak_bytes(), 0);
}
