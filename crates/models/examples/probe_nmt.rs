use echo_data::{NmtBatch, ParallelCorpus};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel, Sgd};
use std::sync::Arc;

fn main() {
    let corpus = ParallelCorpus::synthetic(
        echo_data::Vocab::new(60),
        echo_data::Vocab::new(50),
        600,
        3..=8,
        5,
    );
    let model = NmtModel::build({
        let mut h = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
        h.hidden = 48;
        h.embed = 32;
        h.src_len = 8;
        h.tgt_len = 9;
        h
    });
    let mem = DeviceMemory::with_overhead_model(8 << 30, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem);
    model.bind_params(&mut exec, 2).unwrap();
    let (train, valid) = corpus.split_validation(24);
    let batches = NmtBatch::bucketed(train, 8);
    println!("pairs={} batches={}", train.len(), batches.len());
    let mut sgd = Sgd::new(1.0).with_clip_norm(5.0);
    for epoch in 0..40 {
        let mut total = 0.0;
        let mut n = 0;
        for batch in &batches {
            let stats = exec
                .train_step(
                    &model.bindings(batch),
                    model.loss,
                    ExecOptions::default(),
                    None,
                )
                .unwrap();
            total += stats.loss.unwrap();
            n += 1;
            sgd.step(&mut exec);
        }
        let bleu = model.validation_bleu(&mut exec, valid, 8).unwrap();
        println!("epoch {epoch}: loss {:.3} bleu {bleu:.2}", total / n as f32);
    }
}
