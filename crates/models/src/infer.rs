//! Stateful single-step inference ("decode") graphs over the planned path.
//!
//! Training unrolls the LSTM over `seq_len` time steps because BPTT needs
//! the whole window; serving does not. A [`WordLmDecoder`] is the same
//! word-LM architecture rebuilt at `T = 1` with the recurrent state made
//! explicit: each layer's `h0`/`c0` are input nodes the caller binds, and
//! the matching `h_last`/`c_last` nodes come back as outputs next to the
//! logits. One [`infer_step`](WordLmDecoder::infer_step) therefore
//! advances any number of independent sessions by one token, and a
//! serving engine carries each session's [`LmState`] between calls.
//!
//! **Batch invariance.** Every operator on the decode path (embedding
//! lookup, fully-connected with rows-only GEMM splits, elementwise gates,
//! last-dim slices, axis-0 stacking) computes row `b` of its output from
//! row `b` of its inputs with a fixed per-element floating-point sequence
//! — the bit-exactness contract the GEMM backends already guarantee for
//! training. Stacking B requests into one `[1, B]` step is therefore
//! bit-identical, lane for lane, to B separate `[1, 1]` steps. The serve
//! crate's integration tests assert this for every matmul policy.

use crate::word_lm::WordLmHyper;
use echo_graph::gir::{common_subexpr_elim, fuse_elementwise_chains, fuse_lstm_cells, Gir};
use echo_graph::{ExecOptions, ExecPlan, Executor, Graph, NodeId, Result};
use echo_memory::LayerKind;
use echo_ops::{Embedding, FullyConnected};
use echo_rnn::{LstmBackend, LstmStack, LstmStateIo};
use echo_tensor::init::{lstm_uniform, seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// One session's recurrent state: per-layer hidden and cell rows of
/// length `hidden`. Plain host vectors so a session cache can hold
/// thousands of these cheaply and compare them bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct LmState {
    /// Hidden state per layer, each of length `hidden`.
    pub h: Vec<Vec<f32>>,
    /// Cell state per layer, each of length `hidden`.
    pub c: Vec<Vec<f32>>,
}

impl LmState {
    /// The all-zero state every session starts from.
    pub fn zero(layers: usize, hidden: usize) -> LmState {
        LmState {
            h: vec![vec![0.0; hidden]; layers],
            c: vec![vec![0.0; hidden]; layers],
        }
    }

    /// Number of layers this state spans.
    pub fn layers(&self) -> usize {
        self.h.len()
    }
}

/// The word-LM rebuilt as a single-step, explicit-state decode graph.
///
/// Always uses the `Default` (unfused) LSTM backend: it is the only one
/// whose per-layer initial states are graph inputs rather than zeros baked
/// into a fused kernel, which is what makes state threading possible. The
/// parameter draw order of [`bind_params`](WordLmDecoder::bind_params) is
/// identical to [`WordLm`](crate::WordLm)'s, so the same seed yields
/// bit-identical weights to a freshly built training model.
#[derive(Debug, Clone)]
pub struct WordLmDecoder {
    /// The decode graph (`T = 1`).
    pub graph: Arc<Graph>,
    /// Hyperparameters, with `seq_len` forced to 1 and `backend` to
    /// `Default`.
    pub hyper: WordLmHyper,
    /// `[1, B]` token-id input node.
    pub ids: NodeId,
    /// `[1, B, V]` logits node (first entry of [`outputs`](Self::outputs)).
    pub logits: NodeId,
    /// Per-layer recurrent-state nodes.
    pub state_io: Vec<LstmStateIo>,
    embed_table: NodeId,
    out_w: NodeId,
    out_b: NodeId,
    stack: LstmStack,
    /// Logits followed by each layer's `h_last`, `c_last` — the output
    /// set an inference plan is built over.
    outputs: Vec<NodeId>,
}

impl WordLmDecoder {
    /// Builds the decode graph for `hyper`'s architecture.
    pub fn build(hyper: WordLmHyper) -> WordLmDecoder {
        let hyper = WordLmHyper {
            seq_len: 1,
            backend: LstmBackend::Default,
            ..hyper
        };
        let mut g = Graph::new();
        let ids = g.input("ids", LayerKind::Embedding);
        let embed_table = g.param("embed_table", LayerKind::Embedding);
        let out_w = g.param("out_w", LayerKind::Output);
        let out_b = g.param("out_b", LayerKind::Output);

        let embedded = g.apply(
            "embedded",
            Arc::new(Embedding),
            &[ids, embed_table],
            LayerKind::Embedding,
        );
        let stack = LstmStack::build(
            &mut g,
            hyper.backend,
            embedded,
            hyper.seq_len,
            hyper.embed,
            hyper.hidden,
            hyper.layers,
            "rnn",
            LayerKind::Rnn,
        );
        let logits = g.apply(
            "logits",
            Arc::new(FullyConnected::new(hyper.vocab)),
            &[stack.output, out_w, out_b],
            LayerKind::Output,
        );
        let state_io = stack.state_io.clone();
        let mut outputs = vec![logits];
        for io in &state_io {
            outputs.push(io.h_last);
            outputs.push(io.c_last);
        }
        WordLmDecoder {
            graph: Arc::new(g),
            hyper,
            ids,
            logits,
            state_io,
            embed_table,
            out_w,
            out_b,
            stack,
            outputs,
        }
    }

    /// The output set (logits, then each layer's final h and c) a step
    /// produces — what inference plans are built over.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Binds freshly initialized parameters with the exact draw order of
    /// `WordLm::bind_params`: the same seed gives weights bit-identical
    /// to the training model's.
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_params(&self, exec: &mut Executor, seed: u64) -> Result<()> {
        let h = self.hyper;
        let mut rng = seeded_rng(seed);
        exec.bind_param(
            self.embed_table,
            uniform(Shape::d2(h.vocab, h.embed), 0.1, &mut rng),
        )?;
        self.stack.bind_params(exec, &mut rng)?;
        exec.bind_param(
            self.out_w,
            lstm_uniform(Shape::d2(h.vocab, h.hidden), h.hidden, &mut rng),
        )?;
        exec.bind_param(self.out_b, Tensor::zeros(Shape::d1(h.vocab)))?;
        Ok(())
    }

    /// Shape-only bindings for one decode step at batch size `batch`.
    pub fn symbolic_bindings(&self, batch: usize) -> HashMap<NodeId, Tensor> {
        let mut bindings = HashMap::new();
        bindings.insert(self.ids, Tensor::zeros(Shape::d2(1, batch)));
        for io in &self.state_io {
            bindings.insert(io.h0, Tensor::zeros(Shape::d2(batch, self.hyper.hidden)));
            bindings.insert(io.c0, Tensor::zeros(Shape::d2(batch, self.hyper.hidden)));
        }
        bindings
    }

    /// Shapes of every parameter node — what the GIR front end needs to
    /// lift the decode graph without binding parameter values.
    pub fn param_shapes(&self) -> HashMap<NodeId, Shape> {
        let h = self.hyper;
        let mut out = HashMap::new();
        out.insert(self.embed_table, Shape::d2(h.vocab, h.embed));
        out.insert(self.out_w, Shape::d2(h.vocab, h.hidden));
        out.insert(self.out_b, Shape::d1(h.vocab));
        for (id, shape) in self.stack.param_shapes() {
            out.insert(id, shape);
        }
        out
    }

    /// The decode graph after the forward-only GIR pipeline: merging CSE
    /// (safe in inference, where no gradient accumulation can be
    /// re-associated), LSTM-cell fusion, and elementwise-chain fusion.
    ///
    /// Node ids survive the rewrite, so [`symbolic_bindings`]
    /// (Self::symbolic_bindings), [`bind_params`](Self::bind_params),
    /// [`outputs`](Self::outputs) and the session-state node ids all
    /// transfer unchanged, and fused execution is bit-identical to the
    /// original graph. Decode batch size does not affect which groups
    /// form, so one fused graph serves every batch size.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference or rewrite failures from the passes.
    pub fn fused_graph(&self) -> Result<Arc<Graph>> {
        let binding_shapes: HashMap<NodeId, Shape> = self
            .symbolic_bindings(1)
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let mut gir = Gir::from_graph(
            Arc::clone(&self.graph),
            &binding_shapes,
            &self.param_shapes(),
            &self.outputs,
        )?;
        common_subexpr_elim(&mut gir, true)?;
        fuse_lstm_cells(&mut gir)?;
        fuse_elementwise_chains(&mut gir)?;
        Ok(Arc::clone(gir.graph()))
    }

    /// Compiles and installs an inference-mode execution plan for decode
    /// steps with exactly `batch` lanes. Steps at any other batch size
    /// fall back to the legacy interpreter (observable via
    /// [`echo_graph::plan_fallbacks`]), bit-identically. Returns the
    /// shared plan.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (e.g. parameters not bound yet).
    pub fn install_inference_plan(
        &self,
        exec: &mut Executor,
        batch: usize,
    ) -> Result<Arc<ExecPlan>> {
        let plan = exec.plan_for_inference(&self.symbolic_bindings(batch), &self.outputs)?;
        exec.set_exec_plan(Arc::clone(&plan))?;
        Ok(plan)
    }

    /// Advances `tokens.len()` independent sessions by one token in a
    /// single batched forward. Lane `b` consumes `tokens[b]` from state
    /// `states[b]`; the returned vectors are per-lane next-token logits
    /// (`vocab` long) and per-lane successor states, in lane order.
    ///
    /// Batched execution is bit-identical per lane to unbatched (see the
    /// module docs), so a scheduler is free to coalesce whatever requests
    /// arrive together.
    ///
    /// # Errors
    ///
    /// Propagates execution errors; `tokens` and `states` must have equal
    /// nonzero length and states must match the model's layer count.
    pub fn infer_step(
        &self,
        exec: &mut Executor,
        tokens: &[u32],
        states: &[LmState],
    ) -> Result<(Vec<Vec<f32>>, Vec<LmState>)> {
        let b = tokens.len();
        if b == 0 || states.len() != b {
            return Err(echo_graph::GraphError::Operator {
                op: "infer_step".to_string(),
                message: format!("{} tokens vs {} states", b, states.len()),
            });
        }
        let hidden = self.hyper.hidden;
        let layers = self.hyper.layers;
        for s in states {
            if s.layers() != layers {
                return Err(echo_graph::GraphError::Operator {
                    op: "infer_step".to_string(),
                    message: format!("state has {} layers, model has {layers}", s.layers()),
                });
            }
        }

        // Binding storage comes from the executor's step-persistent
        // tensor pool and goes back after the step: a serving loop's
        // per-request `[1,B]`/`[B,H]` buffers recycle instead of
        // reallocating (visible in `Executor::tensor_pool_stats`).
        let mut bindings = HashMap::new();
        let mut id_data = exec.pool_take(b);
        id_data.clear();
        id_data.extend(tokens.iter().map(|&t| t as f32));
        bindings.insert(self.ids, Tensor::from_vec(Shape::d2(1, b), id_data)?);
        for (l, io) in self.state_io.iter().enumerate() {
            let mut h = exec.pool_take(b * hidden);
            let mut c = exec.pool_take(b * hidden);
            h.clear();
            c.clear();
            for s in states {
                h.extend_from_slice(&s.h[l]);
                c.extend_from_slice(&s.c[l]);
            }
            bindings.insert(io.h0, Tensor::from_vec(Shape::d2(b, hidden), h)?);
            bindings.insert(io.c0, Tensor::from_vec(Shape::d2(b, hidden), c)?);
        }

        let opts = ExecOptions {
            training: false,
            numeric: true,
        };
        let results = exec.forward_many(&bindings, &self.outputs, opts, None);
        for (_, t) in bindings.drain() {
            exec.pool_recycle(t);
        }
        let results = results?;

        // Split [1, B, V] logits and [B, H] states back into lanes.
        let vocab = self.hyper.vocab;
        let logit_rows = results[0].data();
        let logits: Vec<Vec<f32>> = (0..b)
            .map(|lane| logit_rows[lane * vocab..(lane + 1) * vocab].to_vec())
            .collect();
        let mut next = vec![LmState::zero(layers, hidden); b];
        for l in 0..layers {
            let h_rows = results[1 + 2 * l].data();
            let c_rows = results[2 + 2 * l].data();
            for (lane, s) in next.iter_mut().enumerate() {
                s.h[l].copy_from_slice(&h_rows[lane * hidden..(lane + 1) * hidden]);
                s.c[l].copy_from_slice(&c_rows[lane * hidden..(lane + 1) * hidden]);
            }
        }
        Ok((logits, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_graph::StashPlan;
    use echo_memory::DeviceMemory;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0)
    }

    fn decoder_exec(vocab: usize, seed: u64) -> (WordLmDecoder, Executor) {
        let dec = WordLmDecoder::build(WordLmHyper::tiny(vocab, LstmBackend::Default));
        let mut exec = Executor::new(Arc::clone(&dec.graph), StashPlan::stash_all(), mem());
        dec.bind_params(&mut exec, seed).unwrap();
        (dec, exec)
    }

    #[test]
    fn stateful_stepping_matches_unrolled_forward() {
        // Feeding tokens one at a time through the T=1 decoder, threading
        // state, must match the T=8 training graph's logits for the same
        // prefix (same seed => bit-identical weights by draw order).
        let vocab = 23;
        let (dec, mut dexec) = decoder_exec(vocab, 11);
        let lm = crate::WordLm::build(WordLmHyper::tiny(vocab, LstmBackend::Default));
        let mut lexec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut lexec, 11).unwrap();

        let prefix: Vec<u32> = vec![3, 17, 9, 1, 20, 5, 12, 8];
        let t = prefix.len();
        let mut bindings = HashMap::new();
        let ids: Vec<f32> = prefix.iter().map(|&x| x as f32).collect();
        bindings.insert(lm.ids, Tensor::from_vec(Shape::d2(t, 1), ids).unwrap());
        for io in &lm_state_nodes(&lm) {
            bindings.insert(*io, Tensor::zeros(Shape::d2(1, lm.hyper.hidden)));
        }
        let opts = ExecOptions {
            training: false,
            numeric: true,
        };
        let unrolled = lexec.forward(&bindings, lm.logits, opts, None).unwrap();

        let mut state = LmState::zero(dec.hyper.layers, dec.hyper.hidden);
        let mut last_logits = Vec::new();
        for &tok in &prefix {
            let (l, s) = dec
                .infer_step(&mut dexec, &[tok], std::slice::from_ref(&state))
                .unwrap();
            last_logits = l.into_iter().next().unwrap();
            state = s.into_iter().next().unwrap();
        }
        // The unrolled graph's logits for the final position, lane 0.
        let row = &unrolled.data()[(t - 1) * vocab..t * vocab];
        assert_eq!(row, &last_logits[..], "stepped logits must be bit-exact");
    }

    fn lm_state_nodes(lm: &crate::WordLm) -> Vec<echo_graph::NodeId> {
        // The training model's zero-state inputs, via its bindings helper.
        lm.symbolic_bindings(1)
            .keys()
            .copied()
            .filter(|id| *id != lm.ids && *id != lm.targets)
            .collect()
    }

    #[test]
    fn batched_step_is_bit_identical_per_lane() {
        let vocab = 31;
        let (dec, mut exec) = decoder_exec(vocab, 5);
        dec.install_inference_plan(&mut exec, 4).unwrap();
        // Distinct per-lane histories first (unplanned B=1 warmup steps).
        let mut states = Vec::new();
        for lane in 0..4u32 {
            let mut s = LmState::zero(dec.hyper.layers, dec.hyper.hidden);
            let (_, ns) = dec
                .infer_step(&mut exec, &[lane * 7 % vocab as u32], &[s.clone()])
                .unwrap();
            s = ns.into_iter().next().unwrap();
            states.push(s);
        }
        let tokens: Vec<u32> = vec![1, 9, 2, 30];
        let (batched_logits, batched_states) = dec.infer_step(&mut exec, &tokens, &states).unwrap();
        for lane in 0..4 {
            let (l, s) = dec
                .infer_step(&mut exec, &tokens[lane..=lane], &states[lane..=lane])
                .unwrap();
            assert_eq!(l[0], batched_logits[lane], "lane {lane} logits");
            assert_eq!(s[0], batched_states[lane], "lane {lane} state");
        }
    }

    #[test]
    fn inference_plan_drives_identical_bits() {
        let vocab = 19;
        let (dec, mut planned) = decoder_exec(vocab, 2);
        let (_, mut legacy) = decoder_exec(vocab, 2);
        let plan = dec.install_inference_plan(&mut planned, 2).unwrap();
        assert!(!plan.training());
        let states = vec![LmState::zero(dec.hyper.layers, dec.hyper.hidden); 2];
        let tokens = [4u32, 11];
        let (pl, ps) = dec.infer_step(&mut planned, &tokens, &states).unwrap();
        let (ll, ls) = dec.infer_step(&mut legacy, &tokens, &states).unwrap();
        assert_eq!(pl, ll, "planned logits must match legacy bitwise");
        assert_eq!(ps, ls, "planned states must match legacy bitwise");
    }
}
