//! End-to-end training models: word-level language modeling, the NMT
//! encoder–decoder with attention, and the ResNet-50 cost model used by
//! the paper's motivation figure.
//!
//! Every model is a [`echo_graph::Graph`] built from `echo-ops` /
//! `echo-rnn` operators plus handles to its parameter and input nodes, so
//! the same definition can
//!
//! * train numerically on the CPU (training/validation curves, Figure 12),
//! * execute symbolically against the device model (throughput and memory
//!   figures), and
//! * be recompiled by the Echo pass (recomputation + layout plans).

#![warn(missing_docs)]

pub mod infer;
pub mod metrics;
pub mod nmt;
pub mod parallel;
pub mod pipeline;
pub mod resnet;
pub mod trainer;
pub mod word_lm;

pub use infer::{LmState, WordLmDecoder};
pub use metrics::{bleu, perplexity};
pub use nmt::{NmtHyper, NmtModel};
pub use parallel::{
    DataParallelOptions, MicrobatchTrainer, ParallelTrainer, PipelineOptions, ReplicaStepStats,
    StageStepStats, StepReport,
};
pub use pipeline::{PipelineStepReport, PipelineTrainer};
pub use resnet::{resnet50_iteration_ns, resnet50_memory_bytes};
pub use trainer::{Adam, Optimizer, Sgd, Speedometer, TrainLog};
pub use word_lm::{WordLm, WordLmHyper};
