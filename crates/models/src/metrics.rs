//! Training-quality metrics: perplexity and BLEU.

use std::collections::HashMap;

/// Perplexity from a mean cross-entropy loss in nats.
///
/// ```
/// use echo_models::perplexity;
/// assert!((perplexity(0.0) - 1.0).abs() < 1e-9);
/// assert!(perplexity(2.0) > perplexity(1.0));
/// ```
pub fn perplexity(mean_loss_nats: f32) -> f64 {
    f64::from(mean_loss_nats).exp()
}

/// Corpus-level BLEU-4 with brevity penalty (Papineni et al., 2002).
///
/// `hypotheses` and `references` are token-id sequences; scores are in
/// `[0, 100]`. Uses the standard smoothing-free corpus formulation: n-gram
/// precisions are pooled over the whole corpus before the geometric mean.
///
/// # Panics
///
/// Panics if the two lists have different lengths.
pub fn bleu(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(
        hypotheses.len(),
        references.len(),
        "each hypothesis needs a reference"
    );
    let mut matches = [0usize; 4];
    let mut totals = [0usize; 4];
    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    for (hyp, rf) in hypotheses.iter().zip(references) {
        hyp_len += hyp.len();
        ref_len += rf.len();
        for n in 1..=4usize {
            let ref_counts = ngram_counts(rf, n);
            let hyp_counts = ngram_counts(hyp, n);
            for (gram, &count) in &hyp_counts {
                let clipped = count.min(ref_counts.get(gram).copied().unwrap_or(0));
                matches[n - 1] += clipped;
            }
            totals[n - 1] += hyp.len().saturating_sub(n - 1);
        }
    }
    if totals.contains(&0) || matches.contains(&0) {
        return 0.0;
    }
    let log_precision: f64 = (0..4)
        .map(|n| (matches[n] as f64 / totals[n] as f64).ln())
        .sum::<f64>()
        / 4.0;
    let brevity = if hyp_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    100.0 * brevity * log_precision.exp()
}

fn ngram_counts(seq: &[usize], n: usize) -> HashMap<&[usize], usize> {
    let mut counts = HashMap::new();
    if seq.len() < n {
        return counts;
    }
    for gram in seq.windows(n) {
        *counts.entry(gram).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_translation_scores_100() {
        let refs = vec![vec![1, 2, 3, 4, 5], vec![6, 7, 8, 9]];
        assert!((bleu(&refs, &refs) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_translation_scores_0() {
        let hyp = vec![vec![1, 2, 3, 4, 5]];
        let rf = vec![vec![6, 7, 8, 9, 10]];
        assert_eq!(bleu(&hyp, &rf), 0.0);
    }

    #[test]
    fn partial_overlap_is_between() {
        let hyp = vec![vec![1, 2, 3, 4, 9, 9, 9, 9]];
        let rf = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let score = bleu(&hyp, &rf);
        assert!(score > 0.0 && score < 100.0, "score {score}");
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let rf = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let long = vec![vec![1, 2, 3, 4, 5, 6, 7, 9]];
        let short = vec![vec![1, 2, 3, 4, 5]];
        assert!(bleu(&long, &rf) > bleu(&short, &rf));
    }

    #[test]
    fn clipping_prevents_repeat_gaming() {
        let rf = vec![vec![1, 2, 3, 4, 5]];
        let spam = vec![vec![1, 1, 1, 1, 1]];
        // Only one unigram match survives clipping, and no 2-grams, so 0.
        assert_eq!(bleu(&spam, &rf), 0.0);
    }

    #[test]
    fn perplexity_monotone() {
        assert!(perplexity(1.0) < perplexity(1.5));
        assert!((perplexity(1.0) - std::f64::consts::E).abs() < 1e-6);
    }
}
