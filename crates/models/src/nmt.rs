//! The NMT model (paper §2.2, Figure 3): bidirectional-style encoder with
//! source reversal, an LSTM decoder stepped one word at a time with input
//! feeding, and the MLP attention whose scoring function is the O-shape
//! memory bottleneck.

use crate::metrics::bleu;
use echo_data::{NmtBatch, SentencePair, EOS, PAD};
use echo_graph::{ExecOptions, ExecPlan, Executor, Graph, NodeId, Result};
use echo_memory::LayerKind;
use echo_ops::{
    Activation, BroadcastAddQuery, Concat2LastDim, Embedding, FullyConnected, LayerNorm,
    ScoreReduce, SequenceReverse, SliceAxis0, SoftmaxCrossEntropy, SoftmaxRows, StackAxis0,
    WeightedSum,
};
use echo_rnn::{LstmBackend, LstmStack, LstmStep};
use echo_tensor::init::{lstm_uniform, seeded_rng, uniform};
use echo_tensor::{reduce, Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// NMT hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NmtHyper {
    /// Source vocabulary size.
    pub src_vocab: usize,
    /// Target vocabulary size.
    pub tgt_vocab: usize,
    /// Embedding size.
    pub embed: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// Encoder LSTM layers.
    pub enc_layers: usize,
    /// Decoder LSTM layers.
    pub dec_layers: usize,
    /// (Padded) source length the graph is unrolled to.
    pub src_len: usize,
    /// (Padded) target length the graph is unrolled to.
    pub tgt_len: usize,
    /// Encoder LSTM backend.
    pub backend: LstmBackend,
    /// Use the parallelized `SequenceReverse` (the paper's `par_rev`).
    pub parallel_reverse: bool,
    /// Apply layer normalization inside the attention scoring function
    /// (Sockeye's optional `--layer-normalization`; the paper's "Best"
    /// setting uses it, the Zhu et al. setting does not).
    pub attention_layer_norm: bool,
}

impl NmtHyper {
    /// The Zhu et al. setting the paper's main experiments use:
    /// `B = 128, T = 100, H = 512` (batch size is chosen at run time).
    pub fn zhu(backend: LstmBackend) -> Self {
        NmtHyper {
            src_vocab: 17_000,
            tgt_vocab: 7_700,
            embed: 512,
            hidden: 512,
            enc_layers: 1,
            dec_layers: 1,
            src_len: 100,
            tgt_len: 100,
            backend,
            parallel_reverse: true,
            attention_layer_norm: false,
        }
    }

    /// Hieber et al.'s "Groundhog" setting (1000 hidden, 620-d embeddings,
    /// single layer) — approximated per DESIGN.md.
    pub fn groundhog(backend: LstmBackend) -> Self {
        NmtHyper {
            embed: 620,
            hidden: 1000,
            ..NmtHyper::zhu(backend)
        }
    }

    /// Hieber et al.'s "Best" setting (2-layer, 512 hidden, layer-norm
    /// attention) — approximated per DESIGN.md.
    pub fn best(backend: LstmBackend) -> Self {
        NmtHyper {
            embed: 512,
            hidden: 512,
            enc_layers: 2,
            dec_layers: 2,
            attention_layer_norm: true,
            ..NmtHyper::zhu(backend)
        }
    }

    /// A tiny numerically-trainable setting for training-curve
    /// experiments and tests.
    pub fn tiny(src_vocab: usize, tgt_vocab: usize) -> Self {
        NmtHyper {
            src_vocab,
            tgt_vocab,
            embed: 24,
            hidden: 32,
            enc_layers: 1,
            dec_layers: 1,
            src_len: 16,
            tgt_len: 17,
            backend: LstmBackend::CuDnn,
            parallel_reverse: true,
            attention_layer_norm: true,
        }
    }

    /// Number of decoder time steps.
    pub fn decoder_steps(&self) -> usize {
        self.tgt_len
    }
}

/// A built NMT graph plus the node handles experiments need.
#[derive(Debug)]
pub struct NmtModel {
    /// The model graph.
    pub graph: Arc<Graph>,
    /// Hyperparameters it was built with.
    pub hyper: NmtHyper,
    /// `[T_src, B]` source-id input.
    pub src_ids: NodeId,
    /// `[T_tgt, B]` decoder-input ids.
    pub tgt_in: NodeId,
    /// `T_tgt·B` target ids.
    pub targets: NodeId,
    /// Scalar loss node.
    pub loss: NodeId,
    /// `[T_tgt, B, V_tgt]` logits node.
    pub logits: NodeId,
    /// Per-decoder-step attention-scoring interior nodes — the O-shape
    /// segments the Echo pass recomputes.
    pub attention_segments: Vec<Vec<NodeId>>,
    /// Zero-state inputs to bind to `[B x H]` zeros.
    pub zero_state_inputs: Vec<NodeId>,
    /// The input-feeding initial attention state (`[B x H]` zeros).
    pub attn_init: NodeId,
    params: Vec<(NodeId, Shape)>,
    embed_params: Vec<(NodeId, Shape)>,
    encoder_stack: LstmStack,
}

impl NmtModel {
    /// Builds the unrolled training graph.
    pub fn build(hyper: NmtHyper) -> NmtModel {
        let mut g = Graph::new();
        let h = hyper.hidden;
        let src_ids = g.input("src_ids", LayerKind::Embedding);
        let tgt_in = g.input("tgt_in", LayerKind::Embedding);
        let targets = g.input("targets", LayerKind::Output);

        let mut params: Vec<(NodeId, Shape)> = Vec::new();
        let mut embed_params: Vec<(NodeId, Shape)> = Vec::new();
        let mut param = |g: &mut Graph, name: &str, layer, shape: Shape| {
            let id = g.param(name, layer);
            params.push((id, shape));
            id
        };

        // --- Encoder ---
        let src_embed = g.param("src_embed", LayerKind::Embedding);
        embed_params.push((src_embed, Shape::d2(hyper.src_vocab, hyper.embed)));
        let src_emb = g.apply(
            "src_emb",
            Arc::new(Embedding),
            &[src_ids, src_embed],
            LayerKind::Embedding,
        );
        let reverse: Arc<dyn echo_graph::Operator + Send + Sync> = if hyper.parallel_reverse {
            Arc::new(SequenceReverse::parallel())
        } else {
            Arc::new(SequenceReverse::sequential())
        };
        let src_rev = g.apply("src_rev", reverse, &[src_emb], LayerKind::Rnn);
        let encoder_stack = LstmStack::build(
            &mut g,
            hyper.backend,
            src_rev,
            hyper.src_len,
            hyper.embed,
            h,
            hyper.enc_layers,
            "enc",
            LayerKind::Rnn,
        );
        let hs = encoder_stack.output; // [T_s, B, H]

        // Projected keys, computed once and shared by every decoder step.
        let w_keys = param(&mut g, "w_keys", LayerKind::Attention, Shape::d2(h, h));
        let keys = g.apply(
            "keys",
            Arc::new(FullyConnected::new(h).without_bias()),
            &[hs, w_keys],
            LayerKind::Attention,
        );

        // --- Attention parameters ---
        let w_query = param(&mut g, "w_query", LayerKind::Attention, Shape::d2(h, h));
        let ln_params = if hyper.attention_layer_norm {
            let gamma = param(&mut g, "ln_gamma", LayerKind::Attention, Shape::d1(h));
            let beta = param(&mut g, "ln_beta", LayerKind::Attention, Shape::d1(h));
            Some((gamma, beta))
        } else {
            None
        };
        let v_score = param(&mut g, "v_score", LayerKind::Attention, Shape::d1(h));
        let w_attn = param(&mut g, "w_attn", LayerKind::Attention, Shape::d2(h, 2 * h));
        let b_attn = param(&mut g, "b_attn", LayerKind::Attention, Shape::d1(h));

        // --- Decoder parameters ---
        let tgt_embed = g.param("tgt_embed", LayerKind::Embedding);
        embed_params.push((tgt_embed, Shape::d2(hyper.tgt_vocab, hyper.embed)));
        let mut dec_params = Vec::new();
        for l in 0..hyper.dec_layers {
            let in_dim = if l == 0 { hyper.embed + h } else { h };
            let wx = param(
                &mut g,
                &format!("dec_l{l}_wx"),
                LayerKind::Rnn,
                Shape::d2(4 * h, in_dim),
            );
            let wh = param(
                &mut g,
                &format!("dec_l{l}_wh"),
                LayerKind::Rnn,
                Shape::d2(4 * h, h),
            );
            let bias = param(
                &mut g,
                &format!("dec_l{l}_b"),
                LayerKind::Rnn,
                Shape::d1(4 * h),
            );
            dec_params.push((wx, wh, bias, in_dim));
        }
        let out_w = param(
            &mut g,
            "out_w",
            LayerKind::Output,
            Shape::d2(hyper.tgt_vocab, h),
        );
        let out_b = param(
            &mut g,
            "out_b",
            LayerKind::Output,
            Shape::d1(hyper.tgt_vocab),
        );

        // --- Decoder unroll ---
        let tgt_emb = g.apply(
            "tgt_emb",
            Arc::new(Embedding),
            &[tgt_in, tgt_embed],
            LayerKind::Embedding,
        );
        let attn_init = g.input("attn_init", LayerKind::Attention);
        let mut zero_state_inputs = encoder_stack.zero_states.clone();
        let mut h_prev = Vec::new();
        let mut c_prev = Vec::new();
        for l in 0..hyper.dec_layers {
            let h0 = g.input(format!("dec_l{l}_h0"), LayerKind::Rnn);
            let c0 = g.input(format!("dec_l{l}_c0"), LayerKind::Rnn);
            zero_state_inputs.push(h0);
            zero_state_inputs.push(c0);
            h_prev.push(h0);
            c_prev.push(c0);
        }

        let mut attn_prev = attn_init;
        let mut attention_segments = Vec::new();
        let mut step_outputs = Vec::new();
        for t in 0..hyper.decoder_steps() {
            let x_t = g.apply(
                format!("dec_x{t}"),
                Arc::new(SliceAxis0 { index: t }),
                &[tgt_emb],
                LayerKind::Embedding,
            );
            // Input feeding: concatenate the previous attention state.
            let mut cell_in = g.apply(
                format!("dec_in{t}"),
                Arc::new(Concat2LastDim),
                &[x_t, attn_prev],
                LayerKind::Rnn,
            );
            for (l, &(wx, wh, bias, _)) in dec_params.iter().enumerate() {
                let packed = g.apply(
                    format!("dec_l{l}_cell{t}"),
                    Arc::new(LstmStep::new(h)),
                    &[cell_in, h_prev[l], c_prev[l], wx, wh, bias],
                    LayerKind::Rnn,
                );
                let h_t = g.apply(
                    format!("dec_l{l}_h{t}"),
                    Arc::new(SliceAxis0 { index: 0 }),
                    &[packed],
                    LayerKind::Rnn,
                );
                let c_t = g.apply(
                    format!("dec_l{l}_c{t}"),
                    Arc::new(SliceAxis0 { index: 1 }),
                    &[packed],
                    LayerKind::Rnn,
                );
                h_prev[l] = h_t;
                c_prev[l] = c_t;
                cell_in = h_t;
            }
            let query_h = *h_prev.last().expect("at least one decoder layer");

            // --- Attention scoring function: the O-shape subgraph ---
            let query = g.apply(
                format!("attn_q{t}"),
                Arc::new(FullyConnected::new(h).without_bias()),
                &[query_h, w_query],
                LayerKind::Attention,
            );
            let e = g.apply(
                format!("attn_e{t}"),
                Arc::new(BroadcastAddQuery),
                &[keys, query],
                LayerKind::Attention,
            );
            let mut interior = vec![e];
            let pre_tanh = if let Some((gamma, beta)) = ln_params {
                let ln = g.apply(
                    format!("attn_ln{t}"),
                    Arc::new(LayerNorm::default()),
                    &[e, gamma, beta],
                    LayerKind::Attention,
                );
                interior.push(ln);
                ln
            } else {
                e
            };
            let th = g.apply(
                format!("attn_tanh{t}"),
                Arc::new(Activation::tanh()),
                &[pre_tanh],
                LayerKind::Attention,
            );
            interior.push(th);
            let score = g.apply(
                format!("attn_score{t}"),
                Arc::new(ScoreReduce),
                &[th, v_score],
                LayerKind::Attention,
            );
            interior.push(score);
            attention_segments.push(interior);

            let alpha = g.apply(
                format!("attn_alpha{t}"),
                Arc::new(SoftmaxRows),
                &[score],
                LayerKind::Attention,
            );
            let ctx = g.apply(
                format!("attn_ctx{t}"),
                Arc::new(WeightedSum),
                &[alpha, hs],
                LayerKind::Attention,
            );
            let cat = g.apply(
                format!("attn_cat{t}"),
                Arc::new(Concat2LastDim),
                &[query_h, ctx],
                LayerKind::Attention,
            );
            let proj = g.apply(
                format!("attn_proj{t}"),
                Arc::new(FullyConnected::new(h)),
                &[cat, w_attn, b_attn],
                LayerKind::Attention,
            );
            let attn_hidden = g.apply(
                format!("attn_h{t}"),
                Arc::new(Activation::tanh()),
                &[proj],
                LayerKind::Attention,
            );
            attn_prev = attn_hidden;
            step_outputs.push(attn_hidden);
        }

        let stacked = g.apply(
            "dec_states",
            Arc::new(StackAxis0),
            &step_outputs,
            LayerKind::Output,
        );
        let logits = g.apply(
            "logits",
            Arc::new(FullyConnected::new(hyper.tgt_vocab)),
            &[stacked, out_w, out_b],
            LayerKind::Output,
        );
        let loss = g.apply(
            "loss",
            Arc::new(SoftmaxCrossEntropy::with_ignore(PAD)),
            &[logits, targets],
            LayerKind::Output,
        );

        NmtModel {
            graph: Arc::new(g),
            hyper,
            src_ids,
            tgt_in,
            targets,
            loss,
            logits,
            attention_segments,
            zero_state_inputs,
            attn_init,
            params,
            embed_params,
            encoder_stack,
        }
    }

    /// Binds freshly initialized parameters (numeric plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_params(&self, exec: &mut Executor, seed: u64) -> Result<()> {
        let mut rng = seeded_rng(seed);
        for &(id, ref shape) in &self.embed_params {
            exec.bind_param(id, uniform(shape.clone(), 0.1, &mut rng))?;
        }
        self.encoder_stack.bind_params(exec, &mut rng)?;
        for &(id, ref shape) in &self.params {
            let name_is_gamma = self.graph.node(id)?.name == "ln_gamma";
            let value = if name_is_gamma {
                Tensor::full(shape.clone(), 1.0)
            } else if shape.rank() == 1 && self.graph.node(id)?.name.ends_with("_b") {
                Tensor::zeros(shape.clone())
            } else {
                lstm_uniform(shape.clone(), self.hyper.hidden, &mut rng)
            };
            exec.bind_param(id, value)?;
        }
        Ok(())
    }

    /// Binds parameter shapes only (symbolic plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_param_shapes(&self, exec: &mut Executor) -> Result<()> {
        for &(id, ref shape) in &self.embed_params {
            exec.bind_param_shape(id, shape.clone())?;
        }
        self.encoder_stack.bind_param_shapes(exec)?;
        for &(id, ref shape) in &self.params {
            exec.bind_param_shape(id, shape.clone())?;
        }
        Ok(())
    }

    /// Shapes of every parameter node (for the Echo pass's shape
    /// inference).
    pub fn param_shapes(&self) -> HashMap<NodeId, Shape> {
        let mut out = HashMap::new();
        for &(id, ref shape) in self.embed_params.iter().chain(&self.params) {
            out.insert(id, shape.clone());
        }
        for (id, shape) in self.encoder_stack.param_shapes() {
            out.insert(id, shape);
        }
        out
    }

    /// Builds input bindings for a batch, padding/truncating to the
    /// graph's unrolled lengths.
    pub fn bindings(&self, batch: &NmtBatch) -> HashMap<NodeId, Tensor> {
        let b = batch.batch;
        let src = fit_time_major(&batch.source, self.hyper.src_len, b);
        let tgt_in = fit_time_major(&batch.target_input, self.hyper.tgt_len, b);
        let tgt_out = fit_flat(&batch.target_output, batch.tgt_len, self.hyper.tgt_len, b);
        let mut bindings = HashMap::new();
        bindings.insert(self.src_ids, src);
        bindings.insert(self.tgt_in, tgt_in);
        bindings.insert(self.targets, tgt_out);
        bindings.insert(
            self.attn_init,
            Tensor::zeros(Shape::d2(b, self.hyper.hidden)),
        );
        for &node in &self.zero_state_inputs {
            bindings.insert(node, Tensor::zeros(Shape::d2(b, self.hyper.hidden)));
        }
        bindings
    }

    /// Shape-only bindings for a given batch size (symbolic plane).
    pub fn symbolic_bindings(&self, batch: usize) -> HashMap<NodeId, Tensor> {
        let mut bindings = HashMap::new();
        bindings.insert(
            self.src_ids,
            Tensor::zeros(Shape::d2(self.hyper.src_len, batch)),
        );
        bindings.insert(
            self.tgt_in,
            Tensor::zeros(Shape::d2(self.hyper.tgt_len, batch)),
        );
        bindings.insert(
            self.targets,
            Tensor::zeros(Shape::d1(self.hyper.tgt_len * batch)),
        );
        bindings.insert(
            self.attn_init,
            Tensor::zeros(Shape::d2(batch, self.hyper.hidden)),
        );
        for &node in &self.zero_state_inputs {
            bindings.insert(node, Tensor::zeros(Shape::d2(batch, self.hyper.hidden)));
        }
        bindings
    }

    /// Compiles and installs an ahead-of-time execution plan for training
    /// steps with `batch` lanes (the graph's fixed bucket lengths), using
    /// the executor's current stash plan and bound parameter shapes.
    /// Batches of any other shape silently fall back to the legacy
    /// interpreter. Returns the shared plan.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (e.g. parameters not bound yet).
    pub fn install_exec_plan(&self, exec: &mut Executor, batch: usize) -> Result<Arc<ExecPlan>> {
        let plan = exec.plan_for(
            &self.symbolic_bindings(batch),
            self.loss,
            ExecOptions::default(),
        )?;
        exec.set_exec_plan(Arc::clone(&plan))?;
        Ok(plan)
    }

    /// Compiles and installs an **inference-mode** execution plan for
    /// forward-only runs to the logits at `batch` lanes: no backward
    /// schedule, no stash table, a strictly smaller slot arena than the
    /// training plan's. [`predict_teacher_forced`] and
    /// [`infer_step`](NmtModel::infer_step) then run the plan-driven hot
    /// loop whenever the batch matches; other shapes fall back to the
    /// legacy interpreter bit-identically.
    ///
    /// [`predict_teacher_forced`]: NmtModel::predict_teacher_forced
    ///
    /// # Errors
    ///
    /// Propagates planning failures (e.g. parameters not bound yet).
    pub fn install_inference_plan(
        &self,
        exec: &mut Executor,
        batch: usize,
    ) -> Result<Arc<ExecPlan>> {
        let plan = exec.plan_for_inference(&self.symbolic_bindings(batch), &[self.logits])?;
        exec.set_exec_plan(Arc::clone(&plan))?;
        Ok(plan)
    }

    /// One serving step: teacher-forced argmax predictions for a batch,
    /// over the planned path when an inference plan is installed. NMT
    /// serving is stateless per request (the whole source sentence plus
    /// target prefix arrives at once), so unlike the word-LM decoder there
    /// is no recurrent state to thread.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn infer_step(&self, exec: &mut Executor, batch: &NmtBatch) -> Result<Vec<Vec<usize>>> {
        self.predict_teacher_forced(exec, batch)
    }

    /// Teacher-forced predictions: the argmax token at every target
    /// position given the gold prefix. Standing in for beam decoding when
    /// scoring BLEU (see DESIGN.md substitutions).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn predict_teacher_forced(
        &self,
        exec: &mut Executor,
        batch: &NmtBatch,
    ) -> Result<Vec<Vec<usize>>> {
        let bindings = self.bindings(batch);
        let logits = exec.forward(
            &bindings,
            self.logits,
            ExecOptions {
                training: false,
                numeric: true,
            },
            None,
        )?;
        let ids = reduce::argmax_rows(&logits)?; // T_tgt * B rows
        let b = batch.batch;
        let mut out = vec![Vec::new(); b];
        'batch: for bi in 0..b {
            for t in 0..self.hyper.tgt_len {
                let tok = ids[t * b + bi];
                if tok == EOS {
                    continue 'batch;
                }
                out[bi].push(tok);
            }
        }
        Ok(out)
    }

    /// Corpus BLEU of teacher-forced predictions against references.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn validation_bleu(
        &self,
        exec: &mut Executor,
        pairs: &[SentencePair],
        batch_size: usize,
    ) -> Result<f64> {
        let mut hyps = Vec::new();
        let mut refs = Vec::new();
        for chunk in pairs.chunks(batch_size) {
            if chunk.len() < batch_size {
                break;
            }
            let chunk_refs: Vec<&SentencePair> = chunk.iter().collect();
            let batch = NmtBatch::from_pairs(&chunk_refs);
            let preds = self.predict_teacher_forced(exec, &batch)?;
            for (p, pair) in preds.into_iter().zip(chunk) {
                let limit = pair.target.len();
                hyps.push(p.into_iter().take(limit.max(1)).collect());
                refs.push(pair.target.clone());
            }
        }
        Ok(bleu(&hyps, &refs))
    }
}

/// Pads/truncates a `[T, B]` time-major tensor to `target_len` rows.
fn fit_time_major(t: &Tensor, target_len: usize, batch: usize) -> Tensor {
    let cur_len = t.shape().dim(0);
    let mut out = Tensor::full(Shape::d2(target_len, batch), PAD as f32);
    let copy = cur_len.min(target_len);
    out.data_mut()[..copy * batch].copy_from_slice(&t.data()[..copy * batch]);
    out
}

/// Pads/truncates a flattened `T·B` target tensor.
fn fit_flat(t: &Tensor, cur_len: usize, target_len: usize, batch: usize) -> Tensor {
    let mut out = Tensor::full(Shape::d1(target_len * batch), PAD as f32);
    let copy = cur_len.min(target_len);
    out.data_mut()[..copy * batch].copy_from_slice(&t.data()[..copy * batch]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_data::ParallelCorpus;
    use echo_graph::StashPlan;
    use echo_memory::DeviceMemory;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(8 << 30, 0, 0.0)
    }

    fn tiny_model() -> (NmtModel, ParallelCorpus) {
        let corpus = ParallelCorpus::iwslt_like(0.002, 5);
        let model = NmtModel::build(NmtHyper::tiny(
            corpus.src_vocab().size(),
            corpus.tgt_vocab().size(),
        ));
        (model, corpus)
    }

    #[test]
    fn builds_and_runs_one_step() {
        let (model, corpus) = tiny_model();
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        model.bind_params(&mut exec, 1).unwrap();
        let batches = NmtBatch::bucketed(corpus.pairs(), 8);
        let stats = exec
            .train_step(
                &model.bindings(&batches[0]),
                model.loss,
                ExecOptions::default(),
                None,
            )
            .unwrap();
        let loss = stats.loss.unwrap();
        let uniform_nats = (model.hyper.tgt_vocab as f32).ln();
        assert!(
            loss > 0.0 && (loss - uniform_nats).abs() < 1.5,
            "loss {loss}"
        );
        assert_eq!(model.attention_segments.len(), model.hyper.decoder_steps());
    }

    #[test]
    fn attention_feature_maps_dominate_memory() {
        // The paper's core observation (Figure 5): with a long source
        // sequence the attention layers' feature maps dominate.
        let (model, _corpus) = tiny_model();
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), m.clone());
        model.bind_param_shapes(&mut exec).unwrap();
        exec.train_step(
            &model.symbolic_bindings(32),
            model.loss,
            ExecOptions {
                training: true,
                numeric: false,
            },
            None,
        )
        .unwrap();
        let breakdown = echo_memory::MemoryBreakdown::at_peak(&m);
        let attn = breakdown.layer_fraction(echo_memory::LayerKind::Attention);
        assert!(attn > 0.3, "attention share {attn}");
    }

    #[test]
    fn training_reduces_loss() {
        // A quick, debug-friendly budget; full convergence (loss < 0.3,
        // BLEU > 50) is exercised by the Figure 12 reproduction binary.
        let corpus = echo_data::ParallelCorpus::synthetic(
            echo_data::Vocab::new(60),
            echo_data::Vocab::new(50),
            400,
            3..=8,
            5,
        );
        let mut hyper = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
        hyper.hidden = 48;
        hyper.embed = 32;
        hyper.src_len = 8;
        hyper.tgt_len = 9;
        let model = NmtModel::build(hyper);
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        model.bind_params(&mut exec, 2).unwrap();
        let (train, valid) = corpus.split_validation(16);
        let batches = NmtBatch::bucketed(train, 8);
        let mut sgd = crate::trainer::Sgd::new(1.0).with_clip_norm(5.0);
        let mut first = None;
        let mut last = 0.0;
        // Five epochs: enough budget that the "markedly" threshold below
        // holds with margin for any reasonable seeded init stream, not
        // just one specific RNG implementation's output.
        for _epoch in 0..5 {
            for batch in &batches {
                let stats = exec
                    .train_step(
                        &model.bindings(batch),
                        model.loss,
                        ExecOptions::default(),
                        None,
                    )
                    .unwrap();
                last = stats.loss.unwrap();
                first.get_or_insert(last);
                sgd.step(&mut exec);
            }
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.85,
            "loss must fall markedly: {first} -> {last}"
        );
        // BLEU machinery runs end-to-end (score may still be ~0 this early).
        let score = model.validation_bleu(&mut exec, valid, 8).unwrap();
        assert!((0.0..=100.0).contains(&score));
    }

    #[test]
    fn multi_layer_decoder_trains_and_stays_bit_exact_under_echo() {
        let corpus = echo_data::ParallelCorpus::synthetic(
            echo_data::Vocab::new(60),
            echo_data::Vocab::new(50),
            24,
            3..=6,
            21,
        );
        let mut hyper = NmtHyper::tiny(60, 50);
        hyper.enc_layers = 2;
        hyper.dec_layers = 2;
        hyper.src_len = 6;
        hyper.tgt_len = 7;
        let model = NmtModel::build(hyper);
        let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
        let bindings = model.bindings(&batch);
        let plan = {
            use echo_graph::{SegmentId, StashPolicy};
            let mut plan = StashPlan::stash_all();
            for (s, seg) in model.attention_segments.iter().enumerate() {
                for &n in seg {
                    plan.set(n, StashPolicy::Recompute(SegmentId { id: s, pool: 0 }));
                }
            }
            plan
        };
        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
            model.bind_params(&mut exec, 6).unwrap();
            let stats = exec
                .train_step(&bindings, model.loss, ExecOptions::default(), None)
                .unwrap();
            (stats.loss.unwrap(), m.peak_bytes())
        };
        let (l_base, p_base) = run(StashPlan::stash_all());
        let (l_echo, p_echo) = run(plan);
        assert_eq!(l_base, l_echo);
        assert!(p_echo < p_base);
    }

    #[test]
    fn echo_plan_is_bit_exact_on_nmt() {
        let (model, corpus) = tiny_model();
        let batches = NmtBatch::bucketed(corpus.pairs(), 8);

        let run = |plan: StashPlan| {
            let m = mem();
            let mut exec = Executor::new(Arc::clone(&model.graph), plan, m.clone());
            model.bind_params(&mut exec, 3).unwrap();
            let stats = exec
                .train_step(
                    &model.bindings(&batches[0]),
                    model.loss,
                    ExecOptions::default(),
                    None,
                )
                .unwrap();
            (stats, m.peak_bytes())
        };

        let (base, peak_base) = run(StashPlan::stash_all());
        let mut plan = StashPlan::stash_all();
        for (s, seg) in model.attention_segments.iter().enumerate() {
            for &n in seg {
                plan.set(
                    n,
                    echo_graph::StashPolicy::Recompute(echo_graph::SegmentId { id: s, pool: 0 }),
                );
            }
        }
        let (echo, peak_echo) = run(plan);
        assert_eq!(base.loss, echo.loss, "loss must be bit-exact");
        assert_eq!(echo.replays as usize, model.hyper.decoder_steps());
        assert!(
            peak_echo < peak_base,
            "echo peak {peak_echo} >= baseline {peak_base}"
        );
    }
}
