//! Data-parallel multi-replica training with a bit-exact gradient
//! all-reduce.
//!
//! The paper's multi-GPU experiments ([§6.6], Figure 17) train one model
//! replica per GPU on a shard of the global batch and all-reduce the
//! gradients every step. This module reproduces that engine on host
//! threads: each worker owns a full [`Executor`] replica (its own
//! [`DeviceMemory`] arena and, optionally, its own [`DeviceSim`] clock),
//! computes gradients over its shard, and participates in a binary-tree
//! all-reduce over crossbeam channels. Rank 0 then applies the optimizer
//! and broadcasts the updated parameters.
//!
//! # Bit-exactness
//!
//! Floating-point addition is not associative, so a naive "sum whatever
//! arrives first" all-reduce produces different bits for different worker
//! counts. This engine instead fixes one *canonical reduction tree* per
//! global step: the global batch is cut into `M` equal micro-batches
//! (`M` a power of two, see [`MicrobatchPlan`]), per-micro-batch
//! gradients form the `M` leaves, and the gradient of the step is the
//! balanced binary-tree fold of those leaves, scaled by `1/M`.
//!
//! `K = 2^k` replicas each own a contiguous, aligned span of `M/K`
//! leaves — exactly a subtree of the canonical tree. A worker folds its
//! own subtree locally; the cross-replica reduce then walks the
//! remaining `k` upper levels of the *same* tree (receivers keep the left
//! operand, exactly as the serial fold does). Every pairwise addition
//! therefore associates identically for every supported `K`, including
//! `K = 1`, and identically to the serial [`MicrobatchTrainer`] — so the
//! trained parameters match bit for bit.
//!
//! [§6.6]: https://arxiv.org/abs/1805.08899

use crate::trainer::Optimizer;
use crate::word_lm::WordLm;
use crossbeam::channel::{unbounded, Receiver, Sender};
use echo_data::{LmBatch, MicrobatchPlan};
use echo_device::{DeviceSim, DeviceSpec};
use echo_graph::{ExecOptions, Executor, NodeId};
use echo_memory::DeviceMemory;
use echo_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Builds executor bindings for one (micro-)batch. Shared by every
/// replica, so it must be thread-safe.
pub type BindFn = dyn Fn(&LmBatch) -> HashMap<NodeId, Tensor> + Send + Sync;

/// A post-step parameter snapshot broadcast from rank 0 to every other
/// replica, shared rather than cloned per receiver.
type ParamSet = Arc<Vec<(NodeId, Tensor)>>;

/// Configuration of the data-parallel engine.
#[derive(Debug, Clone)]
pub struct DataParallelOptions {
    /// Worker (replica) count. Must be a power of two dividing
    /// `micro_batches`.
    pub replicas: usize,
    /// Micro-batches per global step — the leaves of the canonical
    /// reduction tree. Must be a power of two dividing the batch lanes.
    pub micro_batches: usize,
    /// Per-replica device-memory capacity in bytes.
    pub memory_capacity: u64,
    /// Simulated device per replica (`None` disables the device model
    /// and its per-replica clocks).
    pub sim_spec: Option<DeviceSpec>,
}

impl DataParallelOptions {
    /// `replicas` workers over `micro_batches` leaves with a 1 GiB
    /// per-replica arena and no device simulation.
    pub fn new(replicas: usize, micro_batches: usize) -> Self {
        DataParallelOptions {
            replicas,
            micro_batches,
            memory_capacity: 1 << 30,
            sim_spec: None,
        }
    }

    /// Attaches a simulated device per replica (builder style).
    #[must_use]
    pub fn with_sim(mut self, spec: DeviceSpec) -> Self {
        self.sim_spec = Some(spec);
        self
    }

    /// Sets the per-replica memory capacity (builder style).
    #[must_use]
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.memory_capacity = bytes;
        self
    }
}

/// Configuration of the pipelined engine ([`crate::pipeline`]): `K`
/// pipeline replicas — hybrid pipeline-×-data parallelism — each running
/// every stage of the partition over its span of the `M` micro-batch
/// leaves. The gradient fold is the same canonical tree as
/// [`DataParallelOptions`]-driven training, so any `(P, K)` layout is
/// bit-identical to serial execution.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Pipeline replica count `K`. Must be a power of two dividing
    /// `micro_batches`.
    pub replicas: usize,
    /// Micro-batches per global step — both the pipeline's fill depth
    /// and the leaves of the canonical reduction tree.
    pub micro_batches: usize,
    /// Per-stage-executor device-memory capacity in bytes.
    pub memory_capacity: u64,
    /// Simulated device per stage worker (`None` disables the device
    /// model).
    pub sim_spec: Option<DeviceSpec>,
}

impl PipelineOptions {
    /// `replicas` pipeline replicas over `micro_batches` leaves with a
    /// 1 GiB per-stage arena and no device simulation.
    pub fn new(replicas: usize, micro_batches: usize) -> Self {
        PipelineOptions {
            replicas,
            micro_batches,
            memory_capacity: 1 << 30,
            sim_spec: None,
        }
    }

    /// Reuses a data-parallel configuration for the hybrid engine: same
    /// replica count, leaf count, per-worker memory and device model.
    pub fn from_data_parallel(options: &DataParallelOptions) -> Self {
        PipelineOptions {
            replicas: options.replicas,
            micro_batches: options.micro_batches,
            memory_capacity: options.memory_capacity,
            sim_spec: options.sim_spec.clone(),
        }
    }

    /// Attaches a simulated device per stage worker (builder style).
    #[must_use]
    pub fn with_sim(mut self, spec: DeviceSpec) -> Self {
        self.sim_spec = Some(spec);
        self
    }

    /// Sets the per-stage memory capacity (builder style).
    #[must_use]
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.memory_capacity = bytes;
        self
    }
}

/// Per-stage-worker statistics for one pipelined global step.
#[derive(Debug, Clone)]
pub struct StageStepStats {
    /// Pipeline stage index.
    pub stage: usize,
    /// Pipeline replica rank.
    pub replica: usize,
    /// Simulated device time spent by this worker.
    pub sim_ns: u64,
    /// Peak device bytes across this worker's micro-batches.
    pub peak_bytes: u64,
    /// Segment replays performed by this worker's stage backwards.
    pub replays: u64,
    /// Host wall-clock nanoseconds the worker spent in the step.
    pub compute_host_ns: u64,
}

/// Per-replica statistics for one global step.
#[derive(Debug, Clone)]
pub struct ReplicaStepStats {
    /// Replica rank.
    pub replica: usize,
    /// Simulated device time spent on this replica's micro-batches.
    pub sim_ns: u64,
    /// Peak device bytes across this replica's micro-batches.
    pub peak_bytes: u64,
    /// Segment replays performed by this replica's backward passes.
    pub replays: u64,
    /// Host wall-clock nanoseconds the worker spent computing gradients
    /// (before entering the all-reduce).
    pub compute_host_ns: u64,
}

/// The outcome of one global training step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Mean loss over the global batch (tree-folded like the gradients,
    /// so it is bit-identical across replica counts).
    pub loss: f32,
    /// Pre-clip global gradient norm seen by the optimizer on rank 0.
    pub grad_norm: f64,
    /// Per-replica statistics, indexed by rank.
    pub replicas: Vec<ReplicaStepStats>,
}

impl StepReport {
    /// The slowest replica's simulated compute time — the critical path
    /// of a synchronous data-parallel step before communication.
    pub fn max_replica_sim_ns(&self) -> u64 {
        self.replicas.iter().map(|r| r.sim_ns).max().unwrap_or(0)
    }
}

/// One leaf (or partial fold) of the canonical reduction tree: the
/// gradients and mean loss of a micro-batch span. Shared with the
/// pipeline engine, whose per-stage reduce trees fold the same leaves.
pub(crate) struct GradSample {
    /// `(id, grad)` sorted by id — the order [`Executor::export_grads`]
    /// guarantees.
    pub(crate) grads: Vec<(NodeId, Tensor)>,
    pub(crate) loss: f32,
}

impl GradSample {
    /// Combines `other` into `self` with `self` as the left operand —
    /// one internal node of the canonical tree.
    pub(crate) fn merge(&mut self, other: &GradSample) {
        debug_assert_eq!(self.grads.len(), other.grads.len());
        for ((id_a, grad), (id_b, incoming)) in self.grads.iter_mut().zip(&other.grads) {
            debug_assert_eq!(id_a, id_b, "replicas must agree on parameter order");
            grad.axpy(1.0, incoming)
                .expect("replica gradient shapes match");
        }
        self.loss += other.loss;
    }

    pub(crate) fn scale(&mut self, factor: f32) {
        for (_, grad) in &mut self.grads {
            grad.scale_inplace(factor);
        }
        self.loss *= factor;
    }
}

/// Folds a power-of-two number of leaves as a balanced binary tree,
/// always keeping the left operand — the single float association every
/// replica count must reproduce.
pub(crate) fn tree_fold(mut level: Vec<GradSample>) -> GradSample {
    assert!(
        !level.is_empty() && level.len().is_power_of_two(),
        "tree fold needs a power-of-two leaf count, got {}",
        level.len()
    );
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        let mut pairs = level.into_iter();
        while let (Some(mut left), Some(right)) = (pairs.next(), pairs.next()) {
            left.merge(&right);
            next.push(left);
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

/// Runs micro-batches through an executor and returns the per-leaf
/// gradient samples plus aggregate statistics. Shared by the serial
/// trainer and every parallel worker so both paths execute the same code.
fn leaf_gradients(
    exec: &mut Executor,
    micros: &[LmBatch],
    bind: &BindFn,
    loss: NodeId,
    sim: Option<&mut DeviceSim>,
) -> echo_graph::Result<(Vec<GradSample>, u64, u64)> {
    let mut samples = Vec::with_capacity(micros.len());
    let mut peak_bytes = 0u64;
    let mut replays = 0u64;
    let mut sim = sim;
    for micro in micros {
        let bindings = bind(micro);
        let reborrow = sim.as_deref_mut();
        let stats = exec.train_step(&bindings, loss, ExecOptions::default(), reborrow)?;
        peak_bytes = peak_bytes.max(stats.peak_bytes);
        replays += stats.replays;
        samples.push(GradSample {
            grads: exec.export_grads(),
            loss: stats.loss.expect("numeric plane produces a loss"),
        });
    }
    Ok((samples, peak_bytes, replays))
}

/// Serial reference trainer executing the *same* canonical reduction
/// tree as [`ParallelTrainer`], on one executor. This is the baseline
/// the bit-exactness invariant is stated against, and the fair serial
/// contender for wall-clock comparisons (same micro-batching).
pub struct MicrobatchTrainer {
    exec: Executor,
    plan: MicrobatchPlan,
    opt: Box<dyn Optimizer>,
    bind: Arc<BindFn>,
    loss: NodeId,
    sim: Option<DeviceSim>,
    lanes: usize,
}

impl MicrobatchTrainer {
    /// Builds a serial micro-batch trainer around an already-bound
    /// executor.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if
    /// `micro_batches` cannot tile `lanes`.
    pub fn new(
        exec: Executor,
        lanes: usize,
        micro_batches: usize,
        opt: Box<dyn Optimizer>,
        bind: Arc<BindFn>,
        loss: NodeId,
        sim_spec: Option<DeviceSpec>,
    ) -> Result<Self, String> {
        let plan = MicrobatchPlan::new(lanes, micro_batches)?;
        Ok(MicrobatchTrainer {
            exec,
            plan,
            opt,
            bind,
            loss,
            sim: sim_spec.map(DeviceSim::new),
            lanes,
        })
    }

    /// Convenience constructor for the word-level LM.
    ///
    /// # Errors
    ///
    /// Propagates [`MicrobatchTrainer::new`] errors.
    pub fn for_word_lm(
        lm: &WordLm,
        exec: Executor,
        lanes: usize,
        micro_batches: usize,
        opt: Box<dyn Optimizer>,
        sim_spec: Option<DeviceSpec>,
    ) -> Result<Self, String> {
        let model = lm.clone();
        MicrobatchTrainer::new(
            exec,
            lanes,
            micro_batches,
            opt,
            Arc::new(move |batch: &LmBatch| model.bindings(batch)),
            lm.loss,
            sim_spec,
        )
    }

    /// Runs one global step: per-micro-batch gradients, balanced tree
    /// fold, `1/M` scaling, optimizer update.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have the planned lane count.
    pub fn step(&mut self, batch: &LmBatch) -> echo_graph::Result<StepReport> {
        assert_eq!(batch.batch, self.lanes, "batch does not match plan");
        let host_start = Instant::now();
        let sim_before = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns);
        let micros = self.plan.cut(batch);
        let (samples, peak_bytes, replays) = leaf_gradients(
            &mut self.exec,
            &micros,
            &*self.bind,
            self.loss,
            self.sim.as_mut(),
        )?;
        let compute_host_ns = host_start.elapsed().as_nanos() as u64;
        let sim_ns = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns) - sim_before;

        let mut folded = tree_fold(samples);
        folded.scale(1.0 / self.plan.micro() as f32);
        self.exec.import_grads(&folded.grads);
        let grad_norm = self.opt.apply(&mut self.exec);
        Ok(StepReport {
            loss: folded.loss,
            grad_norm,
            replicas: vec![ReplicaStepStats {
                replica: 0,
                sim_ns,
                peak_bytes,
                replays,
                compute_host_ns,
            }],
        })
    }

    /// Snapshots the current parameters, sorted by id.
    pub fn export_params(&self) -> Vec<(NodeId, Tensor)> {
        self.exec.export_params()
    }

    /// The underlying executor (e.g. for evaluation passes).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }
}

/// A command from the coordinator to a worker.
enum Cmd {
    /// Run this replica's micro-batches and join the all-reduce.
    Step { micros: Vec<LmBatch> },
    /// Reply with a snapshot of the replica's parameters.
    Export {
        reply: Sender<Vec<(NodeId, Tensor)>>,
    },
}

/// A worker's report back to the coordinator after one step.
struct WorkerDone {
    replica: usize,
    stats: ReplicaStepStats,
    /// Present only from rank 0, which runs the optimizer.
    outcome: Option<(f32, f64)>,
}

/// Everything a worker thread owns.
struct Worker {
    replica: usize,
    exec: Executor,
    sim: Option<DeviceSim>,
    bind: Arc<BindFn>,
    loss: NodeId,
    /// Rank 0 owns the optimizer state; everyone else carries `None`.
    opt: Option<Box<dyn Optimizer>>,
    micro_total: usize,
    cmd_rx: Receiver<Cmd>,
    done_tx: Sender<WorkerDone>,
    /// Reduce-tree inboxes, level-ascending: at level `l` this worker
    /// receives the partial sum of the subtree rooted at rank
    /// `replica + 2^l`.
    down: Vec<Receiver<GradSample>>,
    /// Where to send this worker's partial sum (its parent in the tree);
    /// `None` for rank 0.
    up: Option<Sender<GradSample>>,
    /// Rank 0's broadcast fan-out to ranks `1..K`.
    param_txs: Vec<Sender<ParamSet>>,
    /// Where ranks `1..K` receive the post-step parameters.
    param_rx: Option<Receiver<ParamSet>>,
}

impl Worker {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Cmd::Export { reply } => {
                    let _ = reply.send(self.exec.export_params());
                }
                Cmd::Step { micros } => {
                    if self.step(&micros).is_err() {
                        // The coordinator vanished; nothing left to do.
                        return;
                    }
                }
            }
        }
    }

    /// One global step from this worker's perspective. `Err` means a
    /// channel to the coordinator or a peer disconnected.
    fn step(&mut self, micros: &[LmBatch]) -> Result<(), ()> {
        let host_start = Instant::now();
        let sim_before = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns);
        let (samples, peak_bytes, replays) = leaf_gradients(
            &mut self.exec,
            micros,
            &*self.bind,
            self.loss,
            self.sim.as_mut(),
        )
        .expect("replica executor step succeeds");
        let compute_host_ns = host_start.elapsed().as_nanos() as u64;
        let sim_ns = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns) - sim_before;

        // Local subtree fold, then the cross-replica levels of the same
        // canonical tree. Receivers keep the left operand.
        let mut acc = tree_fold(samples);
        for rx in &self.down {
            let partial = rx.recv().map_err(drop)?;
            acc.merge(&partial);
        }
        let mut outcome = None;
        if let Some(up) = &self.up {
            up.send(acc).map_err(drop)?;
            let params = self
                .param_rx
                .as_ref()
                .expect("non-root workers have a param inbox")
                .recv()
                .map_err(drop)?;
            self.exec.import_params(&params);
        } else {
            // Rank 0: scale, update, broadcast.
            acc.scale(1.0 / self.micro_total as f32);
            self.exec.import_grads(&acc.grads);
            let opt = self.opt.as_mut().expect("rank 0 owns the optimizer");
            let grad_norm = opt.apply(&mut self.exec);
            let params = Arc::new(self.exec.export_params());
            for tx in &self.param_txs {
                tx.send(params.clone()).map_err(drop)?;
            }
            outcome = Some((acc.loss, grad_norm));
        }

        self.done_tx
            .send(WorkerDone {
                replica: self.replica,
                stats: ReplicaStepStats {
                    replica: self.replica,
                    sim_ns,
                    peak_bytes,
                    replays,
                    compute_host_ns,
                },
                outcome,
            })
            .map_err(drop)
    }
}

/// Data-parallel trainer: `K` worker threads, each with a full model
/// replica, synchronized every step by a tree all-reduce and a parameter
/// broadcast. See the module docs for the bit-exactness contract.
pub struct ParallelTrainer {
    replicas: usize,
    lanes: usize,
    plan: MicrobatchPlan,
    cmd_txs: Vec<Sender<Cmd>>,
    done_rx: Receiver<WorkerDone>,
    handles: Vec<JoinHandle<()>>,
}

impl ParallelTrainer {
    /// Spawns the worker fleet. Every replica starts from a deep copy of
    /// `template`'s parameters (see [`Executor::clone_replica`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if the plan or
    /// replica count is invalid, or if replica construction fails.
    pub fn new(
        template: &Executor,
        lanes: usize,
        options: &DataParallelOptions,
        opt: Box<dyn Optimizer>,
        bind: Arc<BindFn>,
        loss: NodeId,
    ) -> Result<Self, String> {
        let plan = MicrobatchPlan::new(lanes, options.micro_batches)?;
        let replicas = options.replicas;
        if !plan.supports_replicas(replicas) {
            return Err(format!(
                "{replicas} replicas cannot own aligned subtrees of {} micro-batches \
                 (need a power of two dividing the leaf count)",
                plan.micro()
            ));
        }

        // Warm the shared kernel worker pool before spawning replicas.
        // Replica threads funnel every GEMM / element-wise kernel through
        // this one pool instead of spawning their own threads per call, so
        // K replicas contend for a fixed set of kernel lanes rather than
        // oversubscribing the host with K × cores transient spawns; doing
        // the lazy initialization here keeps it off the first step's
        // critical path.
        let _ = echo_tensor::pool::global();

        // Per-worker command channels and the shared completion channel.
        let (done_tx, done_rx) = unbounded::<WorkerDone>();
        let mut cmd_txs = Vec::with_capacity(replicas);
        let mut cmd_rxs = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let (tx, rx) = unbounded::<Cmd>();
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }

        // Reduce-tree wiring: at level l, rank r (aligned to 2^(l+1))
        // receives from rank r + 2^l. Building levels in ascending order
        // keeps each worker's inbox list level-ascending.
        let mut down: Vec<Vec<Receiver<GradSample>>> = (0..replicas).map(|_| Vec::new()).collect();
        let mut up: Vec<Option<Sender<GradSample>>> = (0..replicas).map(|_| None).collect();
        let mut level_stride = 2;
        while level_stride <= replicas {
            let half = level_stride / 2;
            for receiver in (0..replicas).step_by(level_stride) {
                let sender = receiver + half;
                let (tx, rx) = unbounded::<GradSample>();
                down[receiver].push(rx);
                up[sender] = Some(tx);
            }
            level_stride *= 2;
        }

        // Parameter broadcast: rank 0 fans out to everyone else.
        let mut param_txs = Vec::with_capacity(replicas.saturating_sub(1));
        let mut param_rxs: Vec<Option<Receiver<ParamSet>>> = vec![None];
        for _ in 1..replicas {
            let (tx, rx) = unbounded();
            param_txs.push(tx);
            param_rxs.push(Some(rx));
        }

        let mut handles = Vec::with_capacity(replicas);
        let mut opt = Some(opt);
        // Give workers their wiring in reverse so `pop` hands out rank
        // r's channels at iteration r.
        down.reverse();
        up.reverse();
        param_rxs.reverse();
        for (replica, cmd_rx) in cmd_rxs.into_iter().enumerate() {
            let mem = DeviceMemory::with_overhead_model(options.memory_capacity, 0, 0.0);
            let exec = template
                .clone_replica(mem)
                .map_err(|e| format!("replica {replica}: {e}"))?;
            let worker = Worker {
                replica,
                exec,
                sim: options.sim_spec.clone().map(DeviceSim::new),
                bind: bind.clone(),
                loss,
                opt: if replica == 0 { opt.take() } else { None },
                micro_total: plan.micro(),
                cmd_rx,
                done_tx: done_tx.clone(),
                down: down.pop().expect("one wiring entry per replica"),
                up: up.pop().expect("one wiring entry per replica"),
                param_txs: if replica == 0 {
                    std::mem::take(&mut param_txs)
                } else {
                    Vec::new()
                },
                param_rx: param_rxs.pop().expect("one wiring entry per replica"),
            };
            let handle = std::thread::Builder::new()
                .name(format!("replica-{replica}"))
                .spawn(move || worker.run())
                .map_err(|e| format!("spawning replica {replica}: {e}"))?;
            handles.push(handle);
        }

        Ok(ParallelTrainer {
            replicas,
            lanes,
            plan,
            cmd_txs,
            done_rx,
            handles,
        })
    }

    /// Convenience constructor for the word-level LM.
    ///
    /// # Errors
    ///
    /// Propagates [`ParallelTrainer::new`] errors.
    pub fn for_word_lm(
        lm: &WordLm,
        template: &Executor,
        lanes: usize,
        options: &DataParallelOptions,
        opt: Box<dyn Optimizer>,
    ) -> Result<Self, String> {
        let model = lm.clone();
        ParallelTrainer::new(
            template,
            lanes,
            options,
            opt,
            Arc::new(move |batch: &LmBatch| model.bindings(batch)),
            lm.loss,
        )
    }

    /// Worker count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The canonical reduction-tree plan.
    pub fn plan(&self) -> &MicrobatchPlan {
        &self.plan
    }

    /// Runs one global step across all replicas and waits for the
    /// all-reduce, optimizer update and parameter broadcast to finish.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not have the planned lane count or a
    /// worker thread died.
    pub fn step(&mut self, batch: &LmBatch) -> StepReport {
        assert_eq!(batch.batch, self.lanes, "batch does not match plan");
        let micros = self.plan.cut(batch);
        for (replica, tx) in self.cmd_txs.iter().enumerate() {
            let span = self.plan.replica_leaves(replica, self.replicas);
            tx.send(Cmd::Step {
                micros: micros[span].to_vec(),
            })
            .expect("worker alive");
        }

        let mut stats: Vec<Option<ReplicaStepStats>> = vec![None; self.replicas];
        let mut outcome = None;
        for _ in 0..self.replicas {
            let done = self.done_rx.recv().expect("worker alive");
            if done.outcome.is_some() {
                outcome = done.outcome;
            }
            stats[done.replica] = Some(done.stats);
        }
        let (loss, grad_norm) = outcome.expect("rank 0 reports the step outcome");
        StepReport {
            loss,
            grad_norm,
            replicas: stats
                .into_iter()
                .map(|s| s.expect("every replica reports"))
                .collect(),
        }
    }

    /// Snapshots the parameters of `replica` (all replicas hold
    /// identical parameters between steps).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or its worker died.
    pub fn export_replica_params(&self, replica: usize) -> Vec<(NodeId, Tensor)> {
        let (reply_tx, reply_rx) = unbounded();
        self.cmd_txs[replica]
            .send(Cmd::Export { reply: reply_tx })
            .expect("worker alive");
        reply_rx.recv().expect("worker alive")
    }

    /// Snapshots rank 0's parameters.
    pub fn export_params(&self) -> Vec<(NodeId, Tensor)> {
        self.export_replica_params(0)
    }
}

impl Drop for ParallelTrainer {
    fn drop(&mut self) {
        // Closing the command channels makes every worker's recv loop
        // exit; then reap the threads.
        self.cmd_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_tensor::Shape;

    fn sample(v: f32) -> GradSample {
        GradSample {
            grads: vec![(NodeId::from_index(0), Tensor::full(Shape::d1(2), v))],
            loss: v,
        }
    }

    #[test]
    fn tree_fold_is_balanced_not_sequential() {
        // With exact powers of two the fold is checkable directly.
        let folded = tree_fold((0..8).map(|i| sample(i as f32)).collect());
        assert_eq!(folded.loss, 28.0);
        assert_eq!(folded.grads[0].1.data(), &[28.0, 28.0]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_fold_rejects_non_power_of_two() {
        let _ = tree_fold((0..3).map(|i| sample(i as f32)).collect());
    }

    #[test]
    fn tree_fold_matches_split_subtrees() {
        // Folding 8 leaves whole must equal folding two 4-leaf halves and
        // merging — the exact invariant the cross-replica reduce relies
        // on. Use values whose pairwise sums are inexact in f32 to make
        // association visible.
        let values: Vec<f32> = (0..8).map(|i| 0.1 + 0.7 * i as f32).collect();
        let whole = tree_fold(values.iter().map(|&v| sample(v)).collect());
        let mut left = tree_fold(values[..4].iter().map(|&v| sample(v)).collect());
        let right = tree_fold(values[4..].iter().map(|&v| sample(v)).collect());
        left.merge(&right);
        assert_eq!(whole.loss.to_bits(), left.loss.to_bits());
        assert_eq!(
            whole.grads[0].1.data()[0].to_bits(),
            left.grads[0].1.data()[0].to_bits()
        );
    }
}
