//! GPipe-style pipelined training over a stage-partitioned graph, with
//! the same bit-exactness contract as the data-parallel engine.
//!
//! [`echo_graph::partition_stages`] cuts the graph into `P` contiguous
//! stages at parameter-safe boundaries. This module runs those stages on
//! `K × P` worker threads (`K` pipeline replicas for hybrid
//! pipeline-×-data parallelism): within a replica, activations flow
//! downstream and activation-gradients flow upstream over channels in
//! GPipe fill–drain order; across replicas, each stage's per-micro-batch
//! gradient leaves join the *same canonical reduction tree* the
//! data-parallel engine uses ([`crate::parallel`]). The coordinator owns
//! a full-graph template executor: it folds the per-stage gradients,
//! runs the optimizer once over the whole parameter set (so global
//! clip-norm sees exactly what the serial trainer sees), and broadcasts
//! the updated parameters with the next step command.
//!
//! # Bit-exactness
//!
//! Stages are contiguous original-index ranges, so every consumer of an
//! activation in a *later* stage has a larger original id than any
//! consumer in its own stage. The seeded stage backward
//! ([`Executor::stage_step`]) applies the downstream partial first and
//! then accumulates in-stage contributions in descending order — the
//! exact association of the serial descending-index backward walk. By
//! induction from the ones-seed at the loss in the last stage, every
//! activation gradient, parameter gradient, and therefore the optimizer
//! update is bit-identical to serial execution, for every `(P, K)`
//! layout.
//!
//! # Recomputation
//!
//! Each stage executor runs under the stage-local slice of the
//! *normalized* stash plan ([`StagePartition::stage_plans`]): interface
//! and protected values are stashed (they must survive the cut), and no
//! recompute segment straddles a cut. A serial executor running the
//! normalized full-graph plan performs the same replays as the pipeline
//! — the determinism suite's replay-count contract.
//!
//! # Fault containment
//!
//! A worker that fails — an executor error or a panic in stage code —
//! reports the failure and exits, dropping its channel endpoints. Peers
//! blocked on those channels observe the disconnect, fail in turn, and
//! exit; [`PipelineTrainer::train_step`] collects the errors and returns
//! `Err` instead of deadlocking, and the trainer stays poisoned
//! afterwards.

use crate::parallel::{tree_fold, GradSample, PipelineOptions, StageStepStats};
use crate::trainer::Optimizer;
use crate::word_lm::WordLm;
use crossbeam::channel::{unbounded, Receiver, Sender};
use echo_data::{LmBatch, MicrobatchPlan};
use echo_device::DeviceSim;
use echo_graph::{ExecOptions, Executor, NodeId, NodeKind, StagePartition, StageSpec, StashPlan};
use echo_memory::DeviceMemory;
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Builds full-graph executor bindings for one micro-batch; each stage
/// picks out the inputs it consumes directly.
pub type PipelineBindFn<B> = dyn Fn(&B) -> HashMap<NodeId, Tensor> + Send + Sync;

/// Cuts a global batch into the planned number of micro-batches.
pub type PipelineCutFn<B> = dyn Fn(&B) -> Vec<B> + Send + Sync;

/// Post-step parameter snapshot (original ids, sorted), shared across
/// all `K × P` workers with the next step command.
type ParamSet = Arc<Vec<(NodeId, Tensor)>>;

/// Activations for one micro-batch crossing one cut, in the owning
/// stage's `send_interface` order.
struct ActMsg {
    micro: usize,
    values: Vec<Tensor>,
}

/// Activation-gradients for one micro-batch crossing one cut backwards,
/// aligned with the upstream stage's `send_interface`. `None` means no
/// gradient reached that interface value downstream.
struct GradMsg {
    micro: usize,
    grads: Vec<Option<Tensor>>,
}

/// A stage worker's report for one global step.
struct StageDone {
    stage: usize,
    replica: usize,
    stats: StageStepStats,
    /// The stage's cross-replica-folded gradient sample — present only
    /// from each stage's rank-0 worker.
    folded: Option<GradSample>,
}

/// Commands from the coordinator to a stage worker.
enum PipeCmd<B> {
    /// Run this replica's micro-batches through the stage; import
    /// `params` (if present) first.
    Step {
        micros: Vec<B>,
        params: Option<ParamSet>,
    },
    /// Panic mid-step on the next `Step` — the fault-containment
    /// regression fixture.
    #[cfg(test)]
    Sabotage,
}

/// The outcome of one pipelined global step.
#[derive(Debug, Clone)]
pub struct PipelineStepReport {
    /// Mean loss over the global batch (tree-folded; bit-identical to
    /// the serial trainer).
    pub loss: f32,
    /// Pre-clip global gradient norm seen by the coordinator's
    /// optimizer.
    pub grad_norm: f64,
    /// Per-worker statistics, sorted by `(stage, replica)`.
    pub stages: Vec<StageStepStats>,
}

impl PipelineStepReport {
    /// Total recomputation replays across all stages and replicas.
    pub fn total_replays(&self) -> u64 {
        self.stages.iter().map(|s| s.replays).sum()
    }

    /// Peak device bytes over all stage executors.
    pub fn max_stage_peak_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.peak_bytes).max().unwrap_or(0)
    }
}

/// Stage-local handles a worker needs, precomputed once per stage and
/// shared by its `K` replicas.
struct StageWiring {
    spec: Arc<StageSpec>,
    plan: StashPlan,
    /// `(original, local)` ids of the batch inputs this stage binds.
    batch_pairs: Vec<(NodeId, NodeId)>,
    /// Received interface, local ids (ascending original order).
    recv_local: Vec<NodeId>,
    /// Sent interface, local ids (ascending original order).
    send_local: Vec<NodeId>,
    /// `send_local[i]` is an op owned by this stage (vs. a pass-through
    /// input whose value comes from the local bindings).
    send_owned_mask: Vec<bool>,
    /// The owned subset of `send_local` — the forward outputs.
    send_owned: Vec<NodeId>,
    /// Local loss id and shape — last stage only.
    loss_local: Option<NodeId>,
    loss_shape: Option<Shape>,
}

impl StageWiring {
    fn build(
        spec: Arc<StageSpec>,
        plan: StashPlan,
        loss: NodeId,
        last: bool,
    ) -> Result<StageWiring, String> {
        let batch_pairs = spec
            .batch_inputs
            .iter()
            .map(|&orig| {
                spec.to_local(orig)
                    .map(|local| (orig, local))
                    .ok_or_else(|| format!("stage {}: unmapped batch input {orig}", spec.index))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let send_local = spec.local_send();
        let send_owned_mask: Vec<bool> = send_local
            .iter()
            .map(|&local| {
                matches!(
                    spec.graph.node(local).map(|n| &n.kind),
                    Ok(NodeKind::Op { .. })
                )
            })
            .collect();
        let send_owned: Vec<NodeId> = send_local
            .iter()
            .zip(&send_owned_mask)
            .filter(|(_, &owned)| owned)
            .map(|(&local, _)| local)
            .collect();
        let (loss_local, loss_shape) = if last {
            let local = spec.to_local(loss).ok_or_else(|| {
                format!(
                    "loss {loss} is not carried by the last stage {}",
                    spec.index
                )
            })?;
            let shape = spec.shapes[local.index()].clone();
            (Some(local), Some(shape))
        } else {
            (None, None)
        };
        Ok(StageWiring {
            recv_local: spec.local_recv(),
            spec,
            plan,
            batch_pairs,
            send_local,
            send_owned_mask,
            send_owned,
            loss_local,
            loss_shape,
        })
    }
}

/// Everything one stage worker thread owns.
struct StageWorker<B> {
    stage: usize,
    replica: usize,
    exec: Executor,
    sim: Option<DeviceSim>,
    bind: Arc<PipelineBindFn<B>>,
    wiring: Arc<StageWiring>,
    cmd_rx: Receiver<PipeCmd<B>>,
    done_tx: Sender<Result<StageDone, String>>,
    /// Activations from the previous stage (`None` at stage 0).
    act_rx: Option<Receiver<ActMsg>>,
    /// Activations to the next stage (`None` at the last stage).
    act_tx: Option<Sender<ActMsg>>,
    /// Activation-gradients from the next stage (`None` at the last
    /// stage).
    grad_rx: Option<Receiver<GradMsg>>,
    /// Activation-gradients to the previous stage (`None` at stage 0).
    grad_tx: Option<Sender<GradMsg>>,
    /// Cross-replica reduce-tree inboxes for this stage,
    /// level-ascending (see [`crate::parallel`]).
    down: Vec<Receiver<GradSample>>,
    /// Parent in the stage's reduce tree; `None` at replica rank 0.
    up: Option<Sender<GradSample>>,
    #[cfg(test)]
    sabotage: bool,
}

impl<B> StageWorker<B> {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                #[cfg(test)]
                PipeCmd::Sabotage => self.sabotage = true,
                PipeCmd::Step { micros, params } => {
                    let unwound = catch_unwind(AssertUnwindSafe(|| self.step(&micros, params)));
                    let result = unwound.unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(format!(
                            "stage {} replica {} worker panicked: {msg}",
                            self.stage, self.replica
                        ))
                    });
                    let failed = result.is_err();
                    let _ = self.done_tx.send(result);
                    if failed {
                        // Exit, dropping every channel endpoint: peers
                        // blocked on this worker observe the disconnect
                        // and unwind the step instead of deadlocking.
                        return;
                    }
                }
            }
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("stage {} replica {}: {what}", self.stage, self.replica)
    }

    /// One global step from this worker's perspective: fill (forward all
    /// micro-batches, streaming activations downstream), drain (seeded
    /// stage backward per micro-batch, streaming gradients upstream),
    /// then the stage's cross-replica gradient fold.
    fn step(&mut self, micros: &[B], params: Option<ParamSet>) -> Result<StageDone, String> {
        if let Some(params) = params {
            for &orig in &self.wiring.spec.params {
                if let Ok(i) = params.binary_search_by_key(&orig, |&(id, _)| id) {
                    let local = self
                        .wiring
                        .spec
                        .to_local(orig)
                        .expect("owned params are carried by their stage");
                    self.exec
                        .bind_param(local, params[i].1.clone())
                        .map_err(|e| self.fail(&format!("param import: {e}")))?;
                }
            }
        }
        #[cfg(test)]
        if self.sabotage {
            panic!("injected stage fault");
        }
        let host_start = Instant::now();
        let sim_before = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns);

        // Fill: forward every micro-batch in order, sending interface
        // activations downstream as soon as they exist.
        let fwd_opts = ExecOptions {
            training: false,
            numeric: true,
        };
        let mut stage_bindings: Vec<HashMap<NodeId, Tensor>> = Vec::with_capacity(micros.len());
        for (m, micro) in micros.iter().enumerate() {
            let full = (self.bind)(micro);
            let mut local = HashMap::new();
            for &(orig, local_id) in &self.wiring.batch_pairs {
                let value = full
                    .get(&orig)
                    .ok_or_else(|| self.fail(&format!("binding for input {orig} missing")))?;
                local.insert(local_id, value.clone());
            }
            if let Some(rx) = &self.act_rx {
                let msg = rx
                    .recv()
                    .map_err(|_| self.fail("upstream stage disconnected during fill"))?;
                if msg.micro != m {
                    return Err(self.fail(&format!(
                        "activation stream out of order: got micro {}, expected {m}",
                        msg.micro
                    )));
                }
                for (&local_id, value) in self.wiring.recv_local.iter().zip(msg.values) {
                    local.insert(local_id, value);
                }
            }
            if let Some(tx) = &self.act_tx {
                let owned = self
                    .exec
                    .forward_many(&local, &self.wiring.send_owned, fwd_opts, self.sim.as_mut())
                    .map_err(|e| {
                        format!(
                            "stage {} replica {} forward (micro {m}): {e}",
                            self.stage, self.replica
                        )
                    })?;
                let mut produced = owned.into_iter();
                let values = self
                    .wiring
                    .send_local
                    .iter()
                    .zip(&self.wiring.send_owned_mask)
                    .map(|(local_id, &is_owned)| {
                        if is_owned {
                            produced.next().expect("one value per owned send node")
                        } else {
                            local[local_id].clone()
                        }
                    })
                    .collect();
                tx.send(ActMsg { micro: m, values })
                    .map_err(|_| self.fail("downstream stage disconnected during fill"))?;
            }
            stage_bindings.push(local);
        }

        // Drain: seeded stage backward per micro-batch, in micro order.
        // The stage forward is re-run inside `stage_step` under the
        // stage-local stash plan (re-materialization), so the fill phase
        // holds no activations across micro-batches.
        let mut samples = Vec::with_capacity(micros.len());
        let mut peak_bytes = 0u64;
        let mut replays = 0u64;
        for (m, local) in stage_bindings.iter().enumerate() {
            let seeds: Vec<(NodeId, Tensor)> = if let Some(rx) = &self.grad_rx {
                let msg = rx
                    .recv()
                    .map_err(|_| self.fail("downstream stage disconnected during drain"))?;
                if msg.micro != m {
                    return Err(self.fail(&format!(
                        "gradient stream out of order: got micro {}, expected {m}",
                        msg.micro
                    )));
                }
                self.wiring
                    .send_local
                    .iter()
                    .zip(msg.grads)
                    .filter_map(|(&local_id, grad)| grad.map(|g| (local_id, g)))
                    .collect()
            } else {
                let loss_local = self.wiring.loss_local.expect("last stage carries the loss");
                let shape = self.wiring.loss_shape.clone().expect("loss shape known");
                vec![(loss_local, Tensor::full(shape, 1.0))]
            };
            let outputs: Vec<NodeId> = match self.wiring.loss_local {
                Some(loss_local) => vec![loss_local],
                None => self.wiring.send_owned.clone(),
            };
            let out = self
                .exec
                .stage_step(
                    local,
                    &outputs,
                    &seeds,
                    &self.wiring.recv_local,
                    ExecOptions::default(),
                    self.sim.as_mut(),
                )
                .map_err(|e| {
                    format!(
                        "stage {} replica {} backward (micro {m}): {e}",
                        self.stage, self.replica
                    )
                })?;
            if let Some(tx) = &self.grad_tx {
                tx.send(GradMsg {
                    micro: m,
                    grads: out.input_grads,
                })
                .map_err(|_| self.fail("upstream stage disconnected during drain"))?;
            }
            let loss = match self.wiring.loss_local {
                Some(_) => out.outputs[0].data()[0],
                None => 0.0,
            };
            peak_bytes = peak_bytes.max(out.stats.peak_bytes);
            replays += out.stats.replays;
            let grads = self
                .exec
                .export_grads()
                .into_iter()
                .map(|(local_id, grad)| (self.wiring.spec.to_orig(local_id), grad))
                .collect();
            samples.push(GradSample { grads, loss });
        }
        let compute_host_ns = host_start.elapsed().as_nanos() as u64;
        let sim_ns = self.sim.as_ref().map_or(0, DeviceSim::elapsed_ns) - sim_before;

        // This stage's slice of the canonical reduction tree: local
        // subtree fold, then the cross-replica levels. Receivers keep
        // the left operand.
        let mut acc = tree_fold(samples);
        for rx in &self.down {
            let partial = rx
                .recv()
                .map_err(|_| self.fail("reduce-tree peer disconnected"))?;
            acc.merge(&partial);
        }
        let folded = match &self.up {
            Some(up) => {
                up.send(acc)
                    .map_err(|_| self.fail("reduce-tree parent disconnected"))?;
                None
            }
            None => Some(acc),
        };
        Ok(StageDone {
            stage: self.stage,
            replica: self.replica,
            stats: StageStepStats {
                stage: self.stage,
                replica: self.replica,
                sim_ns,
                peak_bytes,
                replays,
                compute_host_ns,
            },
            folded,
        })
    }
}

/// Pipelined (and optionally replicated) trainer: `K × P` stage workers
/// plus a coordinator-owned full-graph template executor that runs the
/// optimizer. See the module docs for the execution model and the
/// bit-exactness contract.
pub struct PipelineTrainer<B> {
    stages: usize,
    replicas: usize,
    plan: MicrobatchPlan,
    cut: Arc<PipelineCutFn<B>>,
    template: Executor,
    opt: Box<dyn Optimizer>,
    pending_params: Option<ParamSet>,
    cmd_txs: Vec<Sender<PipeCmd<B>>>,
    done_rx: Receiver<Result<StageDone, String>>,
    handles: Vec<JoinHandle<()>>,
    poisoned: Option<String>,
}

impl<B: Clone + Send + 'static> PipelineTrainer<B> {
    /// Spawns the `K × P` worker fleet. Stage executors start from
    /// `template`'s parameters; `template` itself never executes — the
    /// coordinator keeps it as the canonical parameter/gradient store
    /// the optimizer runs on.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint: an invalid
    /// partition, a micro-batch plan that cannot tile `lanes` or align
    /// with `replicas`, a loss outside the last stage, or worker
    /// construction failure.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        template: Executor,
        partition: &StagePartition,
        stash_plan: &StashPlan,
        lanes: usize,
        options: &PipelineOptions,
        opt: Box<dyn Optimizer>,
        bind: Arc<PipelineBindFn<B>>,
        cut: Arc<PipelineCutFn<B>>,
        loss: NodeId,
    ) -> Result<Self, String> {
        partition.validate().map_err(|e| e.to_string())?;
        let stages = partition.stage_count();
        let replicas = options.replicas;
        let plan = MicrobatchPlan::new(lanes, options.micro_batches)?;
        if !plan.supports_replicas(replicas) {
            return Err(format!(
                "{replicas} replicas cannot own aligned subtrees of {} micro-batches",
                plan.micro()
            ));
        }
        let local_plans = partition.stage_plans(stash_plan);
        let params = Arc::new(template.export_params());
        let wirings: Vec<Arc<StageWiring>> = partition
            .stages()
            .iter()
            .zip(local_plans)
            .map(|(spec, local_plan)| {
                StageWiring::build(
                    Arc::new(spec.clone()),
                    local_plan,
                    loss,
                    spec.index == stages - 1,
                )
                .map(Arc::new)
            })
            .collect::<Result<Vec<_>, String>>()?;

        // Warm the shared kernel pool off the first step's critical path.
        let _ = echo_tensor::pool::global();

        let idx = |k: usize, s: usize| k * stages + s;
        let (done_tx, done_rx) = unbounded();
        let mut cmd_txs = Vec::with_capacity(replicas * stages);
        let mut cmd_rxs = Vec::with_capacity(replicas * stages);
        for _ in 0..replicas * stages {
            let (tx, rx) = unbounded();
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }

        // Intra-replica activation/gradient chains between consecutive
        // stages.
        let mut act_rx: Vec<Option<Receiver<ActMsg>>> =
            (0..replicas * stages).map(|_| None).collect();
        let mut act_tx: Vec<Option<Sender<ActMsg>>> =
            (0..replicas * stages).map(|_| None).collect();
        let mut grad_rx: Vec<Option<Receiver<GradMsg>>> =
            (0..replicas * stages).map(|_| None).collect();
        let mut grad_tx: Vec<Option<Sender<GradMsg>>> =
            (0..replicas * stages).map(|_| None).collect();
        for k in 0..replicas {
            for s in 0..stages.saturating_sub(1) {
                let (atx, arx) = unbounded();
                act_tx[idx(k, s)] = Some(atx);
                act_rx[idx(k, s + 1)] = Some(arx);
                let (gtx, grx) = unbounded();
                grad_tx[idx(k, s + 1)] = Some(gtx);
                grad_rx[idx(k, s)] = Some(grx);
            }
        }

        // Per-stage cross-replica reduce trees, wired exactly like the
        // data-parallel engine's (level-ascending inboxes).
        let mut down: Vec<Vec<Receiver<GradSample>>> =
            (0..replicas * stages).map(|_| Vec::new()).collect();
        let mut up: Vec<Option<Sender<GradSample>>> =
            (0..replicas * stages).map(|_| None).collect();
        for s in 0..stages {
            let mut level_stride = 2;
            while level_stride <= replicas {
                let half = level_stride / 2;
                for receiver in (0..replicas).step_by(level_stride) {
                    let sender = receiver + half;
                    let (tx, rx) = unbounded();
                    down[idx(receiver, s)].push(rx);
                    up[idx(sender, s)] = Some(tx);
                }
                level_stride *= 2;
            }
        }

        let mut handles = Vec::with_capacity(replicas * stages);
        let mut cmd_rxs = cmd_rxs.into_iter();
        for k in 0..replicas {
            for (s, stage_wiring) in wirings.iter().enumerate() {
                let i = idx(k, s);
                let wiring = Arc::clone(stage_wiring);
                let mem = DeviceMemory::with_overhead_model(options.memory_capacity, 0, 0.0);
                let mut exec =
                    Executor::new(Arc::clone(&wiring.spec.graph), wiring.plan.clone(), mem);
                for &orig in &wiring.spec.params {
                    let pi = params
                        .binary_search_by_key(&orig, |&(id, _)| id)
                        .map_err(|_| format!("stage {s}: template lacks param {orig}"))?;
                    let local = wiring
                        .spec
                        .to_local(orig)
                        .expect("owned params are carried by their stage");
                    exec.bind_param(local, params[pi].1.clone())
                        .map_err(|e| format!("stage {s} replica {k} param bind: {e}"))?;
                }
                let worker = StageWorker {
                    stage: s,
                    replica: k,
                    exec,
                    sim: options.sim_spec.clone().map(DeviceSim::new),
                    bind: bind.clone(),
                    wiring,
                    cmd_rx: cmd_rxs.next().expect("one command inbox per worker"),
                    done_tx: done_tx.clone(),
                    act_rx: act_rx[i].take(),
                    act_tx: act_tx[i].take(),
                    grad_rx: grad_rx[i].take(),
                    grad_tx: grad_tx[i].take(),
                    down: std::mem::take(&mut down[i]),
                    up: up[i].take(),
                    #[cfg(test)]
                    sabotage: false,
                };
                let handle = std::thread::Builder::new()
                    .name(format!("pipe-r{k}-s{s}"))
                    .spawn(move || worker.run())
                    .map_err(|e| format!("spawning stage {s} replica {k}: {e}"))?;
                handles.push(handle);
            }
        }

        Ok(PipelineTrainer {
            stages,
            replicas,
            plan,
            cut,
            template,
            opt,
            pending_params: None,
            cmd_txs,
            done_rx,
            handles,
            poisoned: None,
        })
    }

    /// Pipeline depth `P`.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Replica count `K`.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The canonical reduction-tree plan.
    pub fn plan(&self) -> &MicrobatchPlan {
        &self.plan
    }

    /// Runs one global step: fill–drain over all stages and replicas,
    /// canonical gradient fold, one optimizer update on the template,
    /// and a parameter broadcast with the next step.
    ///
    /// # Errors
    ///
    /// Returns the first worker failure (executor error or stage panic).
    /// After a failure the trainer is poisoned and every further call
    /// fails immediately.
    pub fn train_step(&mut self, batch: &B) -> Result<PipelineStepReport, String> {
        if let Some(earlier) = &self.poisoned {
            return Err(format!("pipeline poisoned by earlier failure: {earlier}"));
        }
        let micros = (self.cut)(batch);
        if micros.len() != self.plan.micro() {
            return Err(format!(
                "batch cut into {} micro-batches, plan expects {}",
                micros.len(),
                self.plan.micro()
            ));
        }
        let params = self.pending_params.take();
        let mut expected = 0usize;
        let mut first_error: Option<String> = None;
        for k in 0..self.replicas {
            let span = self.plan.replica_leaves(k, self.replicas);
            let shard = micros[span].to_vec();
            for s in 0..self.stages {
                let sent = self.cmd_txs[k * self.stages + s].send(PipeCmd::Step {
                    micros: shard.clone(),
                    params: params.clone(),
                });
                match sent {
                    Ok(()) => expected += 1,
                    Err(_) => {
                        first_error.get_or_insert(format!(
                            "stage {s} replica {k} worker is gone before the step"
                        ));
                    }
                }
            }
        }

        let mut stats: Vec<Option<StageStepStats>> = vec![None; self.stages * self.replicas];
        let mut folded: Vec<Option<GradSample>> = (0..self.stages).map(|_| None).collect();
        for _ in 0..expected {
            match self.done_rx.recv() {
                Ok(Ok(done)) => {
                    stats[done.replica * self.stages + done.stage] = Some(done.stats);
                    if let Some(sample) = done.folded {
                        folded[done.stage] = Some(sample);
                    }
                }
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    first_error.get_or_insert("all stage workers disconnected".to_string());
                    break;
                }
            }
        }
        if first_error.is_none() && folded.iter().any(Option::is_none) {
            first_error = Some("a stage produced no folded gradients".to_string());
        }
        if let Some(e) = first_error {
            self.poisoned = Some(e.clone());
            return Err(e);
        }

        // Assemble the disjoint per-stage gradients into the template,
        // exactly as the serial trainer would: scale by 1/M, import,
        // one optimizer pass over the full parameter set.
        let scale = 1.0 / self.plan.micro() as f32;
        let mut loss = 0.0f32;
        let mut all_grads: Vec<(NodeId, Tensor)> = Vec::new();
        for (s, sample) in folded.into_iter().enumerate() {
            let mut sample = sample.expect("checked above");
            sample.scale(scale);
            if s == self.stages - 1 {
                loss = sample.loss;
            }
            all_grads.extend(sample.grads);
        }
        all_grads.sort_by_key(|&(id, _)| id);
        self.template.import_grads(&all_grads);
        let grad_norm = self.opt.apply(&mut self.template);
        self.pending_params = Some(Arc::new(self.template.export_params()));

        let mut stage_stats = Vec::with_capacity(self.stages * self.replicas);
        for k in 0..self.replicas {
            for s in 0..self.stages {
                stage_stats.push(
                    stats[k * self.stages + s]
                        .clone()
                        .expect("every commanded worker reported"),
                );
            }
        }
        stage_stats.sort_by_key(|st| (st.stage, st.replica));
        Ok(PipelineStepReport {
            loss,
            grad_norm,
            stages: stage_stats,
        })
    }

    /// Snapshots the coordinator's (authoritative) parameters, sorted by
    /// original id.
    pub fn export_params(&self) -> Vec<(NodeId, Tensor)> {
        self.template.export_params()
    }

    /// The coordinator's template executor.
    pub fn executor(&self) -> &Executor {
        &self.template
    }

    /// Arms the fault-containment fixture: the next step panics inside
    /// the given worker's stage code.
    #[cfg(test)]
    fn inject_panic(&self, stage: usize, replica: usize) {
        let _ = self.cmd_txs[replica * self.stages + stage].send(PipeCmd::Sabotage);
    }
}

impl PipelineTrainer<LmBatch> {
    /// Convenience constructor for the word-level LM.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineTrainer::new`] errors.
    pub fn for_word_lm(
        lm: &WordLm,
        template: Executor,
        partition: &StagePartition,
        stash_plan: &StashPlan,
        lanes: usize,
        options: &PipelineOptions,
        opt: Box<dyn Optimizer>,
    ) -> Result<Self, String> {
        let model = lm.clone();
        let plan = MicrobatchPlan::new(lanes, options.micro_batches)?;
        PipelineTrainer::new(
            template,
            partition,
            stash_plan,
            lanes,
            options,
            opt,
            Arc::new(move |batch: &LmBatch| model.bindings(batch)),
            Arc::new(move |batch: &LmBatch| plan.cut(batch)),
            lm.loss,
        )
    }
}

impl<B> Drop for PipelineTrainer<B> {
    fn drop(&mut self) {
        // Closing the command channels ends every worker's recv loop;
        // then reap the threads.
        self.cmd_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::Sgd;
    use crate::word_lm::{WordLm, WordLmHyper};
    use echo_graph::{partition_stages, Gir};
    use echo_rnn::LstmBackend;

    fn tiny_lm() -> WordLm {
        WordLm::build(WordLmHyper {
            vocab: 23,
            embed: 6,
            hidden: 8,
            layers: 2,
            seq_len: 4,
            backend: LstmBackend::Default,
        })
    }

    fn lm_partition(lm: &WordLm, batch: usize, stages: usize) -> StagePartition {
        let binding_shapes: HashMap<NodeId, Shape> = lm
            .symbolic_bindings(batch)
            .iter()
            .map(|(&id, t)| (id, t.shape().clone()))
            .collect();
        let gir = Gir::from_graph(
            Arc::clone(&lm.graph),
            &binding_shapes,
            &lm.param_shapes(),
            &[lm.loss],
        )
        .unwrap();
        partition_stages(&gir, stages).unwrap()
    }

    fn synth_batch(lm: &WordLm, lanes: usize) -> LmBatch {
        let t = lm.hyper.seq_len;
        let ids: Vec<f32> = (0..t * lanes)
            .map(|i| ((i * 7 + 3) % lm.hyper.vocab) as f32)
            .collect();
        let targets: Vec<f32> = (0..t * lanes)
            .map(|i| ((i * 5 + 1) % lm.hyper.vocab) as f32)
            .collect();
        LmBatch {
            input: Tensor::from_vec(Shape::d2(t, lanes), ids).unwrap(),
            targets: Tensor::from_vec(Shape::d1(t * lanes), targets).unwrap(),
            batch: lanes,
            seq_len: t,
        }
    }

    /// Satellite: a panicking stage worker must poison the pipeline —
    /// `train_step` returns an error (and keeps failing), never
    /// deadlocks, and `Drop` still reaps every thread.
    #[test]
    fn injected_stage_panic_poisons_pipeline_instead_of_deadlocking() {
        let lm = tiny_lm();
        let lanes = 4;
        let mut template = Executor::new(
            Arc::clone(&lm.graph),
            StashPlan::stash_all(),
            DeviceMemory::with_overhead_model(1 << 30, 0, 0.0),
        );
        lm.bind_params(&mut template, 11).unwrap();
        let partition = lm_partition(&lm, lanes, 2);
        let options = PipelineOptions::new(1, 2);
        let mut trainer = PipelineTrainer::for_word_lm(
            &lm,
            template,
            &partition,
            &StashPlan::stash_all(),
            lanes,
            &options,
            Box::new(Sgd::new(0.1)),
        )
        .unwrap();
        let batch = synth_batch(&lm, lanes);

        let report = trainer.train_step(&batch).expect("healthy step succeeds");
        assert!(report.loss.is_finite());
        assert_eq!(report.stages.len(), 2);

        trainer.inject_panic(1, 0);
        let err = trainer.train_step(&batch).unwrap_err();
        assert!(err.contains("panicked"), "unexpected error: {err}");
        let err2 = trainer.train_step(&batch).unwrap_err();
        assert!(err2.contains("poisoned"), "unexpected error: {err2}");
        // Drop must reap the remaining workers without hanging.
    }
}
