//! A ResNet-50 cost model for the paper's motivation figure (Figure 4a).
//!
//! The figure only shows that a CNN's training throughput *saturates* with
//! batch size (compute-bound large kernels) while the LSTM NMT model's
//! keeps scaling until it hits the memory wall. We therefore model
//! ResNet-50 as its per-stage FLOP/byte/parallelism profile driven through
//! the same device simulator — no numeric CNN is needed.

use echo_device::{DeviceSim, DeviceSpec, KernelCategory, KernelCost};

/// One ResNet-50 stage: `(name, conv layers, flops per image, activation
/// elements per image)`.
///
/// FLOP counts follow the standard 3.8 GFLOP/image forward profile,
/// distributed over the four residual stages plus stem and head.
const STAGES: &[(&str, usize, u64, usize)] = &[
    ("stem_conv7x7", 1, 236_000_000, 802_816),
    ("stage1", 9, 680_000_000, 802_816),
    ("stage2", 12, 850_000_000, 401_408),
    ("stage3", 18, 1_200_000_000, 200_704),
    ("stage4", 9, 800_000_000, 100_352),
    ("head_fc", 1, 4_000_000, 1000),
];

/// Elements each CUDA thread produces in the modeled conv kernels
/// (thread coarsening): determines how quickly occupancy saturates with
/// batch size.
const ELEMS_PER_THREAD: usize = 8;

/// Simulated nanoseconds for one ResNet-50 training iteration at `batch`.
pub fn resnet50_iteration_ns(batch: usize, spec: &DeviceSpec) -> u64 {
    let mut sim = DeviceSim::new(spec.clone());
    sim.set_record_trace(false);
    for &(name, layers, flops, act_elems) in STAGES {
        let per_layer_flops = flops / layers as u64;
        for _ in 0..layers {
            // Forward kernel.
            let cost = KernelCost::new(
                per_layer_flops * batch as u64,
                (act_elems * batch * 4 / layers).max(1) as u64,
                act_elems * batch / layers.max(1) / ELEMS_PER_THREAD,
            );
            sim.launch(name, KernelCategory::Other, cost);
        }
        // Backward: ~2x forward compute (dX and dW convolutions).
        for _ in 0..layers {
            let cost = KernelCost::new(
                2 * per_layer_flops * batch as u64,
                (2 * act_elems * batch * 4 / layers).max(1) as u64,
                act_elems * batch / layers.max(1) / ELEMS_PER_THREAD,
            );
            sim.launch(name, KernelCategory::Other, cost);
        }
    }
    sim.synchronize();
    sim.elapsed_ns()
}

/// Approximate training memory footprint of ResNet-50 at `batch`
/// (activations dominate; ~103 MB of feature maps per image at FP32 plus
/// ~100 MB of weights/optimizer state).
pub fn resnet50_memory_bytes(batch: usize) -> u64 {
    let activations_per_image: u64 = STAGES
        .iter()
        .map(|&(_, layers, _, act)| (layers * act * 4) as u64)
        .sum();
    activations_per_image * batch as u64 + (100 << 20)
}

/// Training throughput (images/s) at `batch` on `spec`.
pub fn resnet50_throughput(batch: usize, spec: &DeviceSpec) -> f64 {
    let ns = resnet50_iteration_ns(batch, spec);
    batch as f64 / (ns as f64 * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_saturates_with_batch_size() {
        // The motivation of Figure 4(a): beyond batch 32 the GPU compute
        // units are full and throughput flattens.
        let spec = DeviceSpec::titan_xp();
        let t8 = resnet50_throughput(8, &spec);
        let t32 = resnet50_throughput(32, &spec);
        let t128 = resnet50_throughput(128, &spec);
        assert!(t32 > t8, "throughput should still grow to 32");
        let gain = t128 / t32;
        assert!(
            gain < 1.3,
            "throughput must saturate after 32: 32→128 gain {gain:.2}"
        );
        let early_gain = t32 / t8;
        assert!(early_gain > gain, "early scaling beats late scaling");
    }

    #[test]
    fn iteration_time_grows_linearly_when_saturated() {
        let spec = DeviceSpec::titan_xp();
        let t64 = resnet50_iteration_ns(64, &spec) as f64;
        let t128 = resnet50_iteration_ns(128, &spec) as f64;
        let ratio = t128 / t64;
        assert!((1.6..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memory_scales_with_batch() {
        assert!(resnet50_memory_bytes(64) > 2 * resnet50_memory_bytes(16));
        // At batch 128 ResNet-50 is still comfortably inside 12 GB.
        assert!(resnet50_memory_bytes(128) < 12 << 30);
    }
}
