//! Optimization and training bookkeeping: SGD with momentum and gradient
//! clipping, the speedometer, and training logs.

use echo_graph::{Executor, NodeId};
use echo_tensor::{kernels, Tensor};
use std::collections::HashMap;

/// A parameter-update rule over an executor's accumulated gradients.
///
/// Both the serial training loops and the data-parallel
/// [`crate::parallel::ParallelTrainer`] (where the optimizer runs on rank
/// 0 after the gradient all-reduce) drive optimizers through this trait.
/// `Send` is required so rank 0's worker thread can own the state.
pub trait Optimizer: Send {
    /// Applies one update to every parameter of `exec` from its
    /// accumulated gradients. Returns the pre-clip gradient norm.
    fn apply(&mut self, exec: &mut Executor) -> f64;
}

impl Optimizer for Sgd {
    fn apply(&mut self, exec: &mut Executor) -> f64 {
        self.step(exec)
    }
}

impl Optimizer for Adam {
    fn apply(&mut self, exec: &mut Executor) -> f64 {
        self.step(exec)
    }
}

/// SGD with optional momentum and global-norm gradient clipping — the
/// optimizer used by the MXNet word-LM example and (modulo Adam) close
/// enough to Sockeye's for curve-shape purposes.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Global gradient-norm clip (`None` disables clipping).
    pub clip_norm: Option<f64>,
    velocity: HashMap<NodeId, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip_norm: None,
            velocity: HashMap::new(),
        }
    }

    /// Adds momentum (builder style).
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds global-norm clipping (builder style).
    #[must_use]
    pub fn with_clip_norm(mut self, clip: f64) -> Self {
        self.clip_norm = Some(clip);
        self
    }

    /// Applies one update to every parameter of `exec` from its
    /// accumulated gradients. Returns the pre-clip gradient norm.
    pub fn step(&mut self, exec: &mut Executor) -> f64 {
        // Global gradient norm, then an optional clip pass.
        let mut norm = 0.0f64;
        exec.for_each_param_grad(|_, _, g| {
            norm += g.norm_l2().powi(2);
        });
        norm = norm.sqrt();
        if let Some(clip) = self.clip_norm {
            if norm > clip && norm > 0.0 {
                let scale = (clip / norm) as f32;
                exec.for_each_param_grad(|_, _, g| g.scale_inplace(scale));
            }
        }

        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        exec.for_each_param_grad(|id, value, grad| {
            if momentum > 0.0 {
                let v = velocity
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(value.shape().clone()));
                v.scale_inplace(momentum);
                v.axpy(1.0, grad).expect("shapes match");
                value.axpy(-lr, v).expect("shapes match");
            } else {
                value.axpy(-lr, grad).expect("shapes match");
            }
        });
        norm
    }
}

/// Adam (Kingma & Ba) with global-norm clipping — Sockeye's optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Global gradient-norm clip (`None` disables clipping).
    pub clip_norm: Option<f64>,
    step: u64,
    m: HashMap<NodeId, Tensor>,
    v: HashMap<NodeId, Tensor>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) decays.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            step: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Adds global-norm clipping (builder style).
    #[must_use]
    pub fn with_clip_norm(mut self, clip: f64) -> Self {
        self.clip_norm = Some(clip);
        self
    }

    /// Applies one update from the executor's accumulated gradients.
    /// Returns the pre-clip gradient norm.
    pub fn step(&mut self, exec: &mut Executor) -> f64 {
        let mut norm = 0.0f64;
        exec.for_each_param_grad(|_, _, g| {
            norm += g.norm_l2().powi(2);
        });
        norm = norm.sqrt();
        if let Some(clip) = self.clip_norm {
            if norm > clip && norm > 0.0 {
                let scale = (clip / norm) as f32;
                exec.for_each_param_grad(|_, _, g| g.scale_inplace(scale));
            }
        }
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        exec.for_each_param_grad(|id, value, grad| {
            let m = ms
                .entry(id)
                .or_insert_with(|| Tensor::zeros(value.shape().clone()));
            let v = vs
                .entry(id)
                .or_insert_with(|| Tensor::zeros(value.shape().clone()));
            for i in 0..grad.len() {
                let g = grad.data()[i];
                let mi = b1 * m.data()[i] + (1.0 - b1) * g;
                let vi = b2 * v.data()[i] + (1.0 - b2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
        norm
    }
}

/// MXNet-speedometer-style throughput meter over *simulated* device time.
#[derive(Debug, Clone, Default)]
pub struct Speedometer {
    samples: u64,
    sim_ns: u64,
    iterations: u64,
    replays: u64,
}

impl Speedometer {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Speedometer::default()
    }

    /// Records one iteration of `batch` samples taking `sim_ns` simulated
    /// nanoseconds.
    pub fn record(&mut self, batch: usize, sim_ns: u64) {
        self.record_with_replays(batch, sim_ns, 0);
    }

    /// Like [`Speedometer::record`], also accounting the iteration's
    /// segment replays (from
    /// [`IterationStats::replays`](echo_graph::IterationStats) or a delta
    /// of the executor's cumulative `replays()` counter) — so training
    /// loops can report recompute pressure next to throughput.
    pub fn record_with_replays(&mut self, batch: usize, sim_ns: u64, replays: u64) {
        self.samples += batch as u64;
        self.sim_ns += sim_ns;
        self.iterations += 1;
        self.replays += replays;
    }

    /// Average throughput in samples per (simulated) second.
    pub fn samples_per_second(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.samples as f64 / (self.sim_ns as f64 * 1e-9)
        }
    }

    /// Total simulated time recorded.
    pub fn total_sim_ns(&self) -> u64 {
        self.sim_ns
    }

    /// Total segment replays recorded.
    pub fn total_replays(&self) -> u64 {
        self.replays
    }

    /// Average segment replays per recorded iteration.
    pub fn replays_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.replays as f64 / self.iterations as f64
        }
    }
}

/// A training log: `(global_step, simulated_seconds, value)` triples, used
/// to expand training curves against either axis (paper Figure 12 uses
/// both).
#[derive(Debug, Clone, Default)]
pub struct TrainLog {
    entries: Vec<(u64, f64, f64)>,
}

impl TrainLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TrainLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, step: u64, sim_seconds: f64, value: f64) {
        self.entries.push((step, sim_seconds, value));
    }

    /// All entries.
    pub fn entries(&self) -> &[(u64, f64, f64)] {
        &self.entries
    }

    /// The best (minimum) value seen, if any.
    pub fn min_value(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|&(_, _, v)| v)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaNs in logs"))
    }

    /// The best (maximum) value seen, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|&(_, _, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaNs in logs"))
    }

    /// Simulated time at which the log first reaches `target` going down
    /// (for "time to quality" comparisons, Figure 12b).
    pub fn time_to_reach_below(&self, target: f64) -> Option<f64> {
        self.entries
            .iter()
            .find(|&&(_, _, v)| v <= target)
            .map(|&(_, t, _)| t)
    }

    /// Simulated time at which the log first reaches `target` going up.
    pub fn time_to_reach_above(&self, target: f64) -> Option<f64> {
        self.entries
            .iter()
            .find(|&&(_, _, v)| v >= target)
            .map(|&(_, t, _)| t)
    }
}

/// Clips a free-standing set of gradients by global norm (re-export of the
/// tensor kernel for callers holding raw tensors).
pub fn clip_gradients(grads: &mut [&mut Tensor], max_norm: f64) -> f64 {
    kernels::clip_global_norm(grads, max_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_graph::{Graph, StashPlan};
    use echo_memory::{DeviceMemory, LayerKind};
    use echo_tensor::Shape;
    use std::sync::Arc;

    fn executor_with_param() -> (Executor, NodeId) {
        let mut g = Graph::new();
        let w = g.param("w", LayerKind::Rnn);
        let mut exec = Executor::new(
            Arc::new(g),
            StashPlan::stash_all(),
            DeviceMemory::with_overhead_model(1 << 20, 0, 0.0),
        );
        exec.bind_param(w, Tensor::full(Shape::d1(4), 1.0)).unwrap();
        (exec, w)
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let (mut exec, w) = executor_with_param();
        exec.grad_mut(w).unwrap().map_inplace(|_| 2.0);
        let mut sgd = Sgd::new(0.1);
        let norm = sgd.step(&mut exec);
        assert!((norm - 4.0).abs() < 1e-6);
        assert!(exec
            .param(w)
            .unwrap()
            .data()
            .iter()
            .all(|&v| (v - 0.8).abs() < 1e-6));
    }

    #[test]
    fn momentum_accumulates() {
        let (mut exec, w) = executor_with_param();
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        exec.grad_mut(w).unwrap().map_inplace(|_| 1.0);
        sgd.step(&mut exec);
        let after_one = exec.param(w).unwrap().data()[0];
        exec.grad_mut(w).unwrap().map_inplace(|_| 1.0);
        sgd.step(&mut exec);
        let after_two = exec.param(w).unwrap().data()[0];
        // Second step moves farther than the first thanks to velocity.
        assert!((after_one - after_two) > (1.0 - after_one));
    }

    #[test]
    fn clipping_bounds_update() {
        let (mut exec, w) = executor_with_param();
        exec.grad_mut(w).unwrap().map_inplace(|_| 100.0);
        let mut sgd = Sgd::new(1.0).with_clip_norm(1.0);
        let norm = sgd.step(&mut exec);
        assert!(norm > 100.0);
        // Post-clip gradient norm is 1, so the parameter moved by at most
        // lr * 1 in L2.
        let moved: f64 = exec
            .param(w)
            .unwrap()
            .data()
            .iter()
            .map(|&v| f64::from(1.0 - v).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!((moved - 1.0).abs() < 1e-4, "moved {moved}");
    }

    #[test]
    fn adam_moves_against_gradient_and_adapts() {
        let (mut exec, w) = executor_with_param();
        let mut adam = Adam::new(0.1);
        exec.grad_mut(w).unwrap().map_inplace(|_| 2.0);
        adam.step(&mut exec);
        let after_one = exec.param(w).unwrap().data()[0];
        // First Adam step moves by ~lr regardless of gradient magnitude.
        assert!(
            (1.0 - after_one - 0.1).abs() < 1e-3,
            "step size {after_one}"
        );
        // A second identical step keeps moving the same direction.
        exec.grad_mut(w).unwrap().map_inplace(|_| 2.0);
        adam.step(&mut exec);
        assert!(exec.param(w).unwrap().data()[0] < after_one);
    }

    #[test]
    fn adam_clipping_limits_norm() {
        let (mut exec, w) = executor_with_param();
        exec.grad_mut(w).unwrap().map_inplace(|_| 1000.0);
        let mut adam = Adam::new(0.1).with_clip_norm(1.0);
        let norm = adam.step(&mut exec);
        assert!(norm > 1000.0);
        // Post-clip gradient magnitude is bounded; Adam's update stays ~lr.
        let moved = 1.0 - exec.param(w).unwrap().data()[0];
        assert!(moved > 0.0 && moved < 0.11, "moved {moved}");
    }

    #[test]
    fn speedometer_averages() {
        let mut s = Speedometer::new();
        s.record(128, 1_000_000_000);
        s.record(128, 1_000_000_000);
        assert!((s.samples_per_second() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn train_log_queries() {
        let mut log = TrainLog::new();
        log.push(0, 0.0, 10.0);
        log.push(1, 1.0, 5.0);
        log.push(2, 2.0, 7.0);
        assert_eq!(log.min_value(), Some(5.0));
        assert_eq!(log.time_to_reach_below(6.0), Some(1.0));
        assert_eq!(log.time_to_reach_above(9.0), Some(0.0));
        assert_eq!(log.time_to_reach_below(1.0), None);
    }
}
