//! The word-level language model (paper §2.1, Figure 2): Embedding →
//! LSTM stack → Output projection → perplexity loss.

use echo_data::{LmBatch, PAD};
use echo_graph::{ExecOptions, ExecPlan, Executor, Graph, NodeId, Result};
use echo_memory::LayerKind;
use echo_ops::{Embedding, FullyConnected, SoftmaxCrossEntropy};
use echo_rnn::{LstmBackend, LstmStack};
use echo_tensor::init::{lstm_uniform, seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Hyperparameters of the word-level LM (MXNet `word_language_model`
/// example defaults use tied embed/hidden sizes of 200/650/1500).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordLmHyper {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding size.
    pub embed: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// Number of LSTM layers.
    pub layers: usize,
    /// BPTT unroll length.
    pub seq_len: usize,
    /// LSTM backend.
    pub backend: LstmBackend,
}

impl WordLmHyper {
    /// The MXNet example's medium setting (650/650, 2 layers, T=35).
    pub fn mxnet_example(vocab: usize, hidden: usize, backend: LstmBackend) -> Self {
        WordLmHyper {
            vocab,
            embed: hidden,
            hidden,
            layers: 2,
            seq_len: 35,
            backend,
        }
    }

    /// A tiny numerically-trainable setting for tests.
    pub fn tiny(vocab: usize, backend: LstmBackend) -> Self {
        WordLmHyper {
            vocab,
            embed: 16,
            hidden: 16,
            layers: 1,
            seq_len: 8,
            backend,
        }
    }
}

/// A built word-level LM graph plus node handles.
#[derive(Debug, Clone)]
pub struct WordLm {
    /// The model graph.
    pub graph: Arc<Graph>,
    /// Hyperparameters it was built with.
    pub hyper: WordLmHyper,
    /// `[T, B]` token-id input node.
    pub ids: NodeId,
    /// `T·B` target-id input node.
    pub targets: NodeId,
    /// Scalar loss node.
    pub loss: NodeId,
    /// `[T, B, V]` logits node (for prediction).
    pub logits: NodeId,
    embed_table: NodeId,
    out_w: NodeId,
    out_b: NodeId,
    stack: LstmStack,
}

impl WordLm {
    /// Builds the model graph.
    pub fn build(hyper: WordLmHyper) -> WordLm {
        let mut g = Graph::new();
        let ids = g.input("ids", LayerKind::Embedding);
        let targets = g.input("targets", LayerKind::Output);
        let embed_table = g.param("embed_table", LayerKind::Embedding);
        let out_w = g.param("out_w", LayerKind::Output);
        let out_b = g.param("out_b", LayerKind::Output);

        let embedded = g.apply(
            "embedded",
            Arc::new(Embedding),
            &[ids, embed_table],
            LayerKind::Embedding,
        );
        let stack = LstmStack::build(
            &mut g,
            hyper.backend,
            embedded,
            hyper.seq_len,
            hyper.embed,
            hyper.hidden,
            hyper.layers,
            "rnn",
            LayerKind::Rnn,
        );
        let logits = g.apply(
            "logits",
            Arc::new(FullyConnected::new(hyper.vocab)),
            &[stack.output, out_w, out_b],
            LayerKind::Output,
        );
        let loss = g.apply(
            "loss",
            Arc::new(SoftmaxCrossEntropy::with_ignore(PAD)),
            &[logits, targets],
            LayerKind::Output,
        );
        WordLm {
            graph: Arc::new(g),
            hyper,
            ids,
            targets,
            loss,
            logits,
            embed_table,
            out_w,
            out_b,
            stack,
        }
    }

    /// Binds freshly initialized parameters (numeric plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_params(&self, exec: &mut Executor, seed: u64) -> Result<()> {
        let h = self.hyper;
        let mut rng = seeded_rng(seed);
        exec.bind_param(
            self.embed_table,
            uniform(Shape::d2(h.vocab, h.embed), 0.1, &mut rng),
        )?;
        self.stack.bind_params(exec, &mut rng)?;
        exec.bind_param(
            self.out_w,
            lstm_uniform(Shape::d2(h.vocab, h.hidden), h.hidden, &mut rng),
        )?;
        exec.bind_param(self.out_b, Tensor::zeros(Shape::d1(h.vocab)))?;
        Ok(())
    }

    /// Binds parameter shapes only (symbolic plane).
    ///
    /// # Errors
    ///
    /// Propagates binding errors (e.g. device OOM).
    pub fn bind_param_shapes(&self, exec: &mut Executor) -> Result<()> {
        let h = self.hyper;
        exec.bind_param_shape(self.embed_table, Shape::d2(h.vocab, h.embed))?;
        self.stack.bind_param_shapes(exec)?;
        exec.bind_param_shape(self.out_w, Shape::d2(h.vocab, h.hidden))?;
        exec.bind_param_shape(self.out_b, Shape::d1(h.vocab))?;
        Ok(())
    }

    /// Shapes of every parameter node (for the Echo pass's shape
    /// inference).
    pub fn param_shapes(&self) -> HashMap<NodeId, echo_tensor::Shape> {
        let h = self.hyper;
        let mut out = HashMap::new();
        out.insert(self.embed_table, Shape::d2(h.vocab, h.embed));
        out.insert(self.out_w, Shape::d2(h.vocab, h.hidden));
        out.insert(self.out_b, Shape::d1(h.vocab));
        for (id, shape) in self.stack.param_shapes() {
            out.insert(id, shape);
        }
        out
    }

    /// Builds the input bindings for one batch.
    pub fn bindings(&self, batch: &LmBatch) -> HashMap<NodeId, Tensor> {
        let mut bindings = HashMap::new();
        bindings.insert(self.ids, batch.input.clone());
        bindings.insert(self.targets, batch.targets.clone());
        self.stack
            .add_zero_state_bindings(batch.batch, &mut bindings);
        bindings
    }

    /// Compiles and installs an ahead-of-time execution plan for training
    /// steps with `batch` lanes, using the executor's current stash plan
    /// and bound parameter shapes. Returns the shared plan so callers can
    /// install the same one on replicas (see
    /// [`Executor::clone_replica`], which shares it automatically).
    ///
    /// # Errors
    ///
    /// Propagates planning failures (e.g. parameters not bound yet).
    pub fn install_exec_plan(&self, exec: &mut Executor, batch: usize) -> Result<Arc<ExecPlan>> {
        let plan = exec.plan_for(
            &self.symbolic_bindings(batch),
            self.loss,
            ExecOptions::default(),
        )?;
        exec.set_exec_plan(Arc::clone(&plan))?;
        Ok(plan)
    }

    /// Builds shape-only bindings for a given batch size (symbolic plane).
    pub fn symbolic_bindings(&self, batch: usize) -> HashMap<NodeId, Tensor> {
        let mut bindings = HashMap::new();
        bindings.insert(
            self.ids,
            Tensor::zeros(Shape::d2(self.hyper.seq_len, batch)),
        );
        bindings.insert(
            self.targets,
            Tensor::zeros(Shape::d1(self.hyper.seq_len * batch)),
        );
        self.stack.add_zero_state_bindings(batch, &mut bindings);
        bindings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_data::{BpttBatches, LmCorpus, Vocab};
    use echo_graph::{ExecOptions, StashPlan};
    use echo_memory::DeviceMemory;
    use echo_models_test_util::*;

    mod echo_models_test_util {
        pub use crate::metrics::perplexity;
        pub use crate::trainer::Sgd;
    }

    fn mem() -> DeviceMemory {
        DeviceMemory::with_overhead_model(4 << 30, 0, 0.0)
    }

    #[test]
    fn loss_starts_near_uniform() {
        let vocab = 50usize;
        let lm = WordLm::build(WordLmHyper::tiny(vocab, LstmBackend::CuDnn));
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 1).unwrap();
        let corpus = LmCorpus::synthetic(Vocab::new(vocab), 2000, 0.8, 2);
        let mut batches = BpttBatches::new(corpus.tokens(), 4, lm.hyper.seq_len);
        let batch = batches.next().unwrap();
        let stats = exec
            .train_step(&lm.bindings(&batch), lm.loss, ExecOptions::default(), None)
            .unwrap();
        let loss = stats.loss.unwrap();
        let uniform_nats = (vocab as f32).ln();
        assert!(
            (loss - uniform_nats).abs() < 1.0,
            "initial loss {loss} vs uniform {uniform_nats}"
        );
    }

    #[test]
    fn training_reduces_perplexity() {
        let vocab = 40usize;
        let lm = WordLm::build(WordLmHyper::tiny(vocab, LstmBackend::CuDnn));
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 3).unwrap();
        let corpus = LmCorpus::synthetic(Vocab::new(vocab), 6000, 0.95, 4);
        let mut sgd = Sgd::new(0.5).with_clip_norm(5.0);
        let mut first = None;
        let mut last = 0.0f32;
        for epoch in 0..4 {
            let mut batches = BpttBatches::new(corpus.tokens(), 8, lm.hyper.seq_len);
            for batch in &mut batches {
                let stats = exec
                    .train_step(&lm.bindings(&batch), lm.loss, ExecOptions::default(), None)
                    .unwrap();
                last = stats.loss.unwrap();
                if first.is_none() {
                    first = Some(last);
                }
                sgd.step(&mut exec);
            }
            let _ = epoch;
        }
        let first = first.unwrap();
        assert!(
            perplexity(last) < perplexity(first) * 0.6,
            "perplexity must fall: {} -> {}",
            perplexity(first),
            perplexity(last)
        );
    }

    #[test]
    fn backends_share_the_same_loss_surface() {
        let vocab = 30usize;
        let losses: Vec<f32> = LstmBackend::ALL
            .iter()
            .map(|&backend| {
                let lm = WordLm::build(WordLmHyper::tiny(vocab, backend));
                let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
                lm.bind_params(&mut exec, 7).unwrap();
                let corpus = LmCorpus::synthetic(Vocab::new(vocab), 1000, 0.8, 8);
                let mut batches = BpttBatches::new(corpus.tokens(), 4, lm.hyper.seq_len);
                let batch = batches.next().unwrap();
                exec.train_step(&lm.bindings(&batch), lm.loss, ExecOptions::default(), None)
                    .unwrap()
                    .loss
                    .unwrap()
            })
            .collect();
        // Parameter initialization order differs per backend only in node
        // naming, not in draw order, so losses must agree closely.
        assert!((losses[0] - losses[1]).abs() < 1e-4, "{losses:?}");
        assert!((losses[1] - losses[2]).abs() < 1e-4, "{losses:?}");
    }

    #[test]
    fn symbolic_run_reports_memory_and_time() {
        let lm = WordLm::build(WordLmHyper::mxnet_example(10_000, 650, LstmBackend::CuDnn));
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), m.clone());
        lm.bind_param_shapes(&mut exec).unwrap();
        let mut sim = echo_device::DeviceSim::new(echo_device::DeviceSpec::titan_xp());
        let stats = exec
            .train_step(
                &lm.symbolic_bindings(32),
                lm.loss,
                ExecOptions {
                    training: true,
                    numeric: false,
                },
                Some(&mut sim),
            )
            .unwrap();
        assert!(stats.loss.is_none());
        assert!(m.peak_bytes() > 100 << 20, "peak {}", m.peak_bytes());
        assert!(stats.sim_ns.unwrap() > 0);
    }
}
