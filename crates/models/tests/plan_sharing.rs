//! Replica construction must not re-plan: `clone_replica` shares the
//! template's `Arc<ExecPlan>`, so a K-replica `ParallelTrainer` performs
//! exactly one planning pass — the template's — no matter how many workers
//! it spawns.
//!
//! This file holds a single `#[test]` on purpose: `plans_built()` is a
//! process-global counter, and an integration-test binary is its own
//! process, so the count here cannot race with other planning tests.

use echo_data::{BpttBatches, LmCorpus, Vocab};
use echo_graph::{plans_built, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{
    DataParallelOptions, MicrobatchTrainer, ParallelTrainer, Sgd, WordLm, WordLmHyper,
};
use echo_rnn::LstmBackend;
use std::sync::Arc;

const LANES: usize = 8;
const MICRO: usize = 4;
const REPLICAS: usize = 4;

fn optimizer() -> Box<Sgd> {
    Box::new(Sgd::new(0.5).with_momentum(0.9).with_clip_norm(5.0))
}

#[test]
fn four_replicas_share_one_planning_pass() {
    let lm = WordLm::build(WordLmHyper::tiny(40, LstmBackend::CuDnn));
    let corpus = LmCorpus::synthetic(Vocab::new(40), 2400, 0.9, 13);
    let batches: Vec<_> = BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(2)
        .collect();

    let mem = DeviceMemory::with_overhead_model(1 << 30, 0, 0.0);
    let mut template = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem);
    lm.bind_params(&mut template, 23).expect("bind");

    let before = plans_built();
    // Workers see micro-batches of LANES / MICRO lanes, so plan for that.
    let shared = lm
        .install_exec_plan(&mut template, LANES / MICRO)
        .expect("plan installs");
    assert_eq!(plans_built() - before, 1, "installing the plan builds once");

    let trainer = ParallelTrainer::for_word_lm(
        &lm,
        &template,
        LANES,
        &DataParallelOptions::new(REPLICAS, MICRO),
        optimizer(),
    )
    .expect("trainer spawns");
    assert_eq!(
        plans_built() - before,
        1,
        "{REPLICAS}-replica construction must not re-plan"
    );
    assert!(Arc::ptr_eq(
        template.exec_plan().expect("template keeps its plan"),
        &shared
    ));

    // The planned parallel engine stays bit-identical to the serial
    // micro-batch reference (which also runs plan-driven via the shared
    // replica plan).
    let mut parallel = trainer;
    let serial_exec = template
        .clone_replica(DeviceMemory::with_overhead_model(1 << 30, 0, 0.0))
        .expect("serial replica");
    let mut serial =
        MicrobatchTrainer::for_word_lm(&lm, serial_exec, LANES, MICRO, optimizer(), None)
            .expect("serial trainer");
    assert_eq!(
        plans_built() - before,
        1,
        "replica cloning must not re-plan"
    );
    for batch in &batches {
        let p = parallel.step(batch);
        let s = serial.step(batch).expect("serial step");
        assert_eq!(p.loss.to_bits(), s.loss.to_bits(), "loss bits diverged");
        assert_eq!(
            p.grad_norm.to_bits(),
            s.grad_norm.to_bits(),
            "grad-norm bits diverged"
        );
    }
    let p_params = parallel.export_params();
    for ((id_p, t_p), (id_s, t_s)) in p_params.iter().zip(serial.export_params().iter()) {
        assert_eq!(id_p, id_s);
        let bits = |t: &echo_tensor::Tensor| -> Vec<u32> {
            t.data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(t_p), bits(t_s), "parameter bits diverged");
    }
    assert_eq!(plans_built() - before, 1, "stepping must not re-plan");
}
