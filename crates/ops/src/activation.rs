//! Element-wise activations.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{kernels, Shape, Tensor};

/// Which nonlinearity an [`Activation`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// Hyperbolic tangent — the LSTM cell nonlinearity.
    Tanh,
    /// Logistic sigmoid — the LSTM gate nonlinearity.
    Sigmoid,
    /// Rectified linear unit (for the CNN comparison models).
    Relu,
}

/// An element-wise activation that stashes its *output* as a feature map —
/// the canonical example from the paper's §3.2 (`Y' = 1 − tanh²(X)` needs
/// `tanh(X)` during backward).
#[derive(Debug, Clone, Copy)]
pub struct Activation(pub ActivationKind);

impl Activation {
    /// A tanh activation.
    pub fn tanh() -> Self {
        Activation(ActivationKind::Tanh)
    }

    /// A sigmoid activation.
    pub fn sigmoid() -> Self {
        Activation(ActivationKind::Sigmoid)
    }

    /// A ReLU activation.
    pub fn relu() -> Self {
        Activation(ActivationKind::Relu)
    }
}

impl Operator for Activation {
    fn name(&self) -> &str {
        match self.0 {
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Relu => "relu",
        }
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::Activation
    }

    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        Ok(inputs[0].clone())
    }

    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let y = match self.0 {
            ActivationKind::Tanh => kernels::tanh(inputs[0]),
            ActivationKind::Sigmoid => kernels::sigmoid_t(inputs[0]),
            ActivationKind::Relu => kernels::relu(inputs[0]),
        };
        Ok((y, Vec::new()))
    }

    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let y = output.expect("activation stashes its output");
        let dx = match self.0 {
            ActivationKind::Tanh => kernels::tanh_backward(y, dy)?,
            ActivationKind::Sigmoid => kernels::sigmoid_backward(y, dy)?,
            ActivationKind::Relu => y.zip_map(dy, |y, g| if y > 0.0 { g } else { 0.0 })?,
        };
        Ok(vec![Some(dx)])
    }

    fn stash(&self) -> StashNeeds {
        StashNeeds::OUTPUT
    }

    fn forward_launches(&self, _inputs: &[&Shape], output: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            format!("{}_fwd", self.name()),
            KernelCategory::Activation,
            KernelCost::elementwise(output.num_elements(), 2),
        )]
    }

    fn backward_launches(&self, _inputs: &[&Shape], output: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            format!("{}_bwd", self.name()),
            KernelCategory::Activation,
            KernelCost::elementwise(output.num_elements(), 3),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 2.0]).unwrap();
        let (t, _) = Activation::tanh().forward(&[&x]).unwrap();
        assert!((t.data()[1]).abs() < 1e-7);
        let (s, _) = Activation::sigmoid().forward(&[&x]).unwrap();
        assert!((s.data()[1] - 0.5).abs() < 1e-7);
        let (r, _) = Activation::relu().forward(&[&x]).unwrap();
        assert_eq!(r.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_from_output_only() {
        let x = Tensor::from_vec(Shape::d1(4), vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        let dy = Tensor::full(Shape::d1(4), 1.0);
        for act in [
            Activation::tanh(),
            Activation::sigmoid(),
            Activation::relu(),
        ] {
            let (y, _) = act.forward(&[&x]).unwrap();
            let grads = act.backward(&[None], Some(&y), &[], &dy).unwrap();
            let dx = grads[0].as_ref().unwrap();
            let eps = 1e-3;
            for i in 0..4 {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let fd = (act.forward(&[&xp]).unwrap().0.data()[i]
                    - act.forward(&[&xm]).unwrap().0.data()[i])
                    / (2.0 * eps);
                assert!(
                    (dx.data()[i] - fd).abs() < 1e-2,
                    "{} elem {i}: {} vs {fd}",
                    act.name(),
                    dx.data()[i]
                );
            }
        }
    }

    #[test]
    fn stash_declaration_is_output_only() {
        assert_eq!(Activation::tanh().stash(), StashNeeds::OUTPUT);
    }
}
