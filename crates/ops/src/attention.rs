//! The attention scoring pipeline — the paper's O-shape subgraph.
//!
//! The MLP attention scoring function (Bahdanau-style, as used by Sockeye)
//! compares the decoder query against every encoder position:
//!
//! ```text
//! e[t]   = vᵀ · tanh(LayerNorm(W_s·Hs[t] + W_q·h))    (per position t)
//! α      = softmax(e)
//! c      = Σ_t α[t] · Hs[t]
//! ```
//!
//! The inputs (`Hs` projected once, the query `h [B x H]`) are small —
//! `O(B·H)` amortized — but the broadcast sum and its layernorm/tanh
//! intermediates are `[T, B, H]` *per decoder step*, i.e. `O(B·T²·H)`
//! summed over the decode: the paper's memory bottleneck (§4.1.1). These
//! three operators plus [`crate::LayerNorm`] and tanh form the segment the
//! Echo pass marks for recomputation.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{reduce, Shape, Tensor};

fn op_err(op: &str, message: String) -> GraphError {
    GraphError::Operator {
        op: op.to_string(),
        message,
    }
}

/// Broadcast-adds the query to every time step: `out[t, b, :] =
/// keys[t, b, :] + query[b, :]`.
///
/// This is the O-shape entry point: inputs are `[T, B, H]` (shared across
/// decoder steps) and `[B, H]`, but the output is a fresh `[T, B, H]`
/// tensor per decoder step.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastAddQuery;

impl Operator for BroadcastAddQuery {
    fn name(&self) -> &str {
        "broadcast_add_query"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Attention
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let keys = inputs[0];
        let query = inputs[1];
        if keys.rank() != 3 || query.rank() != 2 {
            return Err(op_err(
                "broadcast_add_query",
                format!("need keys [T,B,H] and query [B,H], got {keys} and {query}"),
            ));
        }
        if keys.dim(1) != query.dim(0) || keys.dim(2) != query.dim(1) {
            return Err(op_err(
                "broadcast_add_query",
                format!("keys {keys} and query {query} disagree"),
            ));
        }
        Ok(keys.clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let keys = inputs[0];
        let query = inputs[1];
        let t = keys.shape().dim(0);
        let bh = query.len();
        let mut out = keys.clone();
        for ti in 0..t {
            let dst = &mut out.data_mut()[ti * bh..(ti + 1) * bh];
            for (d, &q) in dst.iter_mut().zip(query.data()) {
                *d += q;
            }
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let dquery = reduce::sum_axis(dy, 0)?;
        Ok(vec![Some(dy.clone()), Some(dquery)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_broadcast_add",
            KernelCategory::Attention,
            KernelCost::elementwise(o.num_elements(), 3),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_broadcast_add_bwd",
            KernelCategory::Attention,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
}

/// Projects each `[T, B, H]` position onto the scoring vector `v [H]`,
/// producing attention scores `[B, T]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoreReduce;

impl Operator for ScoreReduce {
    fn name(&self) -> &str {
        "score_reduce"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Attention
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let e = inputs[0];
        let v = inputs[1];
        if e.rank() != 3 || v.num_elements() != e.dim(2) {
            return Err(op_err(
                "score_reduce",
                format!("need e [T,B,H] and v [H], got {e} and {v}"),
            ));
        }
        Ok(Shape::d2(e.dim(1), e.dim(0)))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let e = inputs[0];
        let v = inputs[1];
        let (t, b, h) = (e.shape().dim(0), e.shape().dim(1), e.shape().dim(2));
        let mut out = Tensor::zeros(Shape::d2(b, t));
        for ti in 0..t {
            for bi in 0..b {
                let base = (ti * b + bi) * h;
                let mut acc = 0.0f32;
                for hi in 0..h {
                    acc += e.data()[base + hi] * v.data()[hi];
                }
                out.data_mut()[bi * t + ti] = acc;
            }
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let e = inputs[0].expect("score_reduce stashes inputs");
        let v = inputs[1].expect("score_reduce stashes inputs");
        let (t, b, h) = (e.shape().dim(0), e.shape().dim(1), e.shape().dim(2));
        let mut de = Tensor::zeros(e.shape().clone());
        let mut dv = Tensor::zeros(v.shape().clone());
        for ti in 0..t {
            for bi in 0..b {
                let g = dy.data()[bi * t + ti];
                let base = (ti * b + bi) * h;
                for hi in 0..h {
                    de.data_mut()[base + hi] = g * v.data()[hi];
                    dv.data_mut()[hi] += g * e.data()[base + hi];
                }
            }
        }
        Ok(vec![Some(de), Some(dv)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_score",
            KernelCategory::Attention,
            KernelCost::elementwise(i[0].num_elements(), 2),
        )]
    }
    fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_score_bwd",
            KernelCategory::Attention,
            KernelCost::elementwise(i[0].num_elements(), 3),
        )]
    }
}

/// Computes the context vector: `c[b, :] = Σ_t α[b, t] · values[t, b, :]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedSum;

impl Operator for WeightedSum {
    fn name(&self) -> &str {
        "weighted_sum"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Attention
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let alpha = inputs[0];
        let values = inputs[1];
        if alpha.rank() != 2
            || values.rank() != 3
            || alpha.dim(0) != values.dim(1)
            || alpha.dim(1) != values.dim(0)
        {
            return Err(op_err(
                "weighted_sum",
                format!("need alpha [B,T] and values [T,B,H], got {alpha} and {values}"),
            ));
        }
        Ok(Shape::d2(values.dim(1), values.dim(2)))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let alpha = inputs[0];
        let values = inputs[1];
        let (t, b, h) = (
            values.shape().dim(0),
            values.shape().dim(1),
            values.shape().dim(2),
        );
        let mut out = Tensor::zeros(Shape::d2(b, h));
        for ti in 0..t {
            for bi in 0..b {
                let a = alpha.data()[bi * t + ti];
                if a == 0.0 {
                    continue;
                }
                let src = &values.data()[(ti * b + bi) * h..(ti * b + bi + 1) * h];
                let dst = &mut out.data_mut()[bi * h..(bi + 1) * h];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let alpha = inputs[0].expect("weighted_sum stashes inputs");
        let values = inputs[1].expect("weighted_sum stashes inputs");
        let (t, b, h) = (
            values.shape().dim(0),
            values.shape().dim(1),
            values.shape().dim(2),
        );
        let mut dalpha = Tensor::zeros(alpha.shape().clone());
        let mut dvalues = Tensor::zeros(values.shape().clone());
        for ti in 0..t {
            for bi in 0..b {
                let base = (ti * b + bi) * h;
                let g = &dy.data()[bi * h..(bi + 1) * h];
                let mut acc = 0.0f32;
                let a = alpha.data()[bi * t + ti];
                for (hi, &gv) in g.iter().enumerate() {
                    acc += values.data()[base + hi] * gv;
                    dvalues.data_mut()[base + hi] = a * gv;
                }
                dalpha.data_mut()[bi * t + ti] = acc;
            }
        }
        Ok(vec![Some(dalpha), Some(dvalues)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_context",
            KernelCategory::Attention,
            KernelCost::elementwise(i[1].num_elements(), 2),
        )]
    }
    fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "attn_context_bwd",
            KernelCategory::Attention,
            KernelCost::elementwise(i[1].num_elements(), 3),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_add_semantics() {
        let keys = Tensor::from_fn(Shape::d3(2, 2, 3), |i| i as f32);
        let query = Tensor::from_fn(Shape::d2(2, 3), |i| 100.0 * (i + 1) as f32);
        let (y, _) = BroadcastAddQuery.forward(&[&keys, &query]).unwrap();
        for t in 0..2 {
            for b in 0..2 {
                for h in 0..3 {
                    assert_eq!(
                        y.get(&[t, b, h]).unwrap(),
                        keys.get(&[t, b, h]).unwrap() + query.get(&[b, h]).unwrap()
                    );
                }
            }
        }
        // dquery sums over time.
        let dy = Tensor::full(Shape::d3(2, 2, 3), 1.0);
        let grads = BroadcastAddQuery
            .backward(&[None, None], None, &[], &dy)
            .unwrap();
        assert_eq!(grads[1].as_ref().unwrap().data(), &[2.0f32; 6][..]);
    }

    #[test]
    fn score_reduce_matches_manual_dot() {
        let e = Tensor::from_fn(Shape::d3(2, 2, 2), |i| i as f32);
        let v = Tensor::from_vec(Shape::d1(2), vec![1.0, -1.0]).unwrap();
        let (s, _) = ScoreReduce.forward(&[&e, &v]).unwrap();
        assert_eq!(s.shape(), &Shape::d2(2, 2)); // [B, T]
                                                 // e[t=0,b=0] = [0,1] → -1 ; e[t=1,b=0] = [4,5] → -1
        assert_eq!(s.get(&[0, 0]).unwrap(), -1.0);
        assert_eq!(s.get(&[0, 1]).unwrap(), -1.0);
    }

    #[test]
    fn score_reduce_gradient_matches_fd() {
        let e = Tensor::from_fn(Shape::d3(2, 1, 3), |i| (i as f32 * 0.7).sin());
        let v = Tensor::from_vec(Shape::d1(3), vec![0.3, -0.2, 0.9]).unwrap();
        let (y, _) = ScoreReduce.forward(&[&e, &v]).unwrap();
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = ScoreReduce
            .backward(&[Some(&e), Some(&v)], None, &[], &dy)
            .unwrap();
        let loss = |e: &Tensor, v: &Tensor| ScoreReduce.forward(&[e, v]).unwrap().0.sum() as f32;
        let eps = 1e-3;
        for i in 0..e.len() {
            let mut ep = e.clone();
            ep.data_mut()[i] += eps;
            let mut em = e.clone();
            em.data_mut()[i] -= eps;
            let fd = (loss(&ep, &v) - loss(&em, &v)) / (2.0 * eps);
            assert!((grads[0].as_ref().unwrap().data()[i] - fd).abs() < 1e-2);
        }
        for i in 0..3 {
            let mut vp = v.clone();
            vp.data_mut()[i] += eps;
            let mut vm = v.clone();
            vm.data_mut()[i] -= eps;
            let fd = (loss(&e, &vp) - loss(&e, &vm)) / (2.0 * eps);
            assert!((grads[1].as_ref().unwrap().data()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn weighted_sum_with_one_hot_selects_step() {
        let values = Tensor::from_fn(Shape::d3(3, 2, 2), |i| i as f32);
        // One-hot on t=2 for b=0, t=0 for b=1.
        let alpha = Tensor::from_vec(Shape::d2(2, 3), vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]).unwrap();
        let (c, _) = WeightedSum.forward(&[&alpha, &values]).unwrap();
        assert_eq!(c.get(&[0, 0]).unwrap(), values.get(&[2, 0, 0]).unwrap());
        assert_eq!(c.get(&[1, 1]).unwrap(), values.get(&[0, 1, 1]).unwrap());
    }

    #[test]
    fn weighted_sum_gradient_matches_fd() {
        let values = Tensor::from_fn(Shape::d3(2, 1, 2), |i| (i as f32).cos());
        let alpha = Tensor::from_vec(Shape::d2(1, 2), vec![0.3, 0.7]).unwrap();
        let (y, _) = WeightedSum.forward(&[&alpha, &values]).unwrap();
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = WeightedSum
            .backward(&[Some(&alpha), Some(&values)], None, &[], &dy)
            .unwrap();
        let loss = |a: &Tensor, v: &Tensor| WeightedSum.forward(&[a, v]).unwrap().0.sum() as f32;
        let eps = 1e-3;
        for i in 0..alpha.len() {
            let mut ap = alpha.clone();
            ap.data_mut()[i] += eps;
            let mut am = alpha.clone();
            am.data_mut()[i] -= eps;
            let fd = (loss(&ap, &values) - loss(&am, &values)) / (2.0 * eps);
            assert!((grads[0].as_ref().unwrap().data()[i] - fd).abs() < 1e-2);
        }
        for i in 0..values.len() {
            let mut vp = values.clone();
            vp.data_mut()[i] += eps;
            let mut vm = values.clone();
            vm.data_mut()[i] -= eps;
            let fd = (loss(&alpha, &vp) - loss(&alpha, &vm)) / (2.0 * eps);
            assert!((grads[1].as_ref().unwrap().data()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn shape_validation() {
        assert!(BroadcastAddQuery
            .infer_shape(&[&Shape::d3(2, 2, 3), &Shape::d2(2, 4)])
            .is_err());
        assert!(ScoreReduce
            .infer_shape(&[&Shape::d3(2, 2, 3), &Shape::d1(4)])
            .is_err());
        assert!(WeightedSum
            .infer_shape(&[&Shape::d2(2, 3), &Shape::d3(2, 2, 3)])
            .is_err());
        assert!(WeightedSum
            .infer_shape(&[&Shape::d2(2, 2), &Shape::d3(2, 2, 3)])
            .is_ok());
    }
}
