//! The word-embedding operator.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{kernels, Shape, Tensor};

/// Embedding lookup: gathers rows of a `[V x H]` table for a tensor of
/// word ids.
///
/// Inputs: `ids [...]` (word indices stored as `f32`), `table [V x H]`.
/// Output: `[..., H]`. The ids input is non-differentiable; the table
/// receives scatter-add gradients.
#[derive(Debug, Clone, Copy, Default)]
pub struct Embedding;

fn ids_of(t: &Tensor) -> Vec<usize> {
    t.data().iter().map(|&v| v as usize).collect()
}

impl Operator for Embedding {
    fn name(&self) -> &str {
        "embedding"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Embedding
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let ids = inputs[0];
        let table = inputs[1];
        if table.rank() != 2 {
            return Err(GraphError::Operator {
                op: "embedding".to_string(),
                message: format!("table must be [V x H], got {table}"),
            });
        }
        let mut dims = ids.dims().to_vec();
        dims.push(table.dim(1));
        Ok(Shape::new(dims))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let ids = ids_of(inputs[0]);
        let out = kernels::embedding_lookup(inputs[1], &ids)?;
        let out_shape = self.infer_shape(&[inputs[0].shape(), inputs[1].shape()])?;
        Ok((out.reshape(out_shape)?, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let ids = ids_of(inputs[0].expect("embedding stashes inputs"));
        let table = inputs[1].expect("embedding stashes inputs");
        let h = table.shape().dim(1);
        let mut dtable = Tensor::zeros(table.shape().clone());
        let flat = dy.reshape(Shape::d2(ids.len(), h))?;
        kernels::embedding_backward(&mut dtable, &ids, &flat)?;
        Ok(vec![None, Some(dtable)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn input_differentiable(&self, index: usize) -> bool {
        index != 0
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "embedding_gather",
            KernelCategory::Embedding,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "embedding_scatter",
            KernelCategory::Embedding,
            KernelCost::elementwise(o.num_elements(), 2).with_bandwidth_efficiency(0.4),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_shapes_and_values() {
        let table = Tensor::from_fn(Shape::d2(5, 2), |i| i as f32);
        let ids = Tensor::from_vec(Shape::d2(2, 2), vec![0.0, 4.0, 2.0, 2.0]).unwrap();
        let (y, _) = Embedding.forward(&[&ids, &table]).unwrap();
        assert_eq!(y.shape(), &Shape::d3(2, 2, 2));
        assert_eq!(y.get(&[0, 1, 0]).unwrap(), 8.0);
        assert_eq!(y.get(&[1, 0, 1]).unwrap(), 5.0);
    }

    #[test]
    fn backward_scatters_into_table_only() {
        let table = Tensor::zeros(Shape::d2(5, 2));
        let ids = Tensor::from_vec(Shape::d1(3), vec![1.0, 1.0, 3.0]).unwrap();
        let dy = Tensor::full(Shape::d2(3, 2), 1.0);
        let grads = Embedding
            .backward(&[Some(&ids), Some(&table)], None, &[], &dy)
            .unwrap();
        assert!(grads[0].is_none(), "ids are not differentiable");
        let dt = grads[1].as_ref().unwrap();
        assert_eq!(dt.get(&[1, 0]).unwrap(), 2.0);
        assert_eq!(dt.get(&[3, 1]).unwrap(), 1.0);
        assert_eq!(dt.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn out_of_vocab_is_an_error() {
        let table = Tensor::zeros(Shape::d2(3, 2));
        let ids = Tensor::from_vec(Shape::d1(1), vec![3.0]).unwrap();
        assert!(Embedding.forward(&[&ids, &table]).is_err());
    }
}
