//! Element-wise binary operators.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

fn check_same(a: &Shape, b: &Shape, op: &str) -> Result<()> {
    if a != b {
        return Err(GraphError::Operator {
            op: op.to_string(),
            message: format!("operand shapes differ: {a} vs {b}"),
        });
    }
    Ok(())
}

fn ewise_launch(name: &str, elems: usize, tensors: usize) -> Vec<KernelLaunch> {
    vec![KernelLaunch::kernel(
        name,
        KernelCategory::Elementwise,
        KernelCost::elementwise(elems, tensors),
    )]
}

/// `y = a + b`. Backward needs no stashed values.
#[derive(Debug, Clone, Copy, Default)]
pub struct Add;

impl Operator for Add {
    fn name(&self) -> &str {
        "add"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_same(inputs[0], inputs[1], "add")?;
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((inputs[0].add(inputs[1])?, Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        Ok(vec![Some(dy.clone()), Some(dy.clone())])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("add_fwd", o.num_elements(), 3)
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("add_bwd", o.num_elements(), 3)
    }
}

/// `y = a - b`. Backward needs no stashed values.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sub;

impl Operator for Sub {
    fn name(&self) -> &str {
        "sub"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_same(inputs[0], inputs[1], "sub")?;
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((inputs[0].sub(inputs[1])?, Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        Ok(vec![Some(dy.clone()), Some(dy.map(|v| -v))])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("sub_fwd", o.num_elements(), 3)
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("sub_bwd", o.num_elements(), 3)
    }
}

/// `y = a ⊙ b` (Hadamard product) — the LSTM gate application. Backward
/// needs both inputs stashed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mul;

impl Operator for Mul {
    fn name(&self) -> &str {
        "mul"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        check_same(inputs[0], inputs[1], "mul")?;
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((inputs[0].mul(inputs[1])?, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let a = inputs[0].expect("mul stashes inputs");
        let b = inputs[1].expect("mul stashes inputs");
        Ok(vec![Some(dy.mul(b)?), Some(dy.mul(a)?)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("mul_fwd", o.num_elements(), 3)
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        ewise_launch("mul_bwd", o.num_elements(), 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Tensor, Tensor) {
        (
            Tensor::from_vec(Shape::d1(3), vec![1.0, -2.0, 3.0]).unwrap(),
            Tensor::from_vec(Shape::d1(3), vec![0.5, 4.0, -1.0]).unwrap(),
        )
    }

    #[test]
    fn add_sub_mul_forward() {
        let (a, b) = pair();
        assert_eq!(Add.forward(&[&a, &b]).unwrap().0.data(), &[1.5, 2.0, 2.0]);
        assert_eq!(Sub.forward(&[&a, &b]).unwrap().0.data(), &[0.5, -6.0, 4.0]);
        assert_eq!(Mul.forward(&[&a, &b]).unwrap().0.data(), &[0.5, -8.0, -3.0]);
    }

    #[test]
    fn backward_rules() {
        let (a, b) = pair();
        let dy = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        let g = Add.backward(&[None, None], None, &[], &dy).unwrap();
        assert_eq!(g[0].as_ref().unwrap().data(), dy.data());
        assert_eq!(g[1].as_ref().unwrap().data(), dy.data());
        let g = Sub.backward(&[None, None], None, &[], &dy).unwrap();
        assert_eq!(g[1].as_ref().unwrap().data(), &[-1.0, -2.0, -3.0]);
        let g = Mul.backward(&[Some(&a), Some(&b)], None, &[], &dy).unwrap();
        assert_eq!(g[0].as_ref().unwrap().data(), &[0.5, 8.0, -3.0]);
        assert_eq!(g[1].as_ref().unwrap().data(), &[1.0, -4.0, 9.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(Shape::d1(3));
        let b = Tensor::zeros(Shape::d1(4));
        assert!(Add.forward(&[&a, &b]).is_err());
        assert!(Mul.infer_shape(&[a.shape(), b.shape()]).is_err());
    }

    #[test]
    fn stash_declarations() {
        assert_eq!(Add.stash(), StashNeeds::NONE);
        assert_eq!(Sub.stash(), StashNeeds::NONE);
        assert_eq!(Mul.stash(), StashNeeds::INPUTS);
    }
}
