//! The fully-connected layer — the paper's runtime bottleneck and the
//! target of the data layout optimization.

use echo_cachesim::MatLayout;
use echo_cachesim::TiledGemmSpec;
use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{reduce, MatrixLayout, Shape, Tensor};

/// `Y = XWᵀ + b` over the flattened rows of `X`.
///
/// Inputs: `X [..., H]`, `W [O x H]`, and optionally `b [O]`. The
/// [`MatrixLayout`] selects the GEMM formulation used on the device plane:
///
/// * [`MatrixLayout::RowMajor`] — `Y = XWᵀ` (the MXNet/cuDNN default, an
///   `NT` GEMM whose weight operand is scanned against its storage order);
/// * [`MatrixLayout::ColMajor`] — `Yᵀ = WXᵀ` with the `[T, H, B]` input
///   layout (an `NN` GEMM where every operand streams contiguously).
///
/// Numerically the two are identical (see the property tests in
/// `echo-tensor`); only the simulated kernel time differs — exactly the
/// paper's Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct FullyConnected {
    out_features: usize,
    layout: MatrixLayout,
    bias: bool,
}

impl FullyConnected {
    /// A row-major (framework default) fully-connected layer with bias.
    pub fn new(out_features: usize) -> Self {
        FullyConnected {
            out_features,
            layout: MatrixLayout::RowMajor,
            bias: true,
        }
    }

    /// Chooses the GEMM formulation (builder style).
    #[must_use]
    pub fn with_layout(mut self, layout: MatrixLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Disables the bias term (builder style).
    #[must_use]
    pub fn without_bias(mut self) -> Self {
        self.bias = false;
        self
    }

    /// The layer's output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The GEMM formulation in use.
    pub fn layout(&self) -> MatrixLayout {
        self.layout
    }

    fn expected_inputs(&self) -> usize {
        if self.bias {
            3
        } else {
            2
        }
    }

    fn check_arity(&self, n: usize) -> Result<()> {
        if n != self.expected_inputs() {
            return Err(GraphError::Operator {
                op: "fully_connected".to_string(),
                message: format!("expected {} inputs, got {n}", self.expected_inputs()),
            });
        }
        Ok(())
    }

    fn dims(&self, x: &Shape, w: &Shape) -> Result<(usize, usize, usize)> {
        let (rows, h) = x.as_matrix();
        let (o, wh) = w.as_matrix();
        if wh != h || o != self.out_features {
            return Err(GraphError::Operator {
                op: "fully_connected".to_string(),
                message: format!(
                    "X {x} is incompatible with W {w} for out_features={}",
                    self.out_features
                ),
            });
        }
        Ok((rows, h, o))
    }
}

impl Operator for FullyConnected {
    fn name(&self) -> &str {
        "fully_connected"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::FullyConnected
    }

    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        self.check_arity(inputs.len())?;
        let (_, _, o) = self.dims(inputs[0], inputs[1])?;
        if self.bias && inputs[2].num_elements() != o {
            return Err(GraphError::Operator {
                op: "fully_connected".to_string(),
                message: format!("bias {} must have {o} elements", inputs[2]),
            });
        }
        let mut dims = inputs[0].dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = o;
        Ok(Shape::new(dims))
    }

    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        self.check_arity(inputs.len())?;
        let x = inputs[0];
        let w = inputs[1];
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        let out_shape = self.infer_shape(&shapes)?;
        let mut y = x.matmul(w, false, true)?; // [rows x O]
        if self.bias {
            reduce::add_bias_rows(&mut y, inputs[2])?;
        }
        Ok((y.reshape(out_shape)?, Vec::new()))
    }

    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("fc stashes inputs");
        let w = inputs[1].expect("fc stashes inputs");
        let dx = dy.matmul(w, false, false)?.reshape(x.shape().clone())?;
        let dw = dy.matmul(x, true, false)?.reshape(w.shape().clone())?;
        let mut grads = vec![Some(dx), Some(dw)];
        if self.bias {
            let db = reduce::sum_rows(dy);
            grads.push(Some(db));
        }
        Ok(grads)
    }

    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }

    fn forward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((rows, h, o)) = self.dims(inputs[0], inputs[1]) else {
            return Vec::new();
        };
        let gemm = match self.layout {
            MatrixLayout::RowMajor => TiledGemmSpec::fc_row_major(rows, h, o),
            MatrixLayout::ColMajor => TiledGemmSpec::fc_col_major(rows, h, o),
        };
        let mut launches = vec![KernelLaunch::gemm("sgemm_fc_fwd", gemm)];
        if self.bias {
            launches.push(KernelLaunch::kernel(
                "add_bias",
                KernelCategory::Elementwise,
                KernelCost::elementwise(rows * o, 2),
            ));
        }
        launches
    }

    fn backward_launches(&self, inputs: &[&Shape], _output: &Shape) -> Vec<KernelLaunch> {
        let Ok((rows, h, o)) = self.dims(inputs[0], inputs[1]) else {
            return Vec::new();
        };
        // dX and dW GEMMs; the scattered operand depends on the layout (see
        // the module docs of `echo_cachesim::trace`).
        let (dx, dw) = match self.layout {
            MatrixLayout::RowMajor => {
                // dX = dY · W : NN. dW = dYᵀ · X : TN (A scanned against
                // storage order).
                let dx = TiledGemmSpec::new(rows, h, o);
                let dw = TiledGemmSpec {
                    layout_a: MatLayout::ColMajor,
                    ..TiledGemmSpec::new(o, h, rows)
                };
                (dx, dw)
            }
            MatrixLayout::ColMajor => {
                // dXᵀ = Wᵀ · dYᵀ : TN. dWᵀ = Xᵀ · dY : NT-like.
                let dx = TiledGemmSpec {
                    layout_a: MatLayout::ColMajor,
                    ..TiledGemmSpec::new(h, rows, o)
                };
                let dw = TiledGemmSpec {
                    layout_b: MatLayout::ColMajor,
                    ..TiledGemmSpec::new(h, o, rows)
                };
                (dx, dw)
            }
        };
        let mut launches = vec![
            KernelLaunch::gemm("sgemm_fc_dx", dx),
            KernelLaunch::gemm("sgemm_fc_dw", dw),
        ];
        if self.bias {
            launches.push(KernelLaunch::kernel(
                "reduce_db",
                KernelCategory::Reduction,
                KernelCost::elementwise(rows * o, 1),
            ));
        }
        launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_w_b() -> (Tensor, Tensor, Tensor) {
        let x = Tensor::from_fn(Shape::d2(2, 3), |i| i as f32 * 0.3 - 0.5);
        let w = Tensor::from_fn(Shape::d2(4, 3), |i| ((i * 7) % 5) as f32 * 0.2 - 0.4);
        let b = Tensor::from_vec(Shape::d1(4), vec![0.1, -0.2, 0.3, 0.0]).unwrap();
        (x, w, b)
    }

    #[test]
    fn forward_matches_manual() {
        let (x, w, b) = x_w_b();
        let fc = FullyConnected::new(4);
        let (y, saved) = fc.forward(&[&x, &w, &b]).unwrap();
        assert!(saved.is_empty());
        assert_eq!(y.shape(), &Shape::d2(2, 4));
        for r in 0..2 {
            for o in 0..4 {
                let mut acc = b.data()[o];
                for h in 0..3 {
                    acc += x.get(&[r, h]).unwrap() * w.get(&[o, h]).unwrap();
                }
                assert!((y.get(&[r, o]).unwrap() - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shape_inference_keeps_leading_dims() {
        let fc = FullyConnected::new(8).without_bias();
        let x = Shape::d3(5, 2, 3);
        let w = Shape::d2(8, 3);
        assert_eq!(fc.infer_shape(&[&x, &w]).unwrap(), Shape::d3(5, 2, 8));
        let bad_w = Shape::d2(8, 4);
        assert!(fc.infer_shape(&[&x, &bad_w]).is_err());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (x, w, b) = x_w_b();
        let fc = FullyConnected::new(4);
        let (y, _) = fc.forward(&[&x, &w, &b]).unwrap();
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = fc
            .backward(&[Some(&x), Some(&w), Some(&b)], None, &[], &dy)
            .unwrap();
        let loss =
            |x: &Tensor, w: &Tensor, b: &Tensor| fc.forward(&[x, w, b]).unwrap().0.sum() as f32;
        let eps = 1e-3;
        let dw = grads[1].as_ref().unwrap();
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((dw.data()[i] - fd).abs() < 1e-2, "dW[{i}]");
        }
        let db = grads[2].as_ref().unwrap();
        assert_eq!(db.data(), &[2.0, 2.0, 2.0, 2.0]);
        let dx = grads[0].as_ref().unwrap();
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "dX[{i}]");
        }
    }

    #[test]
    fn layout_changes_launches_not_results() {
        let (x, w, b) = x_w_b();
        let row = FullyConnected::new(4);
        let col = FullyConnected::new(4).with_layout(MatrixLayout::ColMajor);
        let (yr, _) = row.forward(&[&x, &w, &b]).unwrap();
        let (yc, _) = col.forward(&[&x, &w, &b]).unwrap();
        assert_eq!(yr, yc, "layout is a device-plane concern only");

        let shapes = [x.shape(), w.shape(), b.shape()];
        let refs: Vec<&Shape> = shapes.to_vec();
        let out = row.infer_shape(&refs).unwrap();
        let lr = row.forward_launches(&refs, &out);
        let lc = col.forward_launches(&refs, &out);
        assert_ne!(lr, lc);
        assert_eq!(lr.len(), 2); // gemm + bias
    }

    #[test]
    fn arity_is_validated() {
        let fc = FullyConnected::new(4);
        let x = Tensor::zeros(Shape::d2(2, 3));
        let w = Tensor::zeros(Shape::d2(4, 3));
        assert!(fc.forward(&[&x, &w]).is_err());
        let nb = FullyConnected::new(4).without_bias();
        assert!(nb.forward(&[&x, &w]).is_ok());
    }
}
