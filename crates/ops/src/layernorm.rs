//! Layer normalization — part of the attention scoring composite.
//!
//! The forward kernel is row-banded over the shared kernel worker pool
//! for large batches (bit-identical for any worker count); the backward
//! kernel stays serial because `dgamma`/`dbeta` accumulate across rows
//! and parallelizing them would change the FP accumulation order — see
//! `echo_tensor::kernels::layer_norm_backward`.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{kernels, Shape, Tensor};

/// Row-wise layer normalization with learned scale and shift.
///
/// Inputs: `x [..., D]`, `gamma [D]`, `beta [D]`. The normalized
/// activations and per-row inverse standard deviations are saved for
/// backward — real feature maps of size `O(B·T·H)` per attention step,
/// which is what the Echo pass recomputes instead of stashing.
#[derive(Debug, Clone, Copy)]
pub struct LayerNorm {
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for LayerNorm {
    fn default() -> Self {
        LayerNorm { eps: 1e-5 }
    }
}

impl Operator for LayerNorm {
    fn name(&self) -> &str {
        "layer_norm"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let x = inputs[0];
        let d = *x.dims().last().ok_or_else(|| GraphError::Operator {
            op: "layer_norm".to_string(),
            message: "cannot normalize a scalar".to_string(),
        })?;
        if inputs[1].num_elements() != d || inputs[2].num_elements() != d {
            return Err(GraphError::Operator {
                op: "layer_norm".to_string(),
                message: format!(
                    "gamma {} / beta {} must have {d} elements",
                    inputs[1], inputs[2]
                ),
            });
        }
        Ok(x.clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let (y, saved) = kernels::layer_norm(inputs[0], inputs[1], inputs[2], self.eps)?;
        let inv_std = Tensor::from_vec(Shape::d1(saved.inv_std.len()), saved.inv_std.clone())?;
        Ok((y, vec![saved.normalized, inv_std]))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let gamma = inputs[1].expect("layer_norm stashes inputs");
        let reconstructed = kernels::LayerNormSaved {
            normalized: saved[0].clone(),
            inv_std: saved[1].data().to_vec(),
        };
        let (dx, dgamma, dbeta) = kernels::layer_norm_backward(&reconstructed, gamma, dy)?;
        Ok(vec![Some(dx), Some(dgamma), Some(dbeta)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        let x = inputs[0];
        let (rows, _) = x.as_matrix();
        (x.num_bytes() + rows * 4) as u64
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "layer_norm_fwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 3),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "layer_norm_bwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 4),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows_with_scale_shift() {
        let x = Tensor::from_fn(Shape::d2(2, 4), |i| i as f32);
        let gamma = Tensor::full(Shape::d1(4), 2.0);
        let beta = Tensor::full(Shape::d1(4), 1.0);
        let (y, saved) = LayerNorm::default().forward(&[&x, &gamma, &beta]).unwrap();
        assert_eq!(saved.len(), 2);
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!((mean - 1.0).abs() < 1e-4, "shifted mean");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let op = LayerNorm::default();
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5]).unwrap();
        let gamma = Tensor::from_vec(Shape::d1(3), vec![1.0, 0.5, 1.5]).unwrap();
        let beta = Tensor::from_vec(Shape::d1(3), vec![0.0, 0.1, -0.1]).unwrap();
        let (_, saved) = op.forward(&[&x, &gamma, &beta]).unwrap();
        let dy = Tensor::full(Shape::d2(2, 3), 1.0);
        let grads = op
            .backward(&[Some(&x), Some(&gamma), Some(&beta)], None, &saved, &dy)
            .unwrap();
        let loss =
            |x: &Tensor, g: &Tensor, b: &Tensor| op.forward(&[x, g, b]).unwrap().0.sum() as f32;
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (grads[0].as_ref().unwrap().data()[i] - fd).abs() < 2e-2,
                "dx[{i}]"
            );
        }
        for i in 0..3 {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!(
                (grads[1].as_ref().unwrap().data()[i] - fd).abs() < 2e-2,
                "dgamma[{i}]"
            );
        }
    }

    #[test]
    fn saved_bytes_matches_actual_saves() {
        let op = LayerNorm::default();
        let x = Tensor::from_fn(Shape::d2(4, 8), |i| i as f32 * 0.1);
        let gamma = Tensor::full(Shape::d1(8), 1.0);
        let beta = Tensor::zeros(Shape::d1(8));
        let (_, saved) = op.forward(&[&x, &gamma, &beta]).unwrap();
        let actual: u64 = saved.iter().map(|t| t.num_bytes() as u64).sum();
        let declared = op.saved_bytes(
            &[x.shape(), gamma.shape(), beta.shape()],
            &x.shape().clone(),
        );
        assert_eq!(actual, declared);
    }

    #[test]
    fn rejects_mismatched_gamma() {
        let op = LayerNorm::default();
        assert!(op
            .infer_shape(&[&Shape::d2(2, 4), &Shape::d1(3), &Shape::d1(4)])
            .is_err());
    }
}
