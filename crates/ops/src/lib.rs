//! The operator library for the Echo graph: everything an LSTM-RNN
//! training stack needs.
//!
//! Each operator implements [`echo_graph::Operator`]: numeric forward and
//! backward kernels (backed by `echo-tensor`), shape inference, stash
//! declarations mirroring MXNet's `OperatorProperty`, and the kernel-launch
//! descriptions the device plane uses for timing. The operators relevant to
//! the paper's two optimizations are:
//!
//! * [`FullyConnected`] — carries a [`MatrixLayout`] choosing between the
//!   `Y = XWᵀ` and `Yᵀ = WXᵀ` GEMM formulations (data layout optimization,
//!   §4.2);
//! * the attention scoring pipeline ([`BroadcastAddQuery`] →
//!   [`LayerNorm`] → [`Activation`] tanh → [`ScoreReduce`]) — the O-shape
//!   subgraph whose intermediates the Echo pass marks for recomputation
//!   (§4.1);
//! * [`SequenceReverse`] — with both MXNet's sequential implementation and
//!   the paper's parallelized one (§5.1).

#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod embedding;
pub mod ewise;
pub mod fc;
pub mod layernorm;
pub mod reduce_ops;
pub mod seq_reverse;
pub mod shape_ops;
pub mod softmax;

pub use activation::{Activation, ActivationKind};
pub use attention::{BroadcastAddQuery, ScoreReduce, WeightedSum};
pub use embedding::Embedding;
pub use ewise::{Add, Mul, Sub};
pub use fc::FullyConnected;
pub use layernorm::LayerNorm;
pub use reduce_ops::MeanAll;
pub use seq_reverse::SequenceReverse;
pub use shape_ops::{Concat2LastDim, Permute3, SliceAxis0, SliceLastDim, StackAxis0};
pub use softmax::{SoftmaxCrossEntropy, SoftmaxRows};

pub use echo_tensor::MatrixLayout;
