//! Reduction operators.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

/// Mean over all elements — a trivial scalar loss used by pure-LSTM
/// microbenchmarks where only kernel timing matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAll;

impl Operator for MeanAll {
    fn name(&self) -> &str {
        "mean_all"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Reduction
    }
    fn infer_shape(&self, _inputs: &[&Shape]) -> Result<Shape> {
        Ok(Shape::scalar())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let n = inputs[0].len().max(1) as f64;
        Ok((Tensor::scalar((inputs[0].sum() / n) as f32), Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("mean_all stashes inputs for its shape");
        let n = x.len().max(1) as f32;
        Ok(vec![Some(Tensor::full(
            x.shape().clone(),
            dy.data()[0] / n,
        ))])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "mean_all_fwd",
            KernelCategory::Reduction,
            KernelCost::elementwise(i[0].num_elements(), 1),
        )]
    }
    fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "mean_all_bwd",
            KernelCategory::Reduction,
            KernelCost::elementwise(i[0].num_elements(), 1),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_gradient() {
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let (y, _) = MeanAll.forward(&[&x]).unwrap();
        assert_eq!(y.data()[0], 3.0);
        let grads = MeanAll
            .backward(&[Some(&x)], None, &[], &Tensor::scalar(2.0))
            .unwrap();
        assert_eq!(grads[0].as_ref().unwrap().data(), &[0.5; 4]);
    }
}
