//! The `SequenceReverse` operator, in both the MXNet sequential
//! implementation and the paper's parallelized rewrite (§5.1).

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

/// Reverses a `[T, B, H]` sequence along the time axis.
///
/// Numerically the two variants are identical; they differ only in the
/// device model:
///
/// * [`SequenceReverse::sequential`] mirrors MXNet's implementation, which
///   walks the batch dimension serially and achieves ~1 GB/s read and
///   ~0.1 GB/s write bandwidth on a 547 GB/s GPU (paper §5.1) — making an
///   O(B·T·H) copy the runtime bottleneck of Figure 6;
/// * [`SequenceReverse::parallel`] is the paper's rewrite that parallelizes
///   across samples and restores streaming bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct SequenceReverse {
    parallel: bool,
}

impl SequenceReverse {
    /// MXNet's slow sequential implementation.
    pub fn sequential() -> Self {
        SequenceReverse { parallel: false }
    }

    /// The paper's parallelized implementation (`par_rev`).
    pub fn parallel() -> Self {
        SequenceReverse { parallel: true }
    }

    /// Whether this is the parallel variant.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    fn reverse(x: &Tensor) -> Result<Tensor> {
        let t = x.shape().dim(0);
        let mut out = Tensor::zeros(x.shape().clone());
        for i in 0..t {
            let step = x.index_axis0(i)?;
            out.set_axis0(t - 1 - i, &step)?;
        }
        Ok(out)
    }
}

impl Operator for SequenceReverse {
    fn name(&self) -> &str {
        if self.parallel {
            "sequence_reverse_par"
        } else {
            "sequence_reverse_seq"
        }
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::SequenceReverse
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        if inputs[0].rank() == 0 {
            return Err(GraphError::Operator {
                op: "sequence_reverse".to_string(),
                message: "cannot reverse a scalar".to_string(),
            });
        }
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((Self::reverse(inputs[0])?, Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        Ok(vec![Some(Self::reverse(dy)?)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        let elems = o.num_elements();
        let cost = if self.parallel {
            KernelCost::elementwise(elems, 2).with_bandwidth_efficiency(0.8)
        } else {
            // MXNet walks samples one at a time: effectively ~1 GB/s of a
            // 547 GB/s device.
            KernelCost::elementwise(elems, 2)
                .with_bandwidth_efficiency(0.002)
                .with_parallelism(o.dims().get(1).copied().unwrap_or(1))
        };
        vec![KernelLaunch::kernel(
            format!("{}_fwd", self.name()),
            KernelCategory::SequenceReverse,
            cost,
        )]
    }
    fn backward_launches(&self, i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        self.forward_launches(i, o)
            .into_iter()
            .map(|mut l| {
                l.name = l.name.replace("_fwd", "_bwd");
                l
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverses_time_axis_only() {
        let x = Tensor::from_fn(Shape::d3(3, 2, 2), |i| i as f32);
        let (y, _) = SequenceReverse::parallel().forward(&[&x]).unwrap();
        assert_eq!(y.index_axis0(0).unwrap(), x.index_axis0(2).unwrap());
        assert_eq!(y.index_axis0(2).unwrap(), x.index_axis0(0).unwrap());
        assert_eq!(y.index_axis0(1).unwrap(), x.index_axis0(1).unwrap());
    }

    #[test]
    fn double_reverse_is_identity_and_backward_matches() {
        let x = Tensor::from_fn(Shape::d3(4, 2, 3), |i| (i as f32).cos());
        let op = SequenceReverse::sequential();
        let (y, _) = op.forward(&[&x]).unwrap();
        let (back, _) = op.forward(&[&y]).unwrap();
        assert_eq!(back, x);
        let grads = op.backward(&[None], None, &[], &y).unwrap();
        assert_eq!(grads[0].as_ref().unwrap(), &x);
    }

    #[test]
    fn variants_agree_numerically_but_not_in_cost() {
        let x = Tensor::from_fn(Shape::d3(3, 2, 2), |i| i as f32);
        let (a, _) = SequenceReverse::sequential().forward(&[&x]).unwrap();
        let (b, _) = SequenceReverse::parallel().forward(&[&x]).unwrap();
        assert_eq!(a, b);
        let s = Shape::d3(50, 128, 512);
        let seq = SequenceReverse::sequential().forward_launches(&[&s], &s);
        let par = SequenceReverse::parallel().forward_launches(&[&s], &s);
        let eff = |l: &KernelLaunch| match &l.spec {
            echo_graph::LaunchSpec::Kernel(c) => c.bandwidth_efficiency,
            _ => unreachable!(),
        };
        assert!(eff(&seq[0]) < eff(&par[0]) / 100.0);
    }
}
