//! Shape-manipulation operators: slicing, stacking, concatenation and axis
//! permutation.
//!
//! These are the small glue kernels the MXNet "Default" LSTM implementation
//! is built from — the swarm of tiny launches that makes it launch-bound
//! (paper Figure 7a).

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{Shape, Tensor};

fn op_err(op: &str, message: String) -> GraphError {
    GraphError::Operator {
        op: op.to_string(),
        message,
    }
}

/// Slices `[start, end)` of the last dimension — how the 4 LSTM gates are
/// split out of the `[B x 4H]` pre-activation.
#[derive(Debug, Clone, Copy)]
pub struct SliceLastDim {
    /// First column (inclusive).
    pub start: usize,
    /// Last column (exclusive).
    pub end: usize,
}

impl SliceLastDim {
    /// Creates a slice over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "empty slice [{start}, {end})");
        SliceLastDim { start, end }
    }

    fn width(&self) -> usize {
        self.end - self.start
    }
}

impl Operator for SliceLastDim {
    fn name(&self) -> &str {
        "slice_last_dim"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let s = inputs[0];
        let last = *s
            .dims()
            .last()
            .ok_or_else(|| op_err("slice_last_dim", "cannot slice a scalar".to_string()))?;
        if self.end > last {
            return Err(op_err(
                "slice_last_dim",
                format!(
                    "slice [{}, {}) exceeds last dim {last}",
                    self.start, self.end
                ),
            ));
        }
        let mut dims = s.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = self.width();
        Ok(Shape::new(dims))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let x = inputs[0];
        let out_shape = self.infer_shape(&[x.shape()])?;
        let (rows, cols) = x.shape().as_matrix();
        let w = self.width();
        let mut out = Tensor::zeros(out_shape);
        for r in 0..rows {
            let src = &x.data()[r * cols + self.start..r * cols + self.end];
            out.data_mut()[r * w..(r + 1) * w].copy_from_slice(src);
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("slice stashes inputs for its shape");
        let (rows, cols) = x.shape().as_matrix();
        let w = self.width();
        let mut dx = Tensor::zeros(x.shape().clone());
        for r in 0..rows {
            let src = &dy.data()[r * w..(r + 1) * w];
            dx.data_mut()[r * cols + self.start..r * cols + self.end].copy_from_slice(src);
        }
        Ok(vec![Some(dx)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn grad_col_span(&self) -> Option<(usize, usize)> {
        // Backward scatters `dy` into columns [start, end) of a zeroed
        // `dx` — the disjoint-support property the fusion pass relies on
        // when several gate slices consume one pre-activation.
        Some((self.start, self.end))
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "slice_fwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, i: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "slice_bwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(i[0].num_elements(), 2),
        )]
    }
}

/// Concatenates two tensors along the last dimension — how `[query;
/// context]` forms the attention hidden state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Concat2LastDim;

impl Operator for Concat2LastDim {
    fn name(&self) -> &str {
        "concat2"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let (a, b) = (inputs[0], inputs[1]);
        if a.rank() != b.rank()
            || a.rank() == 0
            || a.dims()[..a.rank() - 1] != b.dims()[..b.rank() - 1]
        {
            return Err(op_err(
                "concat2",
                format!("incompatible shapes {a} and {b}"),
            ));
        }
        let mut dims = a.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") += b.dims().last().expect("rank >= 1");
        Ok(Shape::new(dims))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let (a, b) = (inputs[0], inputs[1]);
        let out_shape = self.infer_shape(&[a.shape(), b.shape()])?;
        let (rows, ca) = a.shape().as_matrix();
        let (_, cb) = b.shape().as_matrix();
        let mut out = Tensor::zeros(out_shape);
        let cw = ca + cb;
        for r in 0..rows {
            out.data_mut()[r * cw..r * cw + ca].copy_from_slice(&a.data()[r * ca..(r + 1) * ca]);
            out.data_mut()[r * cw + ca..(r + 1) * cw]
                .copy_from_slice(&b.data()[r * cb..(r + 1) * cb]);
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let a = inputs[0].expect("concat stashes inputs for shapes");
        let b = inputs[1].expect("concat stashes inputs for shapes");
        let (rows, ca) = a.shape().as_matrix();
        let (_, cb) = b.shape().as_matrix();
        let cw = ca + cb;
        let mut da = Tensor::zeros(a.shape().clone());
        let mut db = Tensor::zeros(b.shape().clone());
        for r in 0..rows {
            da.data_mut()[r * ca..(r + 1) * ca].copy_from_slice(&dy.data()[r * cw..r * cw + ca]);
            db.data_mut()[r * cb..(r + 1) * cb]
                .copy_from_slice(&dy.data()[r * cw + ca..(r + 1) * cw]);
        }
        Ok(vec![Some(da), Some(db)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "concat_fwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 3),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "concat_bwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 3),
        )]
    }
}

/// Extracts slice `index` along axis 0 — one time step of a `[T, B, H]`
/// sequence.
#[derive(Debug, Clone, Copy)]
pub struct SliceAxis0 {
    /// The time step to extract.
    pub index: usize,
}

impl Operator for SliceAxis0 {
    fn name(&self) -> &str {
        "slice_axis0"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let s = inputs[0];
        if s.rank() == 0 || self.index >= s.dim(0) {
            return Err(op_err(
                "slice_axis0",
                format!("index {} out of bounds for {s}", self.index),
            ));
        }
        Ok(Shape::new(s.dims()[1..].to_vec()))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((inputs[0].index_axis0(self.index)?, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let x = inputs[0].expect("slice stashes inputs for its shape");
        let mut dx = Tensor::zeros(x.shape().clone());
        dx.set_axis0(self.index, dy)?;
        Ok(vec![Some(dx)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "slice_t_fwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "slice_t_bwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
}

/// Stacks `k` same-shaped inputs along a new axis 0 — collecting per-step
/// hidden states into the `[T, B, H]` sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackAxis0;

impl Operator for StackAxis0 {
    fn name(&self) -> &str {
        "stack_axis0"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Elementwise
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let first = inputs
            .first()
            .ok_or_else(|| op_err("stack_axis0", "needs at least one input".to_string()))?;
        for s in inputs {
            if s != first {
                return Err(op_err(
                    "stack_axis0",
                    format!("ragged inputs: {first} vs {s}"),
                ));
            }
        }
        let mut dims = vec![inputs.len()];
        dims.extend_from_slice(first.dims());
        Ok(Shape::new(dims))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
        let out_shape = self.infer_shape(&shapes)?;
        let mut out = Tensor::zeros(out_shape);
        for (i, t) in inputs.iter().enumerate() {
            out.set_axis0(i, t)?;
        }
        Ok((out, Vec::new()))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        (0..inputs.len())
            .map(|i| Ok(Some(dy.index_axis0(i)?)))
            .collect()
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "stack_fwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "stack_bwd",
            KernelCategory::Elementwise,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
}

/// Permutes the axes of a rank-3 tensor — the `[T, B, H] → [T, H, B]`
/// layout conversion at the heart of the EcoRNN input layout (§5.3).
#[derive(Debug, Clone, Copy)]
pub struct Permute3 {
    /// Output-axis → input-axis mapping.
    pub perm: [usize; 3],
}

impl Permute3 {
    /// The inverse permutation.
    fn inverse(&self) -> [usize; 3] {
        let mut inv = [0usize; 3];
        for (out_axis, &in_axis) in self.perm.iter().enumerate() {
            inv[in_axis] = out_axis;
        }
        inv
    }
}

impl Operator for Permute3 {
    fn name(&self) -> &str {
        "permute3"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Transpose
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let s = inputs[0];
        if s.rank() != 3 {
            return Err(op_err("permute3", format!("needs rank 3, got {s}")));
        }
        let d = s.dims();
        Ok(Shape::d3(d[self.perm[0]], d[self.perm[1]], d[self.perm[2]]))
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((inputs[0].permute3(self.perm)?, Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        Ok(vec![Some(dy.permute3(self.inverse())?)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::NONE
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "permute3_fwd",
            KernelCategory::Transpose,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "permute3_bwd",
            KernelCategory::Transpose,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_last_dim_round_trip() {
        let x = Tensor::from_fn(Shape::d2(2, 6), |i| i as f32);
        let op = SliceLastDim::new(2, 5);
        let (y, _) = op.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 3));
        assert_eq!(y.data(), &[2., 3., 4., 8., 9., 10.]);
        let dy = Tensor::full(Shape::d2(2, 3), 1.0);
        let dx = op.backward(&[Some(&x)], None, &[], &dy).unwrap();
        let dx = dx[0].as_ref().unwrap();
        assert_eq!(dx.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(dx.get(&[0, 3]).unwrap(), 1.0);
        assert_eq!(dx.get(&[1, 5]).unwrap(), 0.0);
        assert!(SliceLastDim::new(2, 7).infer_shape(&[x.shape()]).is_err());
    }

    #[test]
    fn concat2_round_trip() {
        let a = Tensor::from_fn(Shape::d2(2, 2), |i| i as f32);
        let b = Tensor::from_fn(Shape::d2(2, 3), |i| 10.0 + i as f32);
        let (y, _) = Concat2LastDim.forward(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 5));
        assert_eq!(y.data(), &[0., 1., 10., 11., 12., 2., 3., 13., 14., 15.]);
        let grads = Concat2LastDim
            .backward(&[Some(&a), Some(&b)], None, &[], &y)
            .unwrap();
        assert_eq!(grads[0].as_ref().unwrap().data(), a.data());
        assert_eq!(grads[1].as_ref().unwrap().data(), b.data());
    }

    #[test]
    fn slice_axis0_and_stack_are_inverse() {
        let x = Tensor::from_fn(Shape::d3(3, 2, 2), |i| i as f32);
        let steps: Vec<Tensor> = (0..3)
            .map(|t| SliceAxis0 { index: t }.forward(&[&x]).unwrap().0)
            .collect();
        let refs: Vec<&Tensor> = steps.iter().collect();
        let (restacked, _) = StackAxis0.forward(&refs).unwrap();
        assert_eq!(restacked, x);
    }

    #[test]
    fn slice_axis0_backward_pads() {
        let x = Tensor::zeros(Shape::d3(3, 2, 2));
        let dy = Tensor::full(Shape::d2(2, 2), 2.0);
        let dx = SliceAxis0 { index: 1 }
            .backward(&[Some(&x)], None, &[], &dy)
            .unwrap();
        let dx = dx[0].as_ref().unwrap();
        assert_eq!(dx.index_axis0(0).unwrap().sum(), 0.0);
        assert_eq!(dx.index_axis0(1).unwrap().sum(), 8.0);
    }

    #[test]
    fn stack_rejects_ragged() {
        let a = Shape::d2(2, 2);
        let b = Shape::d2(2, 3);
        assert!(StackAxis0.infer_shape(&[&a, &b]).is_err());
        assert!(StackAxis0.infer_shape(&[]).is_err());
    }

    #[test]
    fn permute3_backward_is_inverse() {
        let x = Tensor::from_fn(Shape::d3(2, 3, 4), |i| i as f32);
        let op = Permute3 { perm: [2, 0, 1] };
        let (y, _) = op.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), &Shape::d3(4, 2, 3));
        let dx = op.backward(&[None], None, &[], &y).unwrap();
        assert_eq!(dx[0].as_ref().unwrap(), &x);
    }
}
