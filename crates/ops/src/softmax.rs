//! Softmax operators: the attention-weight softmax and the output loss.
//!
//! Numerics delegate to `echo_tensor::kernels`, whose row-wise softmax
//! (forward and backward) is banded over the shared kernel worker pool
//! for large batches — each row is produced by exactly one band, so the
//! results are bit-identical for any worker count.

use echo_device::{KernelCategory, KernelCost};
use echo_graph::{GraphError, KernelLaunch, Operator, Result, StashNeeds};
use echo_tensor::{kernels, Shape, Tensor};

/// Row-wise softmax over the last dimension — produces the attention
/// weights `α` from the attention scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxRows;

impl Operator for SoftmaxRows {
    fn name(&self) -> &str {
        "softmax"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Softmax
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        Ok(inputs[0].clone())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        Ok((kernels::softmax_rows(inputs[0]), Vec::new()))
    }
    fn backward(
        &self,
        _inputs: &[Option<&Tensor>],
        output: Option<&Tensor>,
        _saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let y = output.expect("softmax stashes its output");
        Ok(vec![Some(kernels::softmax_rows_backward(y, dy)?)])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::OUTPUT
    }
    fn forward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "softmax_fwd",
            KernelCategory::Softmax,
            KernelCost::elementwise(o.num_elements(), 2),
        )]
    }
    fn backward_launches(&self, _i: &[&Shape], o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "softmax_bwd",
            KernelCategory::Softmax,
            KernelCost::elementwise(o.num_elements(), 3),
        )]
    }
}

/// Fused softmax + mean cross-entropy over integer targets — the Output
/// layer's perplexity loss.
///
/// Inputs: `logits [N x V]` (leading dims flattened), `targets` with `N`
/// elements (`f32`-encoded ids). Output: scalar mean loss in nats. Rows
/// whose target equals `ignore_index` (padding) contribute nothing.
///
/// The softmax probabilities are saved for backward — a genuine `[N x V]`
/// feature map, which is why the Output layer shows up prominently in the
/// paper's memory breakdown (Figure 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy {
    /// Target id treated as padding.
    pub ignore_index: Option<usize>,
}

impl SoftmaxCrossEntropy {
    /// Loss without padding handling.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { ignore_index: None }
    }

    /// Loss that ignores rows labelled `pad`.
    pub fn with_ignore(pad: usize) -> Self {
        SoftmaxCrossEntropy {
            ignore_index: Some(pad),
        }
    }

    fn targets_of(t: &Tensor) -> Vec<usize> {
        t.data().iter().map(|&v| v as usize).collect()
    }
}

impl Operator for SoftmaxCrossEntropy {
    fn name(&self) -> &str {
        "softmax_ce"
    }
    fn category(&self) -> KernelCategory {
        KernelCategory::Softmax
    }
    fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let (rows, _) = inputs[0].as_matrix();
        if inputs[1].num_elements() != rows {
            return Err(GraphError::Operator {
                op: "softmax_ce".to_string(),
                message: format!(
                    "logits {} need {rows} targets, got {}",
                    inputs[0],
                    inputs[1].num_elements()
                ),
            });
        }
        Ok(Shape::scalar())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<(Tensor, Vec<Tensor>)> {
        let targets = Self::targets_of(inputs[1]);
        let (loss, probs) = kernels::softmax_cross_entropy(inputs[0], &targets, self.ignore_index)?;
        Ok((Tensor::scalar(loss), vec![probs]))
    }
    fn backward(
        &self,
        inputs: &[Option<&Tensor>],
        _output: Option<&Tensor>,
        saved: &[Tensor],
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let targets = Self::targets_of(inputs[1].expect("ce stashes inputs"));
        let probs = &saved[0];
        let mut dlogits =
            kernels::softmax_cross_entropy_backward(probs, &targets, self.ignore_index)?;
        dlogits.scale_inplace(dy.data()[0]);
        let logits_shape = inputs[0].expect("ce stashes inputs").shape().clone();
        Ok(vec![Some(dlogits.reshape(logits_shape)?), None])
    }
    fn stash(&self) -> StashNeeds {
        StashNeeds::INPUTS
    }
    fn input_differentiable(&self, index: usize) -> bool {
        index == 0
    }
    fn saved_bytes(&self, inputs: &[&Shape], _output: &Shape) -> u64 {
        inputs[0].num_bytes() as u64
    }
    fn forward_launches(&self, inputs: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "softmax_ce_fwd",
            KernelCategory::Softmax,
            KernelCost::elementwise(inputs[0].num_elements(), 2),
        )]
    }
    fn backward_launches(&self, inputs: &[&Shape], _o: &Shape) -> Vec<KernelLaunch> {
        vec![KernelLaunch::kernel(
            "softmax_ce_bwd",
            KernelCategory::Softmax,
            KernelCost::elementwise(inputs[0].num_elements(), 2),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_is_distribution() {
        let x = Tensor::from_fn(Shape::d2(3, 4), |i| (i as f32).sin());
        let (y, _) = SoftmaxRows.forward(&[&x]).unwrap();
        for r in 0..3 {
            let s: f32 = y.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ce_loss_decreases_when_correct_logit_grows() {
        let targets = Tensor::from_vec(Shape::d1(2), vec![0.0, 1.0]).unwrap();
        let weak = Tensor::from_vec(Shape::d2(2, 2), vec![0.1, 0.0, 0.0, 0.1]).unwrap();
        let strong = Tensor::from_vec(Shape::d2(2, 2), vec![5.0, 0.0, 0.0, 5.0]).unwrap();
        let op = SoftmaxCrossEntropy::new();
        let (l_weak, _) = op.forward(&[&weak, &targets]).unwrap();
        let (l_strong, _) = op.forward(&[&strong, &targets]).unwrap();
        assert!(l_strong.data()[0] < l_weak.data()[0]);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Tensor::from_fn(Shape::d2(3, 4), |i| ((i * 13) % 7) as f32 * 0.3 - 1.0);
        let targets = Tensor::from_vec(Shape::d1(3), vec![2.0, 0.0, 3.0]).unwrap();
        let op = SoftmaxCrossEntropy::new();
        let (_, saved) = op.forward(&[&logits, &targets]).unwrap();
        let dy = Tensor::scalar(1.0);
        let grads = op
            .backward(&[Some(&logits), Some(&targets)], None, &saved, &dy)
            .unwrap();
        let g = grads[0].as_ref().unwrap();
        assert!(grads[1].is_none());
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fp = op.forward(&[&lp, &targets]).unwrap().0.data()[0];
            let fm = op.forward(&[&lm, &targets]).unwrap().0.data()[0];
            let fd = (fp - fm) / (2.0 * eps);
            assert!((g.data()[i] - fd).abs() < 1e-3, "elem {i}");
        }
    }

    #[test]
    fn padding_rows_are_ignored() {
        let logits = Tensor::from_vec(Shape::d2(2, 2), vec![0.0, 1.0, 3.0, -3.0]).unwrap();
        let targets = Tensor::from_vec(Shape::d1(2), vec![1.0, 9.0]).unwrap();
        let op = SoftmaxCrossEntropy::with_ignore(9);
        let (loss, saved) = op.forward(&[&logits, &targets]).unwrap();
        // Only row 0 counts.
        let p0 = kernels::softmax_rows(&logits).data()[1];
        assert!((loss.data()[0] + p0.ln()).abs() < 1e-5);
        let grads = op
            .backward(
                &[Some(&logits), Some(&targets)],
                None,
                &saved,
                &Tensor::scalar(1.0),
            )
            .unwrap();
        let g = grads[0].as_ref().unwrap();
        assert_eq!(&g.data()[2..4], &[0.0, 0.0], "padding row has no gradient");
    }

    #[test]
    fn target_count_is_validated() {
        let logits = Shape::d2(3, 4);
        let bad = Shape::d1(2);
        assert!(SoftmaxCrossEntropy::new()
            .infer_shape(&[&logits, &bad])
            .is_err());
    }

    #[test]
    fn saved_bytes_accounts_for_probs() {
        let logits = Shape::d2(128, 10_000);
        let targets = Shape::d1(128);
        let op = SoftmaxCrossEntropy::new();
        assert_eq!(
            op.saved_bytes(&[&logits, &targets], &Shape::scalar()),
            logits.num_bytes() as u64
        );
    }
}
