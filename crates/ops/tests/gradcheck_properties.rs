//! Property-based gradient checks: the attention scoring chain,
//! layer normalization, and sequence reversal verified against finite
//! differences over randomized shapes and parameter draws, reusing the
//! executor's gradcheck harness.

use echo_graph::gradcheck::check_param_grad;
use echo_graph::{Executor, Graph, NodeId, StashPlan};
use echo_memory::{DeviceMemory, LayerKind};
use echo_ops::*;
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
}

fn exec_for(graph: Graph) -> Executor {
    Executor::new(Arc::new(graph), StashPlan::stash_all(), mem())
}

/// A named parameter's gradient must survive finite-difference scrutiny.
fn assert_grad_ok(
    exec: &mut Executor,
    bindings: &HashMap<NodeId, Tensor>,
    loss: NodeId,
    param: NodeId,
    name: &str,
) -> Result<(), TestCaseError> {
    let report = check_param_grad(exec, bindings, loss, param, 1e-2, 8)
        .map_err(|e| TestCaseError::Fail(format!("{name}: {e}")))?;
    prop_assert!(
        report.passes(0.05),
        "{name}: abs={} rel={}",
        report.max_abs_err,
        report.max_rel_err
    );
    Ok(())
}

proptest! {
    /// LayerNorm: gamma, beta and an elementwise downstream parameter all
    /// check out for arbitrary `[T, B, H]` shapes and random draws.
    #[test]
    fn layernorm_gradients_hold(
        t in 1usize..4, b in 1usize..4, h in 2usize..8, seed in 0u64..500,
    ) {
        let mut g = Graph::new();
        let x = g.input("x", LayerKind::Rnn);
        let gamma = g.param("gamma", LayerKind::Rnn);
        let beta = g.param("beta", LayerKind::Rnn);
        let w = g.param("w", LayerKind::Rnn);
        let ln = g.apply("ln", Arc::new(LayerNorm::default()), &[x, gamma, beta], LayerKind::Rnn);
        let scaled = g.apply("scaled", Arc::new(Mul), &[ln, w], LayerKind::Rnn);
        let loss = g.apply("loss", Arc::new(MeanAll), &[scaled], LayerKind::Output);

        let mut exec = exec_for(g);
        let mut rng = seeded_rng(seed);
        // Keep gamma away from zero so relative errors stay meaningful.
        let mut gamma_init = uniform(Shape::d1(h), 0.5, &mut rng);
        gamma_init.map_inplace(|g| g + 1.0);
        exec.bind_param(gamma, gamma_init).unwrap();
        exec.bind_param(beta, uniform(Shape::d1(h), 0.3, &mut rng)).unwrap();
        exec.bind_param(w, uniform(Shape::d3(t, b, h), 0.8, &mut rng)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(x, uniform(Shape::d3(t, b, h), 1.0, &mut rng));

        for (name, p) in [("gamma", gamma), ("beta", beta), ("w", w)] {
            assert_grad_ok(&mut exec, &bindings, loss, p, name)?;
        }
    }

    /// The attention scoring chain (broadcast-add, layernorm, tanh, score,
    /// softmax, weighted sum): score vector and layernorm scale gradients
    /// hold for arbitrary key/query geometries.
    #[test]
    fn attention_gradients_hold(
        t in 2usize..5, b in 1usize..3, h in 2usize..6, seed in 0u64..500,
    ) {
        let mut g = Graph::new();
        let keys = g.input("keys", LayerKind::Attention);
        let query = g.input("query", LayerKind::Attention);
        let gamma = g.param("gamma", LayerKind::Attention);
        let beta = g.param("beta", LayerKind::Attention);
        let v = g.param("v", LayerKind::Attention);
        let e = g.apply("e", Arc::new(BroadcastAddQuery), &[keys, query], LayerKind::Attention);
        let ln = g.apply("ln", Arc::new(LayerNorm::default()), &[e, gamma, beta], LayerKind::Attention);
        let th = g.apply("th", Arc::new(Activation::tanh()), &[ln], LayerKind::Attention);
        let score = g.apply("score", Arc::new(ScoreReduce), &[th, v], LayerKind::Attention);
        let alpha = g.apply("alpha", Arc::new(SoftmaxRows), &[score], LayerKind::Attention);
        let ctx = g.apply("ctx", Arc::new(WeightedSum), &[alpha, keys], LayerKind::Attention);
        let loss = g.apply("loss", Arc::new(MeanAll), &[ctx], LayerKind::Output);

        let mut exec = exec_for(g);
        let mut rng = seeded_rng(seed);
        exec.bind_param(gamma, Tensor::full(Shape::d1(h), 1.0)).unwrap();
        exec.bind_param(beta, Tensor::zeros(Shape::d1(h))).unwrap();
        exec.bind_param(v, uniform(Shape::d1(h), 0.8, &mut rng)).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(keys, uniform(Shape::d3(t, b, h), 1.0, &mut rng));
        bindings.insert(query, uniform(Shape::d2(b, h), 1.0, &mut rng));

        for (name, p) in [("v", v), ("gamma", gamma)] {
            assert_grad_ok(&mut exec, &bindings, loss, p, name)?;
        }
    }

    /// SequenceReverse: gradients flow correctly through the time
    /// reversal for an upstream parameter, and the sequential and
    /// parallel variants produce bit-identical gradients (they differ
    /// only in the device model, never numerically).
    #[test]
    fn sequence_reverse_gradients_hold(
        t in 1usize..5, b in 1usize..3, h in 1usize..6, seed in 0u64..500,
    ) {
        let build = |op: SequenceReverse| {
            let mut g = Graph::new();
            let x = g.input("x", LayerKind::Rnn);
            let w = g.param("w", LayerKind::Rnn);
            let m = g.apply("m", Arc::new(Mul), &[x, w], LayerKind::Rnn);
            let r = g.apply("r", Arc::new(op), &[m], LayerKind::Rnn);
            let sq = g.apply("sq", Arc::new(Mul), &[r, r], LayerKind::Rnn);
            let loss = g.apply("loss", Arc::new(MeanAll), &[sq], LayerKind::Output);
            (g, x, w, loss)
        };

        let mut grads = Vec::new();
        for op in [SequenceReverse::sequential(), SequenceReverse::parallel()] {
            let name = if op.is_parallel() { "parallel" } else { "sequential" };
            let (g, x, w, loss) = build(op);
            let mut exec = exec_for(g);
            let mut rng = seeded_rng(seed);
            exec.bind_param(w, uniform(Shape::d3(t, b, h), 0.8, &mut rng)).unwrap();
            let mut bindings = HashMap::new();
            bindings.insert(x, uniform(Shape::d3(t, b, h), 1.0, &mut rng));
            assert_grad_ok(&mut exec, &bindings, loss, w, name)?;
            grads.push(exec.grad(w).unwrap().data().to_vec());
        }
        prop_assert_eq!(&grads[0], &grads[1], "variants must agree bit-for-bit");
    }
}
