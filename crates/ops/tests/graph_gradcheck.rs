//! End-to-end gradient checks: every operator embedded in a real graph,
//! its parameter gradients verified against finite differences by the
//! executor — including under recomputation policies.

use echo_graph::gradcheck::check_param_grad;
use echo_graph::{Executor, Graph, NodeId, SegmentId, StashPlan, StashPolicy};
use echo_memory::{DeviceMemory, LayerKind};
use echo_ops::*;
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(1 << 30, 0, 0.0)
}

/// Builds the attention scoring pipeline ending in a scalar loss:
/// keys --(broadcast+query)--> layernorm --> tanh --> score --> softmax
/// --> weighted-sum --> FC --> sum-like loss via softmax_ce.
struct AttnGraph {
    graph: Arc<Graph>,
    keys: NodeId,
    query: NodeId,
    targets: NodeId,
    gamma: NodeId,
    v: NodeId,
    w_out: NodeId,
    b_out: NodeId,
    loss: NodeId,
    interior: Vec<NodeId>,
}

fn attention_graph() -> AttnGraph {
    let mut g = Graph::new();
    let keys = g.input("keys", LayerKind::Attention);
    let query = g.input("query", LayerKind::Attention);
    let targets = g.input("targets", LayerKind::Output);
    let gamma = g.param("gamma", LayerKind::Attention);
    let beta = g.param("beta", LayerKind::Attention);
    let v = g.param("v", LayerKind::Attention);
    let w_out = g.param("w_out", LayerKind::Output);
    let b_out = g.param("b_out", LayerKind::Output);

    let e = g.apply(
        "e",
        Arc::new(BroadcastAddQuery),
        &[keys, query],
        LayerKind::Attention,
    );
    let ln = g.apply(
        "ln",
        Arc::new(LayerNorm::default()),
        &[e, gamma, beta],
        LayerKind::Attention,
    );
    let th = g.apply(
        "th",
        Arc::new(Activation::tanh()),
        &[ln],
        LayerKind::Attention,
    );
    let score = g.apply(
        "score",
        Arc::new(ScoreReduce),
        &[th, v],
        LayerKind::Attention,
    );
    let alpha = g.apply(
        "alpha",
        Arc::new(SoftmaxRows),
        &[score],
        LayerKind::Attention,
    );
    let ctx = g.apply(
        "ctx",
        Arc::new(WeightedSum),
        &[alpha, keys],
        LayerKind::Attention,
    );
    let logits = g.apply(
        "logits",
        Arc::new(FullyConnected::new(5)),
        &[ctx, w_out, b_out],
        LayerKind::Output,
    );
    let loss = g.apply(
        "loss",
        Arc::new(SoftmaxCrossEntropy::new()),
        &[logits, targets],
        LayerKind::Output,
    );
    AttnGraph {
        graph: Arc::new(g),
        keys,
        query,
        targets,
        gamma,
        v,
        w_out,
        b_out,
        loss,
        interior: vec![e, ln, th, score],
    }
}

fn bind_attention(exec: &mut Executor, g: &AttnGraph, seed: u64) -> HashMap<NodeId, Tensor> {
    let mut rng = seeded_rng(seed);
    let (t, b, h) = (3usize, 2usize, 4usize);
    exec.bind_param(g.gamma, Tensor::full(Shape::d1(h), 1.0))
        .unwrap();
    exec.bind_param(
        exec.graph().find("beta").unwrap(),
        Tensor::zeros(Shape::d1(h)),
    )
    .unwrap();
    exec.bind_param(g.v, uniform(Shape::d1(h), 0.8, &mut rng))
        .unwrap();
    exec.bind_param(g.w_out, uniform(Shape::d2(5, h), 0.8, &mut rng))
        .unwrap();
    exec.bind_param(g.b_out, uniform(Shape::d1(5), 0.2, &mut rng))
        .unwrap();
    let mut bindings = HashMap::new();
    bindings.insert(g.keys, uniform(Shape::d3(t, b, h), 1.0, &mut rng));
    bindings.insert(g.query, uniform(Shape::d2(b, h), 1.0, &mut rng));
    bindings.insert(
        g.targets,
        Tensor::from_vec(Shape::d1(b), vec![1.0, 3.0]).unwrap(),
    );
    bindings
}

#[test]
fn attention_pipeline_gradients_check_out() {
    let g = attention_graph();
    let mut exec = Executor::new(Arc::clone(&g.graph), StashPlan::stash_all(), mem());
    let bindings = bind_attention(&mut exec, &g, 11);
    for (name, param) in [
        ("v", g.v),
        ("gamma", g.gamma),
        ("w_out", g.w_out),
        ("b_out", g.b_out),
    ] {
        let report = check_param_grad(&mut exec, &bindings, g.loss, param, 1e-2, 16).unwrap();
        assert!(
            report.passes(0.05),
            "{name}: abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }
}

#[test]
fn recomputed_attention_matches_stashed_exactly() {
    let g = attention_graph();

    let run = |plan: StashPlan| {
        let mut exec = Executor::new(Arc::clone(&g.graph), plan, mem());
        let bindings = bind_attention(&mut exec, &g, 42);
        let stats = exec
            .train_step(&bindings, g.loss, Default::default(), None)
            .unwrap();
        let grads: Vec<Tensor> = [g.gamma, g.v, g.w_out, g.b_out]
            .iter()
            .map(|&p| exec.grad(p).unwrap().clone())
            .collect();
        (stats, grads, exec.memory().peak_bytes())
    };

    let (s_base, g_base, peak_base) = run(StashPlan::stash_all());

    // Echo-style plan: recompute the whole scoring interior.
    let mut plan = StashPlan::stash_all();
    for &n in &g.interior {
        plan.set(n, StashPolicy::Recompute(SegmentId { id: 0, pool: 0 }));
    }
    let (s_rec, g_rec, peak_rec) = run(plan);

    assert_eq!(s_base.loss, s_rec.loss, "loss must be identical");
    for (a, b) in g_base.iter().zip(&g_rec) {
        assert_eq!(a.data(), b.data(), "gradients must be bit-exact");
    }
    assert!(s_rec.replays >= 1);
    // With a single tiny segment the workspace is the same order as the
    // stashed feature maps, so only a rough bound holds here; the real
    // reduction comes from cross-step workspace sharing (next test).
    assert!(peak_rec <= peak_base + peak_base / 4);
    let _ = (peak_base, peak_rec);
}

/// Multiple decoder steps, each with its own scoring segment, all sharing
/// one workspace pool — the configuration where partial forward
/// propagation's `O(B·T²·H) → O(B·T·H)` reduction appears.
#[test]
fn multi_step_recompute_shares_workspace() {
    let (t, b, h, steps) = (8usize, 2usize, 16usize, 6usize);
    let mut g = Graph::new();
    let keys = g.input("keys", LayerKind::Attention);
    let targets = g.input("targets", LayerKind::Output);
    let gamma = g.param("gamma", LayerKind::Attention);
    let beta = g.param("beta", LayerKind::Attention);
    let v = g.param("v", LayerKind::Attention);
    let w_out = g.param("w_out", LayerKind::Output);
    let b_out = g.param("b_out", LayerKind::Output);

    let mut queries = Vec::new();
    let mut contexts = Vec::new();
    let mut interiors: Vec<Vec<NodeId>> = Vec::new();
    for s in 0..steps {
        let q = g.input(format!("q{s}"), LayerKind::Attention);
        queries.push(q);
        let e = g.apply(
            format!("e{s}"),
            Arc::new(BroadcastAddQuery),
            &[keys, q],
            LayerKind::Attention,
        );
        let ln = g.apply(
            format!("ln{s}"),
            Arc::new(LayerNorm::default()),
            &[e, gamma, beta],
            LayerKind::Attention,
        );
        let th = g.apply(
            format!("th{s}"),
            Arc::new(Activation::tanh()),
            &[ln],
            LayerKind::Attention,
        );
        let score = g.apply(
            format!("score{s}"),
            Arc::new(ScoreReduce),
            &[th, v],
            LayerKind::Attention,
        );
        let alpha = g.apply(
            format!("alpha{s}"),
            Arc::new(SoftmaxRows),
            &[score],
            LayerKind::Attention,
        );
        let ctx = g.apply(
            format!("ctx{s}"),
            Arc::new(WeightedSum),
            &[alpha, keys],
            LayerKind::Attention,
        );
        contexts.push(ctx);
        interiors.push(vec![e, ln, th, score]);
    }
    let stacked = g.apply(
        "stack",
        Arc::new(StackAxis0),
        &contexts,
        LayerKind::Attention,
    );
    let logits = g.apply(
        "logits",
        Arc::new(FullyConnected::new(5)),
        &[stacked, w_out, b_out],
        LayerKind::Output,
    );
    let loss = g.apply(
        "loss",
        Arc::new(SoftmaxCrossEntropy::new()),
        &[logits, targets],
        LayerKind::Output,
    );
    let graph = Arc::new(g);

    let run = |plan: StashPlan| {
        let m = mem();
        let mut exec = Executor::new(Arc::clone(&graph), plan, m.clone());
        let mut rng = seeded_rng(13);
        exec.bind_param(gamma, Tensor::full(Shape::d1(h), 1.0))
            .unwrap();
        exec.bind_param(beta, Tensor::zeros(Shape::d1(h))).unwrap();
        exec.bind_param(v, uniform(Shape::d1(h), 0.8, &mut rng))
            .unwrap();
        exec.bind_param(w_out, uniform(Shape::d2(5, h), 0.8, &mut rng))
            .unwrap();
        exec.bind_param(b_out, Tensor::zeros(Shape::d1(5))).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(keys, uniform(Shape::d3(t, b, h), 1.0, &mut rng));
        for &q in &queries {
            bindings.insert(q, uniform(Shape::d2(b, h), 1.0, &mut rng));
        }
        let ids: Vec<f32> = (0..steps * b).map(|i| (i % 5) as f32).collect();
        bindings.insert(
            targets,
            Tensor::from_vec(Shape::d1(steps * b), ids).unwrap(),
        );
        let stats = exec
            .train_step(&bindings, loss, Default::default(), None)
            .unwrap();
        (stats, exec.grad(v).unwrap().clone(), m.peak_bytes())
    };

    let (s_base, g_base, peak_base) = run(StashPlan::stash_all());

    let mut plan = StashPlan::stash_all();
    for (s, interior) in interiors.iter().enumerate() {
        for &n in interior {
            plan.set(n, StashPolicy::Recompute(SegmentId { id: s, pool: 0 }));
        }
    }
    let (s_rec, g_rec, peak_rec) = run(plan);

    assert_eq!(s_base.loss, s_rec.loss);
    assert_eq!(g_base.data(), g_rec.data());
    assert_eq!(s_rec.replays as usize, steps, "one replay per decoder step");
    assert!(
        (peak_rec as f64) < peak_base as f64 * 0.75,
        "shared workspace must cut the peak substantially: {peak_rec} vs {peak_base}"
    );
}

#[test]
fn gradients_check_out_under_recomputation() {
    let g = attention_graph();
    let mut plan = StashPlan::stash_all();
    for &n in &g.interior {
        plan.set(n, StashPolicy::Recompute(SegmentId { id: 0, pool: 0 }));
    }
    let mut exec = Executor::new(Arc::clone(&g.graph), plan, mem());
    let bindings = bind_attention(&mut exec, &g, 7);
    let report = check_param_grad(&mut exec, &bindings, g.loss, g.v, 1e-2, 8).unwrap();
    assert!(report.passes(0.05), "abs={}", report.max_abs_err);
}

#[test]
fn lstm_like_chain_of_small_ops_gradchecks() {
    // One unfused LSTM-ish cell: x*W + slice/sigmoid/tanh/mul/add chain.
    let mut g = Graph::new();
    let x = g.input("x", LayerKind::Rnn);
    let targets = g.input("targets", LayerKind::Output);
    let w = g.param("w", LayerKind::Rnn);
    let b = g.param("b", LayerKind::Rnn);
    let h = 3usize;
    let pre = g.apply(
        "pre",
        Arc::new(FullyConnected::new(4 * h)),
        &[x, w, b],
        LayerKind::Rnn,
    );
    let i_gate = g.apply(
        "i",
        Arc::new(SliceLastDim::new(0, h)),
        &[pre],
        LayerKind::Rnn,
    );
    let f_gate = g.apply(
        "f",
        Arc::new(SliceLastDim::new(h, 2 * h)),
        &[pre],
        LayerKind::Rnn,
    );
    let g_in = g.apply(
        "g",
        Arc::new(SliceLastDim::new(2 * h, 3 * h)),
        &[pre],
        LayerKind::Rnn,
    );
    let o_gate = g.apply(
        "o",
        Arc::new(SliceLastDim::new(3 * h, 4 * h)),
        &[pre],
        LayerKind::Rnn,
    );
    let i_s = g.apply(
        "i_s",
        Arc::new(Activation::sigmoid()),
        &[i_gate],
        LayerKind::Rnn,
    );
    let f_s = g.apply(
        "f_s",
        Arc::new(Activation::sigmoid()),
        &[f_gate],
        LayerKind::Rnn,
    );
    let g_t = g.apply("g_t", Arc::new(Activation::tanh()), &[g_in], LayerKind::Rnn);
    let o_s = g.apply(
        "o_s",
        Arc::new(Activation::sigmoid()),
        &[o_gate],
        LayerKind::Rnn,
    );
    let ig = g.apply("ig", Arc::new(Mul), &[i_s, g_t], LayerKind::Rnn);
    let fg = g.apply("fg", Arc::new(Mul), &[f_s, ig], LayerKind::Rnn);
    let c_t = g.apply("c_t", Arc::new(Activation::tanh()), &[fg], LayerKind::Rnn);
    let h_t = g.apply("h_t", Arc::new(Mul), &[o_s, c_t], LayerKind::Rnn);
    let loss = g.apply(
        "loss",
        Arc::new(SoftmaxCrossEntropy::new()),
        &[h_t, targets],
        LayerKind::Output,
    );
    let graph = Arc::new(g);

    let mut rng = seeded_rng(3);
    let mut exec = Executor::new(Arc::clone(&graph), StashPlan::stash_all(), mem());
    exec.bind_param(w, uniform(Shape::d2(4 * h, h), 0.6, &mut rng))
        .unwrap();
    exec.bind_param(b, uniform(Shape::d1(4 * h), 0.2, &mut rng))
        .unwrap();
    let mut bindings = HashMap::new();
    bindings.insert(x, uniform(Shape::d2(2, h), 1.0, &mut rng));
    bindings.insert(
        targets,
        Tensor::from_vec(Shape::d1(2), vec![0.0, 2.0]).unwrap(),
    );
    let report = check_param_grad(&mut exec, &bindings, loss, w, 1e-2, 24).unwrap();
    assert!(
        report.passes(0.05),
        "abs={} rel={}",
        report.max_abs_err,
        report.max_rel_err
    );
}

#[test]
fn sequence_pipeline_with_reverse_and_embedding_gradchecks() {
    // ids -> embedding -> [B,T,H]->reshape? keep [T] ids per batch of 1:
    // ids [T, B] -> embedding -> [T, B, H] -> reverse -> stack/slice -> FC -> loss
    let mut g = Graph::new();
    let ids = g.input("ids", LayerKind::Embedding);
    let targets = g.input("targets", LayerKind::Output);
    let table = g.param("table", LayerKind::Embedding);
    let w = g.param("w", LayerKind::Output);
    let b = g.param("b", LayerKind::Output);
    let emb = g.apply(
        "emb",
        Arc::new(Embedding),
        &[ids, table],
        LayerKind::Embedding,
    );
    let rev = g.apply(
        "rev",
        Arc::new(SequenceReverse::parallel()),
        &[emb],
        LayerKind::Rnn,
    );
    let step = g.apply(
        "step",
        Arc::new(SliceAxis0 { index: 0 }),
        &[rev],
        LayerKind::Rnn,
    );
    let logits = g.apply(
        "logits",
        Arc::new(FullyConnected::new(4)),
        &[step, w, b],
        LayerKind::Output,
    );
    let loss = g.apply(
        "loss",
        Arc::new(SoftmaxCrossEntropy::new()),
        &[logits, targets],
        LayerKind::Output,
    );
    let graph = Arc::new(g);

    let mut rng = seeded_rng(5);
    let mut exec = Executor::new(Arc::clone(&graph), StashPlan::stash_all(), mem());
    exec.bind_param(table, uniform(Shape::d2(6, 3), 0.7, &mut rng))
        .unwrap();
    exec.bind_param(w, uniform(Shape::d2(4, 3), 0.7, &mut rng))
        .unwrap();
    exec.bind_param(b, Tensor::zeros(Shape::d1(4))).unwrap();
    let mut bindings = HashMap::new();
    bindings.insert(
        ids,
        Tensor::from_vec(Shape::d2(3, 2), vec![0.0, 5.0, 2.0, 3.0, 1.0, 4.0]).unwrap(),
    );
    bindings.insert(
        targets,
        Tensor::from_vec(Shape::d1(2), vec![1.0, 0.0]).unwrap(),
    );
    let report = check_param_grad(&mut exec, &bindings, loss, table, 1e-2, 18).unwrap();
    assert!(report.passes(0.05), "abs={}", report.max_abs_err);
}
