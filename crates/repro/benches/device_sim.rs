//! Criterion benches of the simulation infrastructure itself: GEMM trace
//! simulation cost and full symbolic NMT iterations — the price of a
//! "measurement" in this reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echo_cachesim::{simulate_gemm, CacheConfig, TiledGemmSpec};
use echo_repro::{run_nmt, NmtRunConfig};
use echo_rnn::LstmBackend;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim_gemm");
    group.sample_size(10);
    for (name, spec) in [
        ("lstm_row_major", TiledGemmSpec::fc_row_major(64, 512, 2048)),
        ("lstm_col_major", TiledGemmSpec::fc_col_major(64, 512, 2048)),
        ("big_batched", TiledGemmSpec::fc_row_major(6400, 512, 2048)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter(|| simulate_gemm(&spec, &CacheConfig::titan_xp_l2()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("symbolic_nmt_iteration");
    group.sample_size(10);
    group.bench_function("small_zhu_b32", |bench| {
        let mut cfg = NmtRunConfig::zhu("bench", LstmBackend::Default, 32, false);
        cfg.hyper.src_len = 30;
        cfg.hyper.tgt_len = 30;
        cfg.hyper.src_vocab = 3000;
        cfg.hyper.tgt_vocab = 3000;
        bench.iter(|| run_nmt(&cfg).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
