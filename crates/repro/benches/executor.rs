//! Criterion benches of the graph executor itself: numeric and symbolic
//! training-iteration cost for the tiny NMT model, with and without the
//! Echo plan — quantifying the host-side price of the recomputation
//! machinery (replays, workspace leases, policy checks).

use criterion::{criterion_group, criterion_main, Criterion};
use echo::{EchoCompiler, EchoConfig};
use echo_data::{NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel};
use std::sync::Arc;

fn bench_executor(c: &mut Criterion) {
    let corpus = ParallelCorpus::synthetic(Vocab::new(100), Vocab::new(90), 40, 4..=10, 3);
    let model = NmtModel::build(NmtHyper::tiny(100, 90));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);
    let compiled = EchoCompiler::new(EchoConfig::default())
        .compile(
            &model.graph,
            &bindings,
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("compile");

    let mut group = c.benchmark_group("executor_train_step");
    group.sample_size(10);
    for (name, plan, numeric) in [
        ("numeric_baseline", StashPlan::stash_all(), true),
        ("numeric_echo", compiled.plan.clone(), true),
        ("symbolic_baseline", StashPlan::stash_all(), false),
        ("symbolic_echo", compiled.plan.clone(), false),
    ] {
        let mem = DeviceMemory::with_overhead_model(8 << 30, 0, 0.0);
        let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem);
        if numeric {
            model.bind_params(&mut exec, 7).expect("bind");
        } else {
            model.bind_param_shapes(&mut exec).expect("bind");
        }
        let opts = ExecOptions {
            training: true,
            numeric,
        };
        group.bench_function(name, |bench| {
            bench.iter(|| {
                exec.train_step(&bindings, model.loss, opts, None)
                    .expect("step")
            });
        });
    }
    group.finish();

    // The compiler pass itself.
    let mut group = c.benchmark_group("echo_compile");
    group.sample_size(10);
    group.bench_function("tiny_nmt", |bench| {
        bench.iter(|| {
            EchoCompiler::new(EchoConfig::default())
                .compile(
                    &model.graph,
                    &bindings,
                    &model.param_shapes(),
                    &[model.loss, model.logits],
                )
                .expect("compile")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
