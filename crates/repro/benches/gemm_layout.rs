//! Criterion bench for Figure 9's CPU cross-check: the same
//! fully-connected product under the row-major (`Y = XWᵀ`) and
//! column-major (`Yᵀ = WXᵀ`) formulations, on this machine's caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{gemm, MatView, MatViewMut, MatrixLayout, Shape};

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_gemm_layout");
    group.sample_size(10);
    for (name, b, h, o) in [
        ("lstm", 64usize, 512usize, 2048usize),
        ("gru", 64, 1024, 3072),
    ] {
        let mut rng = seeded_rng(3);
        let x = uniform(Shape::d2(b, h), 1.0, &mut rng);
        let w = uniform(Shape::d2(o, h), 1.0, &mut rng);
        let xt = x.transpose2().expect("rank 2");
        group.bench_function(BenchmarkId::new("row_major_y_eq_xwt", name), |bench| {
            let mut out = vec![0.0f32; b * o];
            bench.iter(|| {
                gemm::gemm_blocked(
                    1.0,
                    x.as_mat(),
                    w.as_mat().t(),
                    0.0,
                    &mut MatViewMut::new(&mut out, b, o, MatrixLayout::RowMajor),
                )
                .expect("gemm");
            });
        });
        group.bench_function(BenchmarkId::new("col_major_yt_eq_wxt", name), |bench| {
            let mut out = vec![0.0f32; o * b];
            bench.iter(|| {
                gemm::gemm_blocked(
                    1.0,
                    w.as_mat(),
                    MatView::new(xt.data(), b, h, MatrixLayout::ColMajor).t(),
                    0.0,
                    &mut MatViewMut::new(&mut out, o, b, MatrixLayout::RowMajor),
                )
                .expect("gemm");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
