//! Criterion benches of the numeric-plane LSTM cell: forward and BPTT
//! step cost on the host CPU, across the paper's hidden dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echo_rnn::{lstm_step_backward, lstm_step_forward};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{Shape, Tensor};

fn bench_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_cell");
    group.sample_size(10);
    for &hidden in &[64usize, 256] {
        let b = 16usize;
        let mut rng = seeded_rng(5);
        let x = uniform(Shape::d2(b, hidden), 1.0, &mut rng);
        let h0 = uniform(Shape::d2(b, hidden), 1.0, &mut rng);
        let c0 = uniform(Shape::d2(b, hidden), 1.0, &mut rng);
        let wx = uniform(Shape::d2(4 * hidden, hidden), 0.5, &mut rng);
        let wh = uniform(Shape::d2(4 * hidden, hidden), 0.5, &mut rng);
        let bias = uniform(Shape::d1(4 * hidden), 0.2, &mut rng);

        group.bench_function(BenchmarkId::new("forward", hidden), |bench| {
            bench.iter(|| lstm_step_forward(&x, &h0, &c0, &wx, &wh, &bias).expect("fwd"));
        });

        let (h, cell, gates) = lstm_step_forward(&x, &h0, &c0, &wx, &wh, &bias).expect("fwd");
        let dh = Tensor::full(h.shape().clone(), 1.0);
        let dc = Tensor::zeros(cell.shape().clone());
        group.bench_function(BenchmarkId::new("backward", hidden), |bench| {
            bench.iter(|| {
                lstm_step_backward(&x, &h0, &c0, &wx, &wh, &gates, &cell, &dh, &dc).expect("bwd")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cell);
criterion_main!(benches);
