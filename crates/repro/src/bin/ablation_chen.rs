//! Ablation / related-work comparison (paper §7): Echo's selective
//! O-shape recomputation versus Chen et al.'s generic √N checkpointing on
//! the same NMT model.
//!
//! Expected shape: both reduce memory, but Chen's plan drags
//! fully-connected layers into the replay (and cannot share workspaces
//! across time steps), costing throughput — the paper's argument for a
//! cost-aware compiler pass.

use echo::{analysis::infer_shapes, chen_sqrt_plan, sqrt_stride, EchoCompiler, EchoConfig};
use echo_device::DeviceSim;
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel};
use echo_repro::{gib, print_table, save_json, FRAMEWORK_OP_OVERHEAD_NS, NMT_HOST_OVERHEAD_NS};
use echo_rnn::LstmBackend;
use serde_json::json;
use std::sync::Arc;

fn measure(model: &NmtModel, plan: StashPlan, batch: usize) -> (u64, u64, u64) {
    let bindings = model.symbolic_bindings(batch);
    let mem = DeviceMemory::with_overhead_model(1 << 40, 600 << 20, 0.04);
    let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
    model.bind_param_shapes(&mut exec).expect("bind");
    let mut sim = DeviceSim::new(echo_device::DeviceSpec::titan_xp());
    sim.set_record_trace(false);
    sim.set_op_overhead_ns(FRAMEWORK_OP_OVERHEAD_NS);
    let stats = exec
        .train_step(
            &bindings,
            model.loss,
            ExecOptions {
                training: true,
                numeric: false,
            },
            Some(&mut sim),
        )
        .expect("run");
    sim.synchronize();
    (
        mem.nvidia_smi_peak_bytes(),
        sim.elapsed_ns() + NMT_HOST_OVERHEAD_NS,
        stats.replays,
    )
}

fn main() {
    // Moderate scale so the (deliberately replay-heavy) Chen plan
    // simulates quickly.
    let mut hyper = NmtHyper::zhu(LstmBackend::Default);
    hyper.src_len = 50;
    hyper.tgt_len = 50;
    let model = NmtModel::build(hyper);
    let batch = 128usize;
    let bindings = model.symbolic_bindings(batch);
    let shapes = infer_shapes(&model.graph, &bindings, &model.param_shapes()).expect("shapes");

    let echo_plan = EchoCompiler::new(EchoConfig::default())
        .compile(
            &model.graph,
            &bindings,
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("compile")
        .plan;
    let stride = sqrt_stride(&model.graph);
    let (chen_plan, chen_report) =
        chen_sqrt_plan(&model.graph, &shapes, &[model.loss, model.logits], stride);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, plan) in [
        ("Default (stash all)", StashPlan::stash_all()),
        ("Echo (O-shape pass)", echo_plan),
        (&format!("Chen sqrt(N) (stride {stride})"), chen_plan),
    ] {
        let (mem_bytes, iter_ns, replays) = measure(&model, plan.clone(), batch);
        rows.push(vec![
            name.to_string(),
            gib(mem_bytes),
            format!("{:.0}", batch as f64 / (iter_ns as f64 * 1e-9)),
            replays.to_string(),
        ]);
        out.push(json!({"config": name, "memory_bytes": mem_bytes,
                        "iteration_ns": iter_ns, "replays": replays}));
    }
    print_table(
        "Ablation: Echo vs Chen et al. generic checkpointing (NMT, B=128, T=50)",
        &["plan", "memory GiB", "samples/s", "replays"],
        &rows,
    );
    println!(
        "\nChen recomputes {} nodes including {} fully-connected ones; Echo recomputes\n\
         only GEMM-free attention interiors, which is why it keeps the throughput.",
        chen_report.recomputed, chen_report.expensive_recompute_nodes
    );
    save_json("ablation_chen", &out);
}
