//! Ablation of §4.1.2's workspace sharing: the Echo plan with one shared
//! pool for all (structurally identical) attention segments versus one
//! pool per segment.
//!
//! With sharing, the recomputation scratch stays `O(B·T·H)` no matter how
//! many decoder steps exist; without it, every step retains its own
//! buffer and the workspace grows with `T` — the `O(B·T²·H)` spike the
//! paper warns would cancel the optimization.

use echo::{EchoCompiler, EchoConfig};
use echo_graph::{ExecOptions, Executor};
use echo_memory::{DataStructureKind, DeviceMemory, MemoryBreakdown};
use echo_models::{NmtHyper, NmtModel};
use echo_repro::{print_table, save_json};
use echo_rnn::LstmBackend;
use serde_json::json;
use std::sync::Arc;

fn run(share: bool, tgt_len: usize) -> (u64, u64) {
    let mut hyper = NmtHyper::zhu(LstmBackend::Default);
    hyper.src_len = 50;
    hyper.tgt_len = tgt_len;
    let model = NmtModel::build(hyper);
    let batch = 128usize;
    let bindings = model.symbolic_bindings(batch);
    let config = EchoConfig {
        share_workspace: share,
        ..EchoConfig::default()
    };
    let plan = EchoCompiler::new(config)
        .compile(
            &model.graph,
            &bindings,
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("compile")
        .plan;
    let mem = DeviceMemory::with_overhead_model(1 << 40, 0, 0.0);
    let mut exec = Executor::new(Arc::clone(&model.graph), plan, mem.clone());
    model.bind_param_shapes(&mut exec).expect("bind");
    exec.train_step(
        &bindings,
        model.loss,
        ExecOptions {
            training: true,
            numeric: false,
        },
        None,
    )
    .expect("run");
    let ws = MemoryBreakdown::at_category_maxima(&mem).kind_bytes(DataStructureKind::Workspace);
    (mem.peak_bytes(), ws)
}

fn main() {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for tgt_len in [25usize, 50, 100] {
        let (peak_shared, ws_shared) = run(true, tgt_len);
        let (peak_solo, ws_solo) = run(false, tgt_len);
        rows.push(vec![
            tgt_len.to_string(),
            format!("{:.0}", ws_shared as f64 / 1e6),
            format!("{:.0}", ws_solo as f64 / 1e6),
            format!("{:.2}", peak_shared as f64 / 1e9),
            format!("{:.2}", peak_solo as f64 / 1e9),
        ]);
        out.push(json!({"tgt_len": tgt_len,
                        "workspace_shared_bytes": ws_shared,
                        "workspace_per_segment_bytes": ws_solo,
                        "peak_shared_bytes": peak_shared,
                        "peak_per_segment_bytes": peak_solo}));
    }
    print_table(
        "Ablation: workspace sharing across decoder steps (NMT, B=128)",
        &[
            "decoder steps",
            "shared ws MB",
            "per-segment ws MB",
            "peak shared GB",
            "peak per-seg GB",
        ],
        &rows,
    );
    println!(
        "\nWith sharing the workspace is one segment's size regardless of T\n\
         (O(B*T*H)); without it every decoder step retains a buffer and the\n\
         workspace grows linearly in T (the O(B*T^2*H) total the paper warns\n\
         about in §4.1.2)."
    );
    save_json("ablation_workspace", &out);
}
