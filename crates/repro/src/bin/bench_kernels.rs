//! Kernel and train-step benchmark harness — the perf trajectory anchor.
//!
//! Times the GEMM backends on LSTM-shaped products from the paper's
//! configurations (word-LM: B=64, H=512 → 4H gate blocks; NMT: H=1024)
//! plus end-to-end `word_lm`/`nmt` train steps under the naive-pinned and
//! autotuned matmul policies, and writes `BENCH_kernels.json` at the repo
//! root so every future PR can be compared against this baseline.
//!
//! Flags:
//!
//! * `--quick` — fewer reps / steps (the CI configuration);
//! * `--gate`  — exit non-zero unless the packed-parallel kernel is at
//!   least 2× the naive kernel on the large word-LM-shaped GEMM (a
//!   coarse anti-regression gate);
//! * `--plan`  — additionally time plan-driven vs legacy `train_step`
//!   on scheduler-bound word-LM and NMT configurations and record the
//!   Echo-vs-stash-all planned peaks; with `--gate`, fail unless the
//!   planned word-LM step is ≥1.2× legacy and the Echo planned peak is
//!   strictly below stash-all.
//!
//! Every run also re-checks the bit-exactness contract (packed bands
//! {1, 2, 4, 8} and end-to-end losses across policies) — a benchmark
//! that silently changed numerics would be worse than a slow one.

use echo::{EchoCompiler, EchoConfig};
use echo_data::{BpttBatches, LmCorpus, NmtBatch, ParallelCorpus, Vocab};
use echo_graph::{ExecOptions, Executor, StashPlan};
use echo_memory::DeviceMemory;
use echo_models::{NmtHyper, NmtModel, Sgd, WordLm, WordLmHyper};
use echo_rnn::LstmBackend;
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::{
    gemm, gemm_packed_parallel, set_matmul_policy, MatViewMut, MatmulBackend, MatmulPolicy,
    MatrixLayout, Shape,
};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in microseconds (one unmeasured
/// warm-up run first).
fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

struct GemmShapeResult {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive_us: f64,
    blocked_us: f64,
    packed_us: f64,
}

fn bench_gemm_shape(
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
) -> GemmShapeResult {
    let mut rng = seeded_rng(9);
    let a = uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut c = vec![0.0f32; m * n];
    let ways = echo_tensor::pool::global().num_threads();

    let naive_us = median_us(reps, || {
        gemm::gemm(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
        )
        .expect("gemm");
    });
    let blocked_us = median_us(reps, || {
        gemm::gemm_blocked(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
        )
        .expect("gemm");
    });
    let packed_us = median_us(reps, || {
        gemm_packed_parallel(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
            ways,
        )
        .expect("gemm");
    });
    GemmShapeResult {
        name,
        m,
        k,
        n,
        naive_us,
        blocked_us,
        packed_us,
    }
}

/// Packed bands {1, 2, 4, 8} must produce the same bits on the big shape.
fn check_band_bitexactness(m: usize, k: usize, n: usize) -> bool {
    let mut rng = seeded_rng(17);
    let a = uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut reference = vec![0.0f32; m * n];
    gemm::gemm(
        1.0,
        a.as_mat(),
        b.as_mat(),
        0.0,
        &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
    )
    .expect("gemm");
    for ways in [1usize, 2, 4, 8] {
        let mut c = vec![0.0f32; m * n];
        gemm_packed_parallel(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
            ways,
        )
        .expect("gemm");
        if c.iter()
            .zip(&reference)
            .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return false;
        }
    }
    true
}

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(4 << 30, 0, 0.0)
}

/// Times `steps` word-LM train steps under a policy; returns per-step
/// milliseconds and per-step loss bits (fresh executor per call, so runs
/// under different policies see identical work).
fn word_lm_steps(policy: MatmulPolicy, steps: usize) -> (Vec<f64>, Vec<u32>) {
    set_matmul_policy(policy);
    let hyper = WordLmHyper {
        vocab: 500,
        embed: 128,
        hidden: 256,
        layers: 1,
        seq_len: 16,
        backend: LstmBackend::CuDnn,
    };
    let lm = WordLm::build(hyper);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
    lm.bind_params(&mut exec, 3).expect("bind");
    let corpus = LmCorpus::synthetic(Vocab::new(500), 6000, 0.9, 5);
    let batches: Vec<_> = BpttBatches::new(corpus.tokens(), 16, lm.hyper.seq_len)
        .take(steps)
        .collect();
    let mut sgd = Sgd::new(0.5).with_clip_norm(5.0);
    let mut step_ms = Vec::new();
    let mut loss_bits = Vec::new();
    for batch in &batches {
        let start = Instant::now();
        let stats = exec
            .train_step(&lm.bindings(batch), lm.loss, ExecOptions::default(), None)
            .expect("train step");
        sgd.step(&mut exec);
        step_ms.push(start.elapsed().as_secs_f64() * 1e3);
        loss_bits.push(stats.loss.expect("loss").to_bits());
    }
    (step_ms, loss_bits)
}

/// Same as [`word_lm_steps`] for the NMT model (encoder + attention
/// decoder — the shape mix that stresses both GEMM and softmax paths).
fn nmt_steps(policy: MatmulPolicy, steps: usize) -> (Vec<f64>, Vec<u32>) {
    set_matmul_policy(policy);
    let corpus = ParallelCorpus::synthetic(Vocab::new(120), Vocab::new(110), 400, 6..=10, 5);
    let mut hyper = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
    hyper.hidden = 256;
    hyper.embed = 128;
    hyper.src_len = 10;
    hyper.tgt_len = 11;
    let model = NmtModel::build(hyper);
    let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
    model.bind_params(&mut exec, 2).expect("bind");
    let batches: Vec<_> = NmtBatch::bucketed(corpus.pairs(), 16)
        .into_iter()
        .take(steps)
        .collect();
    let mut sgd = Sgd::new(1.0).with_clip_norm(5.0);
    let mut step_ms = Vec::new();
    let mut loss_bits = Vec::new();
    for batch in &batches {
        let start = Instant::now();
        let stats = exec
            .train_step(
                &model.bindings(batch),
                model.loss,
                ExecOptions::default(),
                None,
            )
            .expect("train step");
        sgd.step(&mut exec);
        step_ms.push(start.elapsed().as_secs_f64() * 1e3);
        loss_bits.push(stats.loss.expect("loss").to_bits());
    }
    (step_ms, loss_bits)
}

/// Outcome of one plan-vs-legacy timing run.
struct PlanBench {
    legacy_ms: Vec<f64>,
    planned_ms: Vec<f64>,
    speedup: f64,
}

/// Times bare `train_step` calls (no optimizer, bindings prebuilt) on one
/// model, legacy vs plan-driven. The configurations are deliberately
/// *scheduler-bound* — the unfused per-step LSTM backend with small GEMMs
/// — because the plan removes per-node interpreter overhead (table
/// rebuilds, shape re-inference, kernel-launch construction, backward
/// tensor clones), not GEMM flops; on GEMM-bound shapes both paths are
/// equally compute-limited. Losses must stay bit-identical.
fn plan_bench(mut run_step: impl FnMut() -> (f64, u32), steps: usize) -> (Vec<f64>, Vec<u32>) {
    run_step(); // warm-up: pools, lazy kernel state
    let mut ms = Vec::with_capacity(steps);
    let mut bits = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (t, b) = run_step();
        ms.push(t);
        bits.push(b);
    }
    (ms, bits)
}

/// Plan-vs-legacy timing on the scheduler-bound word-LM (unfused
/// per-step LSTM, paper topology at reduced width).
fn plan_bench_word_lm(steps: usize) -> PlanBench {
    set_matmul_policy(MatmulPolicy::Auto);
    let hyper = WordLmHyper {
        vocab: 60,
        embed: 16,
        hidden: 16,
        layers: 2,
        seq_len: 64,
        backend: LstmBackend::Default,
    };
    let lm = WordLm::build(hyper);
    let corpus = LmCorpus::synthetic(Vocab::new(60), 2000, 0.9, 5);
    let batch = BpttBatches::new(corpus.tokens(), 4, lm.hyper.seq_len)
        .next()
        .expect("batch");
    let bindings = lm.bindings(&batch);

    let make = |planned: bool| {
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 3).expect("bind");
        if planned {
            lm.install_exec_plan(&mut exec, 4).expect("plan installs");
        }
        exec
    };
    let mut legacy_exec = make(false);
    let mut planned_exec = make(true);
    let step = |exec: &mut Executor| -> (f64, u32) {
        let start = Instant::now();
        let stats = exec
            .train_step(&bindings, lm.loss, ExecOptions::default(), None)
            .expect("train step");
        (
            start.elapsed().as_secs_f64() * 1e3,
            stats.loss.expect("loss").to_bits(),
        )
    };
    let (legacy_ms, legacy_bits) = plan_bench(|| step(&mut legacy_exec), steps);
    let (planned_ms, planned_bits) = plan_bench(|| step(&mut planned_exec), steps);
    assert_eq!(
        legacy_bits, planned_bits,
        "plan-driven word_lm losses diverged from legacy — numerics bug"
    );
    PlanBench {
        speedup: mean(&legacy_ms) / mean(&planned_ms),
        legacy_ms,
        planned_ms,
    }
}

/// Plan-vs-legacy timing on a small NMT bucket (fixed bucket lengths, so
/// the plan applies to every batch).
fn plan_bench_nmt(steps: usize) -> PlanBench {
    set_matmul_policy(MatmulPolicy::Auto);
    let corpus = ParallelCorpus::synthetic(Vocab::new(100), Vocab::new(90), 200, 5..=8, 5);
    let model = NmtModel::build(NmtHyper::tiny(
        corpus.src_vocab().size(),
        corpus.tgt_vocab().size(),
    ));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);

    let make = |planned: bool| {
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        model.bind_params(&mut exec, 2).expect("bind");
        if planned {
            model
                .install_exec_plan(&mut exec, 8)
                .expect("plan installs");
        }
        exec
    };
    let mut legacy_exec = make(false);
    let mut planned_exec = make(true);
    let step = |exec: &mut Executor| -> (f64, u32) {
        let start = Instant::now();
        let stats = exec
            .train_step(&bindings, model.loss, ExecOptions::default(), None)
            .expect("train step");
        (
            start.elapsed().as_secs_f64() * 1e3,
            stats.loss.expect("loss").to_bits(),
        )
    };
    let (legacy_ms, legacy_bits) = plan_bench(|| step(&mut legacy_exec), steps);
    let (planned_ms, planned_bits) = plan_bench(|| step(&mut planned_exec), steps);
    assert_eq!(
        legacy_bits, planned_bits,
        "plan-driven nmt losses diverged from legacy — numerics bug"
    );
    PlanBench {
        speedup: mean(&legacy_ms) / mean(&planned_ms),
        legacy_ms,
        planned_ms,
    }
}

/// Planned peaks of the Echo plan vs the stash-all baseline on the NMT
/// model — the compiler's static numbers, not runtime measurements.
fn planned_peaks_nmt() -> (u64, u64) {
    let model = NmtModel::build(NmtHyper::tiny(100, 90));
    let bindings = model.symbolic_bindings(8);
    let compile = |config: EchoConfig| {
        EchoCompiler::new(config)
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .expect("compile")
            .report
            .planned_peak_bytes
            .expect("exec plan built")
    };
    (
        compile(EchoConfig::default()),
        compile(EchoConfig::baseline()),
    )
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let plan = args.iter().any(|a| a == "--plan");
    let reps = if quick { 3 } else { 7 };
    let steps = if quick { 3 } else { 6 };

    let threads = echo_tensor::pool::global().num_threads();
    println!("kernel worker pool: {threads} thread(s)");

    // ---- GEMM shapes from the paper's LSTM configurations -------------
    // word-LM (Zhu et al. setting): B=64, H=512 → the fused gate product
    // is [B x H] · [H x 4H]. NMT: H=1024. The dW backward shape has the
    // reduction over the batch. Attention scoring is a skinny product.
    let shapes: Vec<(&'static str, usize, usize, usize)> = vec![
        ("wordlm_gates_64x512x2048", 64, 512, 2048),
        ("wordlm_dw_512x64x2048", 512, 64, 2048),
        ("nmt_gates_64x1024x4096", 64, 1024, 4096),
        ("attention_scores_64x1024x50", 64, 1024, 50),
    ];
    let mut gemm_rows = Vec::new();
    let mut gemm_json = Vec::new();
    let mut packed_speedups = Vec::new();
    for &(name, m, k, n) in &shapes {
        let r = bench_gemm_shape(name, m, k, n, reps);
        let speedup_packed = r.naive_us / r.packed_us;
        let speedup_blocked = r.naive_us / r.blocked_us;
        packed_speedups.push(speedup_packed);
        gemm_rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.naive_us),
            format!("{:.0}", r.blocked_us),
            format!("{:.0}", r.packed_us),
            format!("{speedup_packed:.2}x"),
        ]);
        gemm_json.push(json!({
            "name": r.name,
            "m": r.m, "k": r.k, "n": r.n,
            "naive_us": r.naive_us,
            "blocked_us": r.blocked_us,
            "packed_us": r.packed_us,
            "speedup_blocked_vs_naive": speedup_blocked,
            "speedup_packed_vs_naive": speedup_packed,
        }));
    }
    echo_repro::print_table(
        "GEMM backends (median us)",
        &["shape", "naive", "blocked", "packed", "packed-speedup"],
        &gemm_rows,
    );

    // ---- Bit-exactness re-checks --------------------------------------
    let bands_ok = check_band_bitexactness(64, 512, 2048);
    assert!(bands_ok, "packed bands {{1,2,4,8}} diverged — numerics bug");

    // ---- End-to-end train steps ---------------------------------------
    let (lm_naive_ms, lm_naive_loss) =
        word_lm_steps(MatmulPolicy::Fixed(MatmulBackend::Naive), steps);
    let (lm_auto_ms, lm_auto_loss) = word_lm_steps(MatmulPolicy::Auto, steps);
    assert_eq!(
        lm_naive_loss, lm_auto_loss,
        "word_lm losses diverged across matmul policies — numerics bug"
    );
    let (nmt_naive_ms, nmt_naive_loss) =
        nmt_steps(MatmulPolicy::Fixed(MatmulBackend::Naive), steps);
    let (nmt_auto_ms, nmt_auto_loss) = nmt_steps(MatmulPolicy::Auto, steps);
    assert_eq!(
        nmt_naive_loss, nmt_auto_loss,
        "nmt losses diverged across matmul policies — numerics bug"
    );
    set_matmul_policy(MatmulPolicy::Auto);

    let lm_speedup = mean(&lm_naive_ms) / mean(&lm_auto_ms);
    let nmt_speedup = mean(&nmt_naive_ms) / mean(&nmt_auto_ms);
    echo_repro::print_table(
        "end-to-end train step (mean ms)",
        &["model", "naive policy", "auto policy", "speedup"],
        &[
            vec![
                "word_lm".into(),
                format!("{:.1}", mean(&lm_naive_ms)),
                format!("{:.1}", mean(&lm_auto_ms)),
                format!("{lm_speedup:.2}x"),
            ],
            vec![
                "nmt".into(),
                format!("{:.1}", mean(&nmt_naive_ms)),
                format!("{:.1}", mean(&nmt_auto_ms)),
                format!("{nmt_speedup:.2}x"),
            ],
        ],
    );

    // ---- Plan-driven vs legacy hot loop (--plan) ----------------------
    let mut plan_json = serde_json::Value::Null;
    if plan {
        let plan_steps = if quick { 5 } else { 12 };
        let lm_plan = plan_bench_word_lm(plan_steps);
        let nmt_plan = plan_bench_nmt(plan_steps);
        let (echo_peak, stash_all_peak) = planned_peaks_nmt();
        echo_repro::print_table(
            "plan-driven vs legacy train step (mean ms)",
            &["model", "legacy", "planned", "speedup"],
            &[
                vec![
                    "word_lm (unfused)".into(),
                    format!("{:.2}", mean(&lm_plan.legacy_ms)),
                    format!("{:.2}", mean(&lm_plan.planned_ms)),
                    format!("{:.2}x", lm_plan.speedup),
                ],
                vec![
                    "nmt".into(),
                    format!("{:.2}", mean(&nmt_plan.legacy_ms)),
                    format!("{:.2}", mean(&nmt_plan.planned_ms)),
                    format!("{:.2}x", nmt_plan.speedup),
                ],
            ],
        );
        println!(
            "planned peaks (NMT): echo {:.2} MiB vs stash-all {:.2} MiB",
            echo_peak as f64 / (1 << 20) as f64,
            stash_all_peak as f64 / (1 << 20) as f64,
        );
        plan_json = json!({
            "word_lm": {
                "legacy_ms": lm_plan.legacy_ms,
                "planned_ms": lm_plan.planned_ms,
                "speedup": lm_plan.speedup,
            },
            "nmt": {
                "legacy_ms": nmt_plan.legacy_ms,
                "planned_ms": nmt_plan.planned_ms,
                "speedup": nmt_plan.speedup,
            },
            "planned_peak_bytes": {
                "nmt_echo": echo_peak,
                "nmt_stash_all": stash_all_peak,
            },
        });
        if gate {
            assert!(
                lm_plan.speedup >= 1.2,
                "plan gate: plan-driven word_lm step is only {:.2}x legacy (need >= 1.2x)",
                lm_plan.speedup
            );
            assert!(
                echo_peak < stash_all_peak,
                "plan gate: echo planned peak {echo_peak} not below stash-all {stash_all_peak}"
            );
            println!(
                "plan gate passed: {:.2}x >= 1.2x on word_lm, echo peak {echo_peak} < stash-all {stash_all_peak}",
                lm_plan.speedup
            );
        }
    }

    let autotune = echo_tensor::policy::autotune_outcome().map(|o| {
        json!({
            "chosen": o.chosen.name(),
            "blocked_ns": o.blocked_ns,
            "packed_ns": o.packed_ns,
            "shape": [o.shape.0, o.shape.1, o.shape.2],
            "measured": o.measured,
        })
    });

    let out = json!({
        "harness": "bench_kernels",
        "quick": quick,
        "pool_threads": threads,
        "autotune": autotune,
        "gemm": gemm_json,
        "bitexact": {
            "packed_bands_identical": bands_ok,
            "word_lm_loss_bits_identical_across_policies": true,
            "nmt_loss_bits_identical_across_policies": true,
        },
        "plan": plan_json,
        "train_steps": {
            "word_lm": {
                "naive_ms": lm_naive_ms,
                "auto_ms": lm_auto_ms,
                "speedup": lm_speedup,
                "loss_bits": lm_auto_loss,
            },
            "nmt": {
                "naive_ms": nmt_naive_ms,
                "auto_ms": nmt_auto_ms,
                "speedup": nmt_speedup,
                "loss_bits": nmt_auto_loss,
            },
        },
    });

    // BENCH_kernels.json lives at the repo root (not $ECHO_RESULTS_DIR):
    // it is the cross-PR perf baseline, versioned alongside the code.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let path = root.join("BENCH_kernels.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("json"))
        .expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    if gate {
        let speedup = packed_speedups[0];
        assert!(
            speedup >= 2.0,
            "perf gate: packed kernel is only {speedup:.2}x naive on {} (need >= 2x)",
            shapes[0].0
        );
        println!("perf gate passed: {speedup:.2}x >= 2x on {}", shapes[0].0);
    }
}
