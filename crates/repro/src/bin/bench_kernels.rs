//! Kernel and train-step benchmark harness — the perf trajectory anchor.
//!
//! Times the GEMM backends on LSTM-shaped products from the paper's
//! configurations (word-LM: B=64, H=512 → 4H gate blocks; NMT: H=1024)
//! plus end-to-end `word_lm`/`nmt` train steps under the naive-pinned and
//! autotuned matmul policies, and writes `BENCH_kernels.json` at the repo
//! root so every future PR can be compared against this baseline.
//!
//! Flags:
//!
//! * `--quick` — fewer reps / steps (the CI configuration);
//! * `--gate`  — exit non-zero unless the packed-parallel kernel is at
//!   least 2× the naive kernel on the large word-LM-shaped GEMM (a
//!   coarse anti-regression gate);
//! * `--plan`  — additionally time plan-driven vs legacy `train_step`
//!   on scheduler-bound word-LM and NMT configurations and record the
//!   Echo-vs-stash-all planned peaks; with `--gate`, fail unless the
//!   planned word-LM step is ≥1.2× legacy and the Echo planned peak is
//!   strictly below stash-all.
//! * `--search` — sweep the cost-model stash-set search vs the O-shape
//!   heuristic: static planned peaks on word-LM, NMT and a GRU chain,
//!   plus step timing on NMT with each plan installed; with `--gate`,
//!   fail unless the searched NMT peak is strictly below the heuristic's
//!   at ≤ 1.15× its step time.
//! * `--fusion` — compile the word-LM (`Default` backend) with the GIR
//!   pipeline's CSE + fusion passes on and off, record forward/total
//!   launch-table lengths and the device-sim step-time delta (per-launch
//!   framework overhead makes the launch cut visible as wall time), and
//!   write the per-pass traces to `REPORT_passes.json`; with `--gate`,
//!   fail unless the fused forward launch table is strictly shorter than
//!   the unfused one. Fused and unfused loss bits must match
//!   unconditionally.
//! * `--pipeline` — run the pipelined trainer on an 8-layer word-LM
//!   stack with one simulated device per stage, record per-stage busy
//!   times and the analytic fill–drain projection at P ∈ {2, 4}, and
//!   check the losses stay bit-identical to serial; with `--gate`, fail
//!   unless the projected P=2 step (bubble and cut transfers included)
//!   beats the serial step.
//! * `--threads` — re-invoke this binary as a subprocess under
//!   `ECHO_NUM_THREADS` ∈ {1, 2, 4} (the worker pool is sized once per
//!   process, so each thread count needs a fresh process) and record the
//!   planned word-LM step time at each count; with `--gate`, fail unless
//!   the 4-thread step is strictly faster than 1-thread (skipped on
//!   hosts with fewer than 4 cores). Loss bits must match across thread
//!   counts unconditionally.
//!
//! Every run also times each available SIMD micro-kernel variant against
//! the scalar micro-kernel on the packed path; with `--gate`, the best
//! SIMD variant must be ≥ 1.5× scalar (skipped on hosts with neither
//! AVX2 nor NEON).
//!
//! Every run also re-checks the bit-exactness contract (packed bands
//! {1, 2, 4, 8} and end-to-end losses across policies) — a benchmark
//! that silently changed numerics would be worse than a slow one.

use echo::{EchoCompiler, EchoConfig, PassTrace, SearchReport, StashSelection};
use echo_data::{BpttBatches, LmCorpus, NmtBatch, ParallelCorpus, Vocab};
use echo_device::{CommModel, DeviceSim, DeviceSpec, PipelineModel, PipelineProjection};
use echo_graph::{partition_stages, ExecOptions, Executor, Gir, Graph, NodeId, StashPlan};
use echo_memory::{DeviceMemory, LayerKind};
use echo_models::{
    NmtHyper, NmtModel, PipelineOptions, PipelineTrainer, Sgd, Speedometer, WordLm, WordLmHyper,
};
use echo_ops::MeanAll;
use echo_rnn::{GruStep, LstmBackend};
use echo_tensor::init::{seeded_rng, uniform};
use echo_tensor::Tensor;
use echo_tensor::{
    available_micro_kernels, gemm, gemm_packed_parallel, gemm_packed_parallel_with,
    set_matmul_policy, MatViewMut, MatmulBackend, MatmulPolicy, MatrixLayout, MicroKernel, Shape,
};
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in microseconds (one unmeasured
/// warm-up run first).
fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

struct GemmShapeResult {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive_us: f64,
    blocked_us: f64,
    packed_us: f64,
}

fn bench_gemm_shape(
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
) -> GemmShapeResult {
    let mut rng = seeded_rng(9);
    let a = uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut c = vec![0.0f32; m * n];
    let ways = echo_tensor::pool::global().num_threads();

    let naive_us = median_us(reps, || {
        gemm::gemm(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
        )
        .expect("gemm");
    });
    let blocked_us = median_us(reps, || {
        gemm::gemm_blocked(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
        )
        .expect("gemm");
    });
    let packed_us = median_us(reps, || {
        gemm_packed_parallel(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
            ways,
        )
        .expect("gemm");
    });
    GemmShapeResult {
        name,
        m,
        k,
        n,
        naive_us,
        blocked_us,
        packed_us,
    }
}

/// Packed bands {1, 2, 4, 8} must produce the same bits on the big shape.
fn check_band_bitexactness(m: usize, k: usize, n: usize) -> bool {
    let mut rng = seeded_rng(17);
    let a = uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut reference = vec![0.0f32; m * n];
    gemm::gemm(
        1.0,
        a.as_mat(),
        b.as_mat(),
        0.0,
        &mut MatViewMut::new(&mut reference, m, n, MatrixLayout::RowMajor),
    )
    .expect("gemm");
    for ways in [1usize, 2, 4, 8] {
        let mut c = vec![0.0f32; m * n];
        gemm_packed_parallel(
            1.0,
            a.as_mat(),
            b.as_mat(),
            0.0,
            &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
            ways,
        )
        .expect("gemm");
        if c.iter()
            .zip(&reference)
            .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return false;
        }
    }
    true
}

/// Times every available micro-kernel variant (scalar always; AVX2/NEON
/// where the host supports them) on the packed path at the default
/// tiling, single-banded so the comparison isolates the inner kernel.
fn bench_micro_kernels(m: usize, k: usize, n: usize, reps: usize) -> Vec<(MicroKernel, f64)> {
    let mut rng = seeded_rng(11);
    let a = uniform(Shape::d2(m, k), 1.0, &mut rng);
    let b = uniform(Shape::d2(k, n), 1.0, &mut rng);
    let mut c = vec![0.0f32; m * n];
    available_micro_kernels()
        .into_iter()
        .map(|kernel| {
            let us = median_us(reps, || {
                gemm_packed_parallel_with(
                    1.0,
                    a.as_mat(),
                    b.as_mat(),
                    0.0,
                    &mut MatViewMut::new(&mut c, m, n, MatrixLayout::RowMajor),
                    1,
                    kernel,
                    256,
                    128,
                )
                .expect("gemm");
            });
            (kernel, us)
        })
        .collect()
}

/// One row of the `--threads` sweep: thread count, mean planned word-LM
/// step time in nanoseconds, and the per-step loss bits (which must be
/// identical at every thread count).
struct ThreadsRow {
    threads: usize,
    ns_per_step: u64,
    loss_bits: Vec<u32>,
}

/// Hidden `--threads-worker` mode: runs plan-driven word-LM train steps
/// under whatever `ECHO_NUM_THREADS` sized the global pool to, and
/// prints one parseable result line. The parent process (`--threads`)
/// re-invokes the binary once per thread count because the worker pool —
/// and therefore the wavefront scheduler's engagement — is fixed at
/// first use for the life of the process.
fn threads_worker(quick: bool) {
    set_matmul_policy(MatmulPolicy::Auto);
    let steps = if quick { 3 } else { 8 };
    let hyper = WordLmHyper {
        vocab: 500,
        embed: 128,
        hidden: 256,
        layers: 1,
        seq_len: 16,
        backend: LstmBackend::CuDnn,
    };
    let lm = WordLm::build(hyper);
    let corpus = LmCorpus::synthetic(Vocab::new(500), 4000, 0.9, 5);
    let batch = BpttBatches::new(corpus.tokens(), 16, lm.hyper.seq_len)
        .next()
        .expect("batch");
    let bindings = lm.bindings(&batch);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
    lm.bind_params(&mut exec, 3).expect("bind");
    lm.install_exec_plan(&mut exec, 16).expect("plan installs");
    let mut step = || -> (f64, u32) {
        let start = Instant::now();
        let stats = exec
            .train_step(&bindings, lm.loss, ExecOptions::default(), None)
            .expect("train step");
        (
            start.elapsed().as_secs_f64() * 1e9,
            stats.loss.expect("loss").to_bits(),
        )
    };
    step(); // warm-up: pools, autotune, plan caches
    let mut ns = Vec::with_capacity(steps);
    let mut bits = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (t, b) = step();
        ns.push(t);
        bits.push(b);
    }
    let joined: Vec<String> = bits.iter().map(|b| b.to_string()).collect();
    println!(
        "threads_worker ns_per_step={} loss_bits={}",
        mean(&ns) as u64,
        joined.join(",")
    );
}

/// Re-invokes this binary under `ECHO_NUM_THREADS` ∈ {1, 2, 4} and
/// collects each worker's result line.
fn threads_sweep(quick: bool) -> Vec<ThreadsRow> {
    let exe = std::env::current_exe().expect("current exe");
    [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("--threads-worker")
                .env("ECHO_NUM_THREADS", threads.to_string());
            if quick {
                cmd.arg("--quick");
            }
            let out = cmd.output().expect("threads worker spawns");
            assert!(
                out.status.success(),
                "threads worker (ECHO_NUM_THREADS={threads}) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            let line = stdout
                .lines()
                .find_map(|l| l.strip_prefix("threads_worker "))
                .expect("worker result line");
            let field = |key: &str| -> &str {
                line.split_whitespace()
                    .find_map(|kv| kv.strip_prefix(key))
                    .expect("worker field")
            };
            ThreadsRow {
                threads,
                ns_per_step: field("ns_per_step=").parse().expect("ns_per_step"),
                loss_bits: field("loss_bits=")
                    .split(',')
                    .map(|b| b.parse().expect("loss bits"))
                    .collect(),
            }
        })
        .collect()
}

fn mem() -> DeviceMemory {
    DeviceMemory::with_overhead_model(4 << 30, 0, 0.0)
}

/// Times `steps` word-LM train steps under a policy; returns per-step
/// milliseconds and per-step loss bits (fresh executor per call, so runs
/// under different policies see identical work).
fn word_lm_steps(policy: MatmulPolicy, steps: usize) -> (Vec<f64>, Vec<u32>) {
    set_matmul_policy(policy);
    let hyper = WordLmHyper {
        vocab: 500,
        embed: 128,
        hidden: 256,
        layers: 1,
        seq_len: 16,
        backend: LstmBackend::CuDnn,
    };
    let lm = WordLm::build(hyper);
    let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
    lm.bind_params(&mut exec, 3).expect("bind");
    let corpus = LmCorpus::synthetic(Vocab::new(500), 6000, 0.9, 5);
    let batches: Vec<_> = BpttBatches::new(corpus.tokens(), 16, lm.hyper.seq_len)
        .take(steps)
        .collect();
    let mut sgd = Sgd::new(0.5).with_clip_norm(5.0);
    let mut step_ms = Vec::new();
    let mut loss_bits = Vec::new();
    for batch in &batches {
        let start = Instant::now();
        let stats = exec
            .train_step(&lm.bindings(batch), lm.loss, ExecOptions::default(), None)
            .expect("train step");
        sgd.step(&mut exec);
        step_ms.push(start.elapsed().as_secs_f64() * 1e3);
        loss_bits.push(stats.loss.expect("loss").to_bits());
    }
    (step_ms, loss_bits)
}

/// Same as [`word_lm_steps`] for the NMT model (encoder + attention
/// decoder — the shape mix that stresses both GEMM and softmax paths).
fn nmt_steps(policy: MatmulPolicy, steps: usize) -> (Vec<f64>, Vec<u32>) {
    set_matmul_policy(policy);
    let corpus = ParallelCorpus::synthetic(Vocab::new(120), Vocab::new(110), 400, 6..=10, 5);
    let mut hyper = NmtHyper::tiny(corpus.src_vocab().size(), corpus.tgt_vocab().size());
    hyper.hidden = 256;
    hyper.embed = 128;
    hyper.src_len = 10;
    hyper.tgt_len = 11;
    let model = NmtModel::build(hyper);
    let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
    model.bind_params(&mut exec, 2).expect("bind");
    let batches: Vec<_> = NmtBatch::bucketed(corpus.pairs(), 16)
        .into_iter()
        .take(steps)
        .collect();
    let mut sgd = Sgd::new(1.0).with_clip_norm(5.0);
    let mut step_ms = Vec::new();
    let mut loss_bits = Vec::new();
    for batch in &batches {
        let start = Instant::now();
        let stats = exec
            .train_step(
                &model.bindings(batch),
                model.loss,
                ExecOptions::default(),
                None,
            )
            .expect("train step");
        sgd.step(&mut exec);
        step_ms.push(start.elapsed().as_secs_f64() * 1e3);
        loss_bits.push(stats.loss.expect("loss").to_bits());
    }
    (step_ms, loss_bits)
}

/// Outcome of one plan-vs-legacy timing run.
struct PlanBench {
    legacy_ms: Vec<f64>,
    planned_ms: Vec<f64>,
    speedup: f64,
}

/// Times bare `train_step` calls (no optimizer, bindings prebuilt) on one
/// model, legacy vs plan-driven. The configurations are deliberately
/// *scheduler-bound* — the unfused per-step LSTM backend with small GEMMs
/// — because the plan removes per-node interpreter overhead (table
/// rebuilds, shape re-inference, kernel-launch construction, backward
/// tensor clones), not GEMM flops; on GEMM-bound shapes both paths are
/// equally compute-limited. Losses must stay bit-identical.
fn plan_bench(mut run_step: impl FnMut() -> (f64, u32), steps: usize) -> (Vec<f64>, Vec<u32>) {
    run_step(); // warm-up: pools, lazy kernel state
    let mut ms = Vec::with_capacity(steps);
    let mut bits = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (t, b) = run_step();
        ms.push(t);
        bits.push(b);
    }
    (ms, bits)
}

/// Plan-vs-legacy timing on the scheduler-bound word-LM (unfused
/// per-step LSTM, paper topology at reduced width).
fn plan_bench_word_lm(steps: usize) -> PlanBench {
    set_matmul_policy(MatmulPolicy::Auto);
    let hyper = WordLmHyper {
        vocab: 60,
        embed: 16,
        hidden: 16,
        layers: 2,
        seq_len: 64,
        backend: LstmBackend::Default,
    };
    let lm = WordLm::build(hyper);
    let corpus = LmCorpus::synthetic(Vocab::new(60), 2000, 0.9, 5);
    let batch = BpttBatches::new(corpus.tokens(), 4, lm.hyper.seq_len)
        .next()
        .expect("batch");
    let bindings = lm.bindings(&batch);

    let make = |planned: bool| {
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 3).expect("bind");
        if planned {
            lm.install_exec_plan(&mut exec, 4).expect("plan installs");
        }
        exec
    };
    let mut legacy_exec = make(false);
    let mut planned_exec = make(true);
    let step = |exec: &mut Executor| -> (f64, u32) {
        let start = Instant::now();
        let stats = exec
            .train_step(&bindings, lm.loss, ExecOptions::default(), None)
            .expect("train step");
        (
            start.elapsed().as_secs_f64() * 1e3,
            stats.loss.expect("loss").to_bits(),
        )
    };
    let (legacy_ms, legacy_bits) = plan_bench(|| step(&mut legacy_exec), steps);
    let (planned_ms, planned_bits) = plan_bench(|| step(&mut planned_exec), steps);
    assert_eq!(
        legacy_bits, planned_bits,
        "plan-driven word_lm losses diverged from legacy — numerics bug"
    );
    PlanBench {
        speedup: mean(&legacy_ms) / mean(&planned_ms),
        legacy_ms,
        planned_ms,
    }
}

/// Plan-vs-legacy timing on a small NMT bucket (fixed bucket lengths, so
/// the plan applies to every batch).
fn plan_bench_nmt(steps: usize) -> PlanBench {
    set_matmul_policy(MatmulPolicy::Auto);
    let corpus = ParallelCorpus::synthetic(Vocab::new(100), Vocab::new(90), 200, 5..=8, 5);
    let model = NmtModel::build(NmtHyper::tiny(
        corpus.src_vocab().size(),
        corpus.tgt_vocab().size(),
    ));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);

    let make = |planned: bool| {
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        model.bind_params(&mut exec, 2).expect("bind");
        if planned {
            model
                .install_exec_plan(&mut exec, 8)
                .expect("plan installs");
        }
        exec
    };
    let mut legacy_exec = make(false);
    let mut planned_exec = make(true);
    let step = |exec: &mut Executor| -> (f64, u32) {
        let start = Instant::now();
        let stats = exec
            .train_step(&bindings, model.loss, ExecOptions::default(), None)
            .expect("train step");
        (
            start.elapsed().as_secs_f64() * 1e3,
            stats.loss.expect("loss").to_bits(),
        )
    };
    let (legacy_ms, legacy_bits) = plan_bench(|| step(&mut legacy_exec), steps);
    let (planned_ms, planned_bits) = plan_bench(|| step(&mut planned_exec), steps);
    assert_eq!(
        legacy_bits, planned_bits,
        "plan-driven nmt losses diverged from legacy — numerics bug"
    );
    PlanBench {
        speedup: mean(&legacy_ms) / mean(&planned_ms),
        legacy_ms,
        planned_ms,
    }
}

/// Planned peaks of the Echo plan vs the stash-all baseline on the NMT
/// model — the compiler's static numbers, not runtime measurements.
fn planned_peaks_nmt() -> (u64, u64) {
    let model = NmtModel::build(NmtHyper::tiny(100, 90));
    let bindings = model.symbolic_bindings(8);
    let compile = |config: EchoConfig| {
        EchoCompiler::new(config)
            .compile(
                &model.graph,
                &bindings,
                &model.param_shapes(),
                &[model.loss, model.logits],
            )
            .expect("compile")
            .report
            .planned_peak_bytes
            .expect("exec plan built")
    };
    (
        compile(EchoConfig::default()),
        compile(EchoConfig::baseline()),
    )
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// One model of the search sweep: heuristic-vs-searched planned peaks.
struct SearchRow {
    name: &'static str,
    report: SearchReport,
}

/// Compiles one model under `StashSelection::Search` and returns the
/// search report (which carries the stash-all and heuristic reference
/// peaks alongside the winner's).
fn search_peaks(
    name: &'static str,
    graph: &Arc<Graph>,
    bindings: &HashMap<NodeId, Tensor>,
    params: &HashMap<NodeId, echo_tensor::Shape>,
    protected: &[NodeId],
) -> SearchRow {
    let compiled = EchoCompiler::new(EchoConfig {
        selection: StashSelection::Search { flop_budget: 1.0 },
        ..EchoConfig::default()
    })
    .compile(graph, bindings, params, protected)
    .expect("search compile");
    SearchRow {
        name,
        report: compiled.report.search.expect("search report"),
    }
}

/// A GRU chain (fused recurrent steps, no GEMM-free interior): the
/// degenerate end of the sweep, where the search must fall back to the
/// heuristic rather than inventing recomputation.
fn gru_chain_case() -> (
    Arc<Graph>,
    HashMap<NodeId, Tensor>,
    HashMap<NodeId, echo_tensor::Shape>,
    NodeId,
) {
    let (b, h, steps) = (8usize, 32usize, 8usize);
    let mut g = Graph::new();
    let h0 = g.input("h0", LayerKind::Rnn);
    let wx = g.param("wx", LayerKind::Rnn);
    let wh = g.param("wh", LayerKind::Rnn);
    let bias = g.param("bias", LayerKind::Rnn);
    let mut bindings = HashMap::new();
    bindings.insert(h0, Tensor::zeros(echo_tensor::Shape::d2(b, h)));
    let mut state = h0;
    for t in 0..steps {
        let x = g.input(format!("x{t}"), LayerKind::Rnn);
        bindings.insert(x, Tensor::zeros(echo_tensor::Shape::d2(b, h)));
        state = g.apply(
            format!("gru{t}"),
            Arc::new(GruStep::new(h)),
            &[x, state, wx, wh, bias],
            LayerKind::Rnn,
        );
    }
    let loss = g.apply("loss", Arc::new(MeanAll), &[state], LayerKind::Output);
    let mut params = HashMap::new();
    params.insert(wx, echo_tensor::Shape::d2(3 * h, h));
    params.insert(wh, echo_tensor::Shape::d2(3 * h, h));
    params.insert(bias, echo_tensor::Shape::d1(6 * h));
    (Arc::new(g), bindings, params, loss)
}

/// Outcome of the heuristic-vs-searched NMT step timing.
struct SearchStepBench {
    heuristic_ms: Vec<f64>,
    searched_ms: Vec<f64>,
    heuristic_replays: f64,
    searched_replays: f64,
    ratio: f64,
}

/// Times full train steps on the NMT bucket with the heuristic plan vs
/// the searched plan attached (both plan-driven). Losses must stay
/// bit-identical — recomputation choices may never change numerics.
fn search_bench_nmt(steps: usize) -> SearchStepBench {
    set_matmul_policy(MatmulPolicy::Auto);
    let corpus = ParallelCorpus::synthetic(Vocab::new(100), Vocab::new(90), 200, 5..=8, 5);
    let model = NmtModel::build(NmtHyper::tiny(
        corpus.src_vocab().size(),
        corpus.tgt_vocab().size(),
    ));
    let batch = NmtBatch::bucketed(corpus.pairs(), 8).remove(0);
    let bindings = model.bindings(&batch);

    let make = |selection: StashSelection| {
        let mut exec = Executor::new(Arc::clone(&model.graph), StashPlan::stash_all(), mem());
        model.bind_params(&mut exec, 2).expect("bind");
        EchoCompiler::new(EchoConfig {
            selection,
            ..EchoConfig::default()
        })
        .attach(
            &mut exec,
            &bindings,
            &model.param_shapes(),
            &[model.loss, model.logits],
        )
        .expect("attach");
        exec
    };
    let mut heuristic_exec = make(StashSelection::Heuristic);
    let mut searched_exec = make(StashSelection::Search { flop_budget: 1.0 });
    let batch_size = batch.batch;
    let run = |exec: &mut Executor| -> (Vec<f64>, Vec<u32>, Speedometer) {
        let mut meter = Speedometer::new();
        let step = |exec: &mut Executor, meter: &mut Speedometer| -> (f64, u32) {
            let start = Instant::now();
            let stats = exec
                .train_step(&bindings, model.loss, ExecOptions::default(), None)
                .expect("train step");
            meter.record_with_replays(batch_size, stats.sim_ns.unwrap_or(0), stats.replays);
            (
                start.elapsed().as_secs_f64() * 1e3,
                stats.loss.expect("loss").to_bits(),
            )
        };
        let (ms, bits) = plan_bench(|| step(exec, &mut meter), steps);
        (ms, bits, meter)
    };
    let (heuristic_ms, heuristic_bits, heuristic_meter) = run(&mut heuristic_exec);
    let (searched_ms, searched_bits, searched_meter) = run(&mut searched_exec);
    assert_eq!(
        heuristic_bits, searched_bits,
        "searched-plan nmt losses diverged from heuristic — numerics bug"
    );
    SearchStepBench {
        ratio: mean(&searched_ms) / mean(&heuristic_ms),
        heuristic_replays: heuristic_meter.replays_per_iteration(),
        searched_replays: searched_meter.replays_per_iteration(),
        heuristic_ms,
        searched_ms,
    }
}

/// Fused-vs-unfused word-LM on the `Default` backend — the many-op cell
/// graph the GIR fusion passes rewrite. Captures launch-table lengths,
/// simulated step times (with per-launch framework overhead, so the
/// launch-count cut shows up as wall time), and the fused pipeline's
/// per-pass traces.
struct FusionBench {
    unfused_fwd_launches: usize,
    fused_fwd_launches: usize,
    unfused_launches: usize,
    fused_launches: usize,
    unfused_sim_ns: u64,
    fused_sim_ns: u64,
    passes: Vec<PassTrace>,
}

fn fusion_bench() -> FusionBench {
    let hyper = WordLmHyper {
        vocab: 500,
        embed: 128,
        hidden: 256,
        layers: 1,
        seq_len: 16,
        backend: LstmBackend::Default,
    };
    let lm = WordLm::build(hyper);
    let corpus = LmCorpus::synthetic(Vocab::new(500), 6000, 0.9, 5);
    let batch = BpttBatches::new(corpus.tokens(), 16, lm.hyper.seq_len)
        .next()
        .expect("batch");
    let bindings = lm.bindings(&batch);

    let run = |fusion: bool| {
        let compiled = EchoCompiler::new(EchoConfig {
            fusion,
            cse: fusion,
            ..EchoConfig::default()
        })
        .compile(&lm.graph, &bindings, &lm.param_shapes(), &[lm.loss])
        .expect("compile");
        let mut exec = Executor::new(Arc::clone(&lm.graph), StashPlan::stash_all(), mem());
        lm.bind_params(&mut exec, 3).expect("bind");
        if let Some(graph) = &compiled.graph {
            exec.set_graph(Arc::clone(graph)).expect("set graph");
        }
        exec.set_plan(compiled.plan.clone());
        let exec_plan = Arc::clone(compiled.exec_plan.as_ref().expect("lowered plan"));
        exec.set_exec_plan(Arc::clone(&exec_plan)).expect("install");
        let mut sim = DeviceSim::new(DeviceSpec::titan_xp());
        sim.set_op_overhead_ns(echo_repro::FRAMEWORK_OP_OVERHEAD_NS);
        let stats = exec
            .train_step(&bindings, lm.loss, ExecOptions::default(), Some(&mut sim))
            .expect("train step");
        (
            exec_plan.forward_launch_count(),
            exec_plan.launch_count(),
            sim.elapsed_ns(),
            stats.loss.expect("loss").to_bits(),
            compiled.report.passes,
        )
    };
    let (unfused_fwd, unfused_all, unfused_ns, unfused_bits, _) = run(false);
    let (fused_fwd, fused_all, fused_ns, fused_bits, passes) = run(true);
    assert_eq!(
        fused_bits, unfused_bits,
        "fused word_lm loss diverged from unfused — fusion numerics bug"
    );
    FusionBench {
        unfused_fwd_launches: unfused_fwd,
        fused_fwd_launches: fused_fwd,
        unfused_launches: unfused_all,
        fused_launches: fused_all,
        unfused_sim_ns: unfused_ns,
        fused_sim_ns: fused_ns,
        passes,
    }
}

/// One stage count of the `--pipeline` sweep: per-stage simulated busy
/// times, the busiest-stage critical path, and the fill–drain projection
/// with cut transfers over PCIe.
struct PipelinePoint {
    stages: usize,
    busy_ns: Vec<u64>,
    critical_ns: u64,
    projection: PipelineProjection,
}

struct PipelineBench {
    serial_ns: u64,
    loss_bits: u32,
    points: Vec<PipelinePoint>,
}

fn pipeline_bench(quick: bool) -> PipelineBench {
    const LANES: usize = 16;
    const MICRO: usize = 4;
    let steps = if quick { 2 } else { 4 };
    // The gate config: a stack deep enough that a 2-way layer cut leaves
    // both stages with real work relative to the cut traffic.
    let lm = WordLm::build(WordLmHyper {
        vocab: 40,
        embed: 12,
        hidden: 16,
        layers: 8,
        seq_len: 6,
        backend: LstmBackend::Default,
    });
    let plan = EchoCompiler::new(EchoConfig::default())
        .compile(
            &lm.graph,
            &lm.symbolic_bindings(LANES / MICRO),
            &lm.param_shapes(),
            &[lm.loss, lm.logits],
        )
        .expect("compile")
        .plan;
    let corpus = LmCorpus::synthetic(Vocab::new(40), 8_000, 0.9, 5);
    let batches: Vec<_> = BpttBatches::new(corpus.tokens(), LANES, lm.hyper.seq_len)
        .take(steps)
        .collect();
    let binding_shapes: HashMap<NodeId, Shape> = lm
        .symbolic_bindings(LANES / MICRO)
        .iter()
        .map(|(&id, t)| (id, t.shape().clone()))
        .collect();
    let gir = Gir::from_graph(
        Arc::clone(&lm.graph),
        &binding_shapes,
        &lm.param_shapes(),
        &[lm.loss],
    )
    .expect("gir");

    let measure = |stages: usize| -> (Vec<u64>, u32) {
        let partition = partition_stages(&gir, stages).expect("partition");
        let mut template = Executor::new(Arc::clone(&lm.graph), plan.clone(), mem());
        lm.bind_params(&mut template, 23).expect("bind");
        let mut trainer = PipelineTrainer::for_word_lm(
            &lm,
            template,
            &partition,
            &plan,
            LANES,
            &PipelineOptions::new(1, MICRO).with_sim(DeviceSpec::titan_xp()),
            Box::new(Sgd::new(0.5).with_clip_norm(5.0)),
        )
        .expect("trainer");
        let mut busy = vec![0u64; stages];
        let mut loss_bits = 0u32;
        for batch in &batches {
            let report = trainer.train_step(batch).expect("step");
            loss_bits = report.loss.to_bits();
            for stat in &report.stages {
                busy[stat.stage] += stat.sim_ns;
            }
        }
        for b in &mut busy {
            *b /= steps as u64;
        }
        (busy, loss_bits)
    };

    let (serial_busy, serial_bits) = measure(1);
    let serial_ns = serial_busy[0];
    let mut points = Vec::new();
    for stages in [2usize, 4] {
        let (busy, bits) = measure(stages);
        assert_eq!(
            bits, serial_bits,
            "P={stages} word-LM loss diverged from serial — pipeline numerics bug"
        );
        // Split each stage's busy time into per-micro forward/backward
        // under the bwd = 2·fwd convention: every stage re-forwards in
        // the drain, every stage but the last also forwards in the fill.
        let (stage_fwd_ns, stage_bwd_ns): (Vec<u64>, Vec<u64>) = busy
            .iter()
            .enumerate()
            .map(|(s, &b)| {
                let fwd = if s + 1 == stages {
                    b / (3 * MICRO as u64)
                } else {
                    b / (4 * MICRO as u64)
                };
                (fwd, 2 * fwd)
            })
            .unzip();
        let partition = partition_stages(&gir, stages).expect("partition");
        let projection = PipelineModel {
            stage_fwd_ns,
            stage_bwd_ns,
            cut_bytes: partition.cut_bytes(),
            comm: CommModel::pcie_gen3(),
        }
        .project(MICRO);
        points.push(PipelinePoint {
            stages,
            critical_ns: *busy.iter().max().expect("stages"),
            busy_ns: busy,
            projection,
        });
    }
    PipelineBench {
        serial_ns,
        loss_bits: serial_bits,
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let plan = args.iter().any(|a| a == "--plan");
    let search = args.iter().any(|a| a == "--search");
    let fusion = args.iter().any(|a| a == "--fusion");
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let threads_mode = args.iter().any(|a| a == "--threads");
    if args.iter().any(|a| a == "--threads-worker") {
        threads_worker(quick);
        return;
    }
    let reps = if quick { 3 } else { 7 };
    let steps = if quick { 3 } else { 6 };

    let threads = echo_tensor::pool::global().num_threads();
    println!("kernel worker pool: {threads} thread(s)");

    // ---- GEMM shapes from the paper's LSTM configurations -------------
    // word-LM (Zhu et al. setting): B=64, H=512 → the fused gate product
    // is [B x H] · [H x 4H]. NMT: H=1024. The dW backward shape has the
    // reduction over the batch. Attention scoring is a skinny product.
    let shapes: Vec<(&'static str, usize, usize, usize)> = vec![
        ("wordlm_gates_64x512x2048", 64, 512, 2048),
        ("wordlm_dw_512x64x2048", 512, 64, 2048),
        ("nmt_gates_64x1024x4096", 64, 1024, 4096),
        ("attention_scores_64x1024x50", 64, 1024, 50),
    ];
    let mut gemm_rows = Vec::new();
    let mut gemm_json = Vec::new();
    let mut packed_speedups = Vec::new();
    for &(name, m, k, n) in &shapes {
        let r = bench_gemm_shape(name, m, k, n, reps);
        let speedup_packed = r.naive_us / r.packed_us;
        let speedup_blocked = r.naive_us / r.blocked_us;
        packed_speedups.push(speedup_packed);
        gemm_rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.naive_us),
            format!("{:.0}", r.blocked_us),
            format!("{:.0}", r.packed_us),
            format!("{speedup_packed:.2}x"),
        ]);
        gemm_json.push(json!({
            "name": r.name,
            "m": r.m, "k": r.k, "n": r.n,
            "naive_us": r.naive_us,
            "blocked_us": r.blocked_us,
            "packed_us": r.packed_us,
            "speedup_blocked_vs_naive": speedup_blocked,
            "speedup_packed_vs_naive": speedup_packed,
        }));
    }
    echo_repro::print_table(
        "GEMM backends (median us)",
        &["shape", "naive", "blocked", "packed", "packed-speedup"],
        &gemm_rows,
    );

    // ---- SIMD micro-kernel variants -----------------------------------
    // Single-banded on the word-LM gate shape, so the numbers isolate the
    // inner MR×NR kernel (scalar vs AVX2/NEON) from thread scaling.
    let (mk_name, mk_m, mk_k, mk_n) = shapes[0];
    let micro = bench_micro_kernels(mk_m, mk_k, mk_n, reps);
    let scalar_us = micro
        .iter()
        .find(|(k, _)| *k == MicroKernel::Scalar)
        .expect("scalar kernel is always available")
        .1;
    echo_repro::print_table(
        &format!("packed micro-kernels on {mk_name} (median us, 1 band)"),
        &["kernel", "us", "vs scalar"],
        &micro
            .iter()
            .map(|(k, us)| {
                vec![
                    k.name().to_string(),
                    format!("{us:.0}"),
                    format!("{:.2}x", scalar_us / us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let micro_json: Vec<_> = micro
        .iter()
        .map(|(k, us)| {
            json!({
                "kernel": k.name(),
                "us": us,
                "speedup_vs_scalar": scalar_us / us,
            })
        })
        .collect();
    let best_simd = micro
        .iter()
        .filter(|(k, _)| *k != MicroKernel::Scalar)
        .map(|&(k, us)| (k, scalar_us / us))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));

    // ---- Thread-count sweep (--threads) -------------------------------
    let mut threads_json = serde_json::Value::Null;
    let mut threads_rows: Vec<ThreadsRow> = Vec::new();
    if threads_mode {
        threads_rows = threads_sweep(quick);
        for row in &threads_rows[1..] {
            assert_eq!(
                row.loss_bits, threads_rows[0].loss_bits,
                "planned word_lm losses diverged at {} threads — wavefront numerics bug",
                row.threads
            );
        }
        echo_repro::print_table(
            "planned word_lm step vs worker-pool size (mean ns)",
            &["threads", "ns/step", "vs 1 thread"],
            &threads_rows
                .iter()
                .map(|r| {
                    vec![
                        r.threads.to_string(),
                        r.ns_per_step.to_string(),
                        format!(
                            "{:.2}x",
                            threads_rows[0].ns_per_step as f64 / r.ns_per_step as f64
                        ),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        threads_json = json!(threads_rows
            .iter()
            .map(|r| {
                json!({
                    "threads": r.threads,
                    "ns_per_step": r.ns_per_step,
                    "speedup_vs_1t": threads_rows[0].ns_per_step as f64 / r.ns_per_step as f64,
                    "loss_bits": r.loss_bits,
                })
            })
            .collect::<Vec<_>>());
    }

    // ---- Bit-exactness re-checks --------------------------------------
    let bands_ok = check_band_bitexactness(64, 512, 2048);
    assert!(bands_ok, "packed bands {{1,2,4,8}} diverged — numerics bug");

    // ---- End-to-end train steps ---------------------------------------
    let (lm_naive_ms, lm_naive_loss) =
        word_lm_steps(MatmulPolicy::Fixed(MatmulBackend::Naive), steps);
    let (lm_auto_ms, lm_auto_loss) = word_lm_steps(MatmulPolicy::Auto, steps);
    assert_eq!(
        lm_naive_loss, lm_auto_loss,
        "word_lm losses diverged across matmul policies — numerics bug"
    );
    let (nmt_naive_ms, nmt_naive_loss) =
        nmt_steps(MatmulPolicy::Fixed(MatmulBackend::Naive), steps);
    let (nmt_auto_ms, nmt_auto_loss) = nmt_steps(MatmulPolicy::Auto, steps);
    assert_eq!(
        nmt_naive_loss, nmt_auto_loss,
        "nmt losses diverged across matmul policies — numerics bug"
    );
    set_matmul_policy(MatmulPolicy::Auto);

    let lm_speedup = mean(&lm_naive_ms) / mean(&lm_auto_ms);
    let nmt_speedup = mean(&nmt_naive_ms) / mean(&nmt_auto_ms);
    echo_repro::print_table(
        "end-to-end train step (mean ms)",
        &["model", "naive policy", "auto policy", "speedup"],
        &[
            vec![
                "word_lm".into(),
                format!("{:.1}", mean(&lm_naive_ms)),
                format!("{:.1}", mean(&lm_auto_ms)),
                format!("{lm_speedup:.2}x"),
            ],
            vec![
                "nmt".into(),
                format!("{:.1}", mean(&nmt_naive_ms)),
                format!("{:.1}", mean(&nmt_auto_ms)),
                format!("{nmt_speedup:.2}x"),
            ],
        ],
    );

    // ---- Plan-driven vs legacy hot loop (--plan) ----------------------
    let mut plan_json = serde_json::Value::Null;
    if plan {
        let plan_steps = if quick { 5 } else { 12 };
        let lm_plan = plan_bench_word_lm(plan_steps);
        let nmt_plan = plan_bench_nmt(plan_steps);
        let (echo_peak, stash_all_peak) = planned_peaks_nmt();
        echo_repro::print_table(
            "plan-driven vs legacy train step (mean ms)",
            &["model", "legacy", "planned", "speedup"],
            &[
                vec![
                    "word_lm (unfused)".into(),
                    format!("{:.2}", mean(&lm_plan.legacy_ms)),
                    format!("{:.2}", mean(&lm_plan.planned_ms)),
                    format!("{:.2}x", lm_plan.speedup),
                ],
                vec![
                    "nmt".into(),
                    format!("{:.2}", mean(&nmt_plan.legacy_ms)),
                    format!("{:.2}", mean(&nmt_plan.planned_ms)),
                    format!("{:.2}x", nmt_plan.speedup),
                ],
            ],
        );
        println!(
            "planned peaks (NMT): echo {:.2} MiB vs stash-all {:.2} MiB",
            echo_peak as f64 / (1 << 20) as f64,
            stash_all_peak as f64 / (1 << 20) as f64,
        );
        plan_json = json!({
            "word_lm": {
                "legacy_ms": lm_plan.legacy_ms,
                "planned_ms": lm_plan.planned_ms,
                "speedup": lm_plan.speedup,
            },
            "nmt": {
                "legacy_ms": nmt_plan.legacy_ms,
                "planned_ms": nmt_plan.planned_ms,
                "speedup": nmt_plan.speedup,
            },
            "planned_peak_bytes": {
                "nmt_echo": echo_peak,
                "nmt_stash_all": stash_all_peak,
            },
        });
        if gate {
            assert!(
                lm_plan.speedup >= 1.2,
                "plan gate: plan-driven word_lm step is only {:.2}x legacy (need >= 1.2x)",
                lm_plan.speedup
            );
            assert!(
                echo_peak < stash_all_peak,
                "plan gate: echo planned peak {echo_peak} not below stash-all {stash_all_peak}"
            );
            println!(
                "plan gate passed: {:.2}x >= 1.2x on word_lm, echo peak {echo_peak} < stash-all {stash_all_peak}",
                lm_plan.speedup
            );
        }
    }

    // ---- Stash-set search vs O-shape heuristic (--search) -------------
    let mut search_json = serde_json::Value::Null;
    if search {
        let lm = WordLm::build(WordLmHyper::tiny(60, LstmBackend::CuDnn));
        let nmt = NmtModel::build(NmtHyper::tiny(100, 90));
        let (gru_graph, gru_bindings, gru_params, gru_loss) = gru_chain_case();
        let rows = [
            search_peaks(
                "word_lm",
                &lm.graph,
                &lm.symbolic_bindings(8),
                &lm.param_shapes(),
                &[lm.loss, lm.logits],
            ),
            search_peaks(
                "nmt",
                &nmt.graph,
                &nmt.symbolic_bindings(8),
                &nmt.param_shapes(),
                &[nmt.loss, nmt.logits],
            ),
            search_peaks(
                "gru_chain",
                &gru_graph,
                &gru_bindings,
                &gru_params,
                &[gru_loss],
            ),
        ];
        echo_repro::print_table(
            "stash-set search vs heuristic (planned peak bytes)",
            &[
                "model",
                "stash-all",
                "heuristic",
                "searched",
                "candidates",
                "replay GFLOP",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.to_string(),
                        r.report.stash_all_peak_bytes.to_string(),
                        r.report.heuristic_peak_bytes.to_string(),
                        r.report.searched_peak_bytes.to_string(),
                        r.report.candidates_explored.to_string(),
                        format!("{:.4}", r.report.recompute_flops as f64 / 1e9),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let step_steps = if quick { 5 } else { 12 };
        let bench = search_bench_nmt(step_steps);
        println!(
            "nmt step time: heuristic {:.2} ms vs searched {:.2} ms ({:.2}x), replays/step {:.1} -> {:.1}",
            mean(&bench.heuristic_ms),
            mean(&bench.searched_ms),
            bench.ratio,
            bench.heuristic_replays,
            bench.searched_replays,
        );
        search_json = json!({
            "flop_budget": 1.0,
            "models": rows.iter().map(|r| json!({
                "name": r.name,
                "stash_all_peak_bytes": r.report.stash_all_peak_bytes,
                "heuristic_peak_bytes": r.report.heuristic_peak_bytes,
                "searched_peak_bytes": r.report.searched_peak_bytes,
                "candidates_explored": r.report.candidates_explored,
                "recompute_flops": r.report.recompute_flops,
                "step_flops": r.report.step_flops,
                "budget_flops": r.report.budget_flops,
                "capped": r.report.capped,
                "fell_back_to_heuristic": r.report.fell_back_to_heuristic,
            })).collect::<Vec<_>>(),
            "nmt_step": {
                "heuristic_ms": bench.heuristic_ms,
                "searched_ms": bench.searched_ms,
                "time_ratio_searched_vs_heuristic": bench.ratio,
                "heuristic_replays_per_step": bench.heuristic_replays,
                "searched_replays_per_step": bench.searched_replays,
            },
        });
        if gate {
            let nmt_row = &rows[1].report;
            assert!(
                nmt_row.searched_peak_bytes < nmt_row.heuristic_peak_bytes,
                "search gate: searched NMT peak {} not strictly below heuristic {}",
                nmt_row.searched_peak_bytes,
                nmt_row.heuristic_peak_bytes
            );
            assert!(
                bench.ratio <= 1.15,
                "search gate: searched NMT step is {:.2}x heuristic (need <= 1.15x)",
                bench.ratio
            );
            println!(
                "search gate passed: peak {} < {} at {:.2}x step time",
                nmt_row.searched_peak_bytes, nmt_row.heuristic_peak_bytes, bench.ratio
            );
        }
    }

    // ---- GIR fusion pipeline (--fusion) -------------------------------
    let mut fusion_json = serde_json::Value::Null;
    if fusion {
        let fb = fusion_bench();
        echo_repro::print_table(
            "GIR fusion on word_lm (Default backend)",
            &["metric", "unfused", "fused", "delta"],
            &[
                vec![
                    "forward launches".into(),
                    fb.unfused_fwd_launches.to_string(),
                    fb.fused_fwd_launches.to_string(),
                    format!(
                        "-{:.0}%",
                        100.0
                            * (1.0 - fb.fused_fwd_launches as f64 / fb.unfused_fwd_launches as f64)
                    ),
                ],
                vec![
                    "total launches".into(),
                    fb.unfused_launches.to_string(),
                    fb.fused_launches.to_string(),
                    format!(
                        "-{:.0}%",
                        100.0 * (1.0 - fb.fused_launches as f64 / fb.unfused_launches as f64)
                    ),
                ],
                vec![
                    "sim step (launch overhead) us".into(),
                    format!("{:.0}", fb.unfused_sim_ns as f64 / 1e3),
                    format!("{:.0}", fb.fused_sim_ns as f64 / 1e3),
                    format!(
                        "-{:.0}%",
                        100.0 * (1.0 - fb.fused_sim_ns as f64 / fb.unfused_sim_ns as f64)
                    ),
                ],
            ],
        );
        let passes_json: Vec<_> = fb
            .passes
            .iter()
            .map(|p| {
                json!({
                    "pass": p.pass,
                    "rewrites": p.rewrites,
                    "live_ops_before": p.live_ops_before,
                    "live_ops_after": p.live_ops_after,
                    "fwd_launches_before": p.fwd_launches_before,
                    "fwd_launches_after": p.fwd_launches_after,
                    "fwd_flops_before": p.fwd_flops_before,
                    "fwd_flops_after": p.fwd_flops_after,
                    "live_bytes_before": p.live_bytes_before,
                    "live_bytes_after": p.live_bytes_after,
                    "wall_us": p.wall_us,
                    "bit_exact": p.bit_exact,
                    "equivalence_ok": p.equivalence_ok,
                })
            })
            .collect();
        fusion_json = json!({
            "model": "word_lm_default",
            "forward_launches": {
                "unfused": fb.unfused_fwd_launches,
                "fused": fb.fused_fwd_launches,
            },
            "total_launches": {
                "unfused": fb.unfused_launches,
                "fused": fb.fused_launches,
            },
            "device_sim_step_ns": {
                "unfused": fb.unfused_sim_ns,
                "fused": fb.fused_sim_ns,
                "launch_overhead_delta_ns":
                    fb.unfused_sim_ns.saturating_sub(fb.fused_sim_ns),
            },
            "loss_bits_identical": true,
            "passes": passes_json.clone(),
        });
        if gate {
            assert!(
                fb.fused_fwd_launches < fb.unfused_fwd_launches,
                "fusion gate: fused word_lm forward launch table ({}) not strictly \
                 below unfused ({})",
                fb.fused_fwd_launches,
                fb.unfused_fwd_launches
            );
            println!(
                "fusion gate passed: {} < {} forward launches",
                fb.fused_fwd_launches, fb.unfused_fwd_launches
            );
        }
        // The per-pass report is its own artifact so CI can surface what
        // each pipeline stage did without digging through the bench blob.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("repo root");
        let path = root.join("REPORT_passes.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(
                &json!({ "harness": "bench_kernels --fusion", "passes": passes_json }),
            )
            .expect("json"),
        )
        .expect("write REPORT_passes.json");
        println!("wrote {}", path.display());
    }

    // ---- Pipelined stage parallelism (--pipeline) ---------------------
    let mut pipeline_json = serde_json::Value::Null;
    if pipeline {
        let pb = pipeline_bench(quick);
        let rows: Vec<Vec<String>> = pb
            .points
            .iter()
            .map(|p| {
                vec![
                    p.stages.to_string(),
                    format!("{:.3}", p.critical_ns as f64 * 1e-6),
                    format!("{:.3}", p.projection.pipelined_ns as f64 * 1e-6),
                    format!("{:.0}%", p.projection.efficiency * 100.0),
                    format!("{:.3}", p.projection.bubble_ns as f64 * 1e-6),
                ]
            })
            .collect();
        echo_repro::print_table(
            &format!(
                "Pipelined word-LM (8 layers, serial step {:.3} ms)",
                pb.serial_ns as f64 * 1e-6
            ),
            &[
                "stages",
                "busiest ms",
                "proj step ms",
                "proj eff",
                "bubble ms",
            ],
            &rows,
        );
        let points_json: Vec<_> = pb
            .points
            .iter()
            .map(|p| {
                json!({
                    "stages": p.stages,
                    "busy_ns": p.busy_ns,
                    "critical_ns": p.critical_ns,
                    "projected_step_ns": p.projection.pipelined_ns,
                    "efficiency": p.projection.efficiency,
                    "bubble_ns": p.projection.bubble_ns,
                })
            })
            .collect();
        pipeline_json = json!({
            "model": "word_lm_default_8_layers",
            "serial_step_ns": pb.serial_ns,
            "loss_bits_identical_across_stage_counts": true,
            "loss_bits": pb.loss_bits,
            "points": points_json,
        });
        if gate {
            let p2 = &pb.points[0];
            assert_eq!(p2.stages, 2, "first pipeline point is P=2");
            assert!(
                p2.projection.pipelined_ns < pb.serial_ns,
                "pipeline gate: projected P=2 step {:.3} ms (bubble + cut transfers \
                 included) not below serial {:.3} ms",
                p2.projection.pipelined_ns as f64 * 1e-6,
                pb.serial_ns as f64 * 1e-6
            );
            println!(
                "pipeline gate passed: P=2 projected {:.3} ms < serial {:.3} ms",
                p2.projection.pipelined_ns as f64 * 1e-6,
                pb.serial_ns as f64 * 1e-6
            );
        }
    }

    let autotune = echo_tensor::policy::autotune_outcome().map(|o| {
        json!({
            "chosen": o.chosen.name(),
            "blocked_ns": o.blocked_ns,
            "packed_ns": o.packed_ns,
            "shape": [o.shape.0, o.shape.1, o.shape.2],
            "measured": o.measured,
            "kernel": o.kernel.name(),
            "tiles_kc_mc": [o.tiles.0, o.tiles.1],
            "tiles_measured": o.tiles_measured,
        })
    });

    let out = json!({
        "harness": "bench_kernels",
        "quick": quick,
        "pool_threads": threads,
        "active_micro_kernel": echo_tensor::active_micro_kernel().name(),
        "autotune": autotune,
        "gemm": gemm_json,
        "micro_kernels": micro_json,
        "threads": threads_json,
        "bitexact": {
            "packed_bands_identical": bands_ok,
            "word_lm_loss_bits_identical_across_policies": true,
            "nmt_loss_bits_identical_across_policies": true,
        },
        "plan": plan_json,
        "search": search_json,
        "fusion": fusion_json,
        "pipeline": pipeline_json,
        "train_steps": {
            "word_lm": {
                "naive_ms": lm_naive_ms,
                "auto_ms": lm_auto_ms,
                "speedup": lm_speedup,
                "loss_bits": lm_auto_loss,
            },
            "nmt": {
                "naive_ms": nmt_naive_ms,
                "auto_ms": nmt_auto_ms,
                "speedup": nmt_speedup,
                "loss_bits": nmt_auto_loss,
            },
        },
    });

    // BENCH_kernels.json lives at the repo root (not $ECHO_RESULTS_DIR):
    // it is the cross-PR perf baseline, versioned alongside the code.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let path = root.join("BENCH_kernels.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("json"))
        .expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    if gate {
        let speedup = packed_speedups[0];
        assert!(
            speedup >= 2.0,
            "perf gate: packed kernel is only {speedup:.2}x naive on {} (need >= 2x)",
            shapes[0].0
        );
        println!("perf gate passed: {speedup:.2}x >= 2x on {}", shapes[0].0);

        match best_simd {
            Some((kernel, simd_speedup)) => {
                assert!(
                    simd_speedup >= 1.5,
                    "simd gate: {} kernel is only {simd_speedup:.2}x scalar on {mk_name} (need >= 1.5x)",
                    kernel.name()
                );
                println!(
                    "simd gate passed: {} {simd_speedup:.2}x >= 1.5x scalar on {mk_name}",
                    kernel.name()
                );
            }
            None => println!("simd gate skipped: host has neither AVX2 nor NEON"),
        }

        if threads_mode {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if cores < 4 {
                println!("threads gate skipped: host has {cores} core(s) (need >= 4)");
            } else {
                let one = threads_rows[0].ns_per_step;
                let four = threads_rows
                    .iter()
                    .find(|r| r.threads == 4)
                    .expect("4-thread row")
                    .ns_per_step;
                assert!(
                    four < one,
                    "threads gate: 4-thread planned step ({four} ns) not faster than 1-thread ({one} ns)"
                );
                println!(
                    "threads gate passed: 4 threads {four} ns < 1 thread {one} ns ({:.2}x)",
                    one as f64 / four as f64
                );
            }
        }
    }
}
