//! Serving benchmark: closed-loop batch scaling, then an open-loop load
//! generator gating continuous batching against the wave baseline.
//!
//! **Closed-loop** (the PR-4 section, unchanged contract): sixteen
//! concurrent sessions stream single-step requests wave by wave at
//! `max_batch` ∈ {1, 2, 4, 8}, reporting per-request p50/p95/p99 latency
//! and tokens/s per setting, gated on B=8 scaling ≥ 3× single-request.
//!
//! **Open-loop**: a seeded arrival schedule — bursty Poisson arrivals
//! (exponential inter-arrivals, rate modulated by a burst phase) of
//! generation requests with heavy-tailed (bounded-Pareto) lengths — is
//! replayed *identically* against a wave engine and a continuous engine
//! at a fixed offered load calibrated above the wave engine's measured
//! capacity. Arrivals do not wait for the system (that is what "open
//! loop" means): a rejected request is lost goodput, not a retry.
//! Reported per mode: offered vs achieved tokens/s (goodput),
//! completion/rejection counts, p50/p95/p99 request latency, and the
//! continuous scheduler's occupancy and lane-churn rate. The gate
//! requires continuous goodput strictly above wave goodput and
//! continuous p99 at or below wave p99, at the same offered load.
//!
//! Flags:
//!
//! * `--quick` — smaller schedule / fewer waves (the CI configuration);
//! * `--gate`  — exit non-zero unless every gate above holds, and unless
//!   every configuration reproduced the reference logits bit-for-bit.
//!
//! Like `bench_kernels`, every run re-checks numerics: closed-loop
//! argmax streams must agree across batch sizes, and open-loop argmax
//! streams must agree across *schedulers* for every session both modes
//! completed — batching, lane churn and scheduler choice are not allowed
//! to change a single bit of any session's logits.
//!
//! Writes `BENCH_serve.json` at the repo root so every future PR can be
//! compared against this baseline.

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{
    BatchMode, Engine, GenRequest, Popped, ServeConfig, ServeError, StreamEvent, StreamTicket,
    Ticket,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const SEED: u64 = 23;
const SESSIONS: u64 = 16;
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// A deliberately *launch-bound* decode configuration: the unfused
/// backend with several narrow layers, so a step's cost is dominated by
/// its swarm of small kernel launches (the paper's Figure 7a regime)
/// rather than per-lane flops. That is exactly the regime where dynamic
/// batching pays: adding lanes to a step is nearly free, so throughput
/// scales with the batch size.
fn hyper() -> WordLmHyper {
    WordLmHyper {
        vocab: 50,
        embed: 4,
        hidden: 4,
        layers: 8,
        seq_len: 1,
        backend: LstmBackend::Default,
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

// ───────────────────────── closed-loop section ─────────────────────────

struct RunResult {
    batch: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    tokens_per_s: f64,
    mean_batch: f64,
    pool_reuse_hits: u64,
    /// Per-session greedy argmax streams — the numerics fingerprint.
    argmax_streams: Vec<Vec<u32>>,
}

/// One closed-loop run against a wave engine capped at `max_batch`. With
/// `pipelined`, every session submits one token per wave before any reply
/// is awaited (the concurrent-clients load batching feeds on); without
/// it, exactly one request is in flight at a time — the request-at-a-time
/// server that is the gate's baseline. Latency is measured per request
/// from submit to reply.
fn run(max_batch: usize, waves: usize, pipelined: bool) -> RunResult {
    let mut engine = Engine::start(
        hyper(),
        SEED,
        ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(5),
            queue_capacity: 256,
            workers: 1,
            session_capacity: 64,
            mode: BatchMode::Wave,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");

    let vocab = hyper().vocab as u64;
    // Greedy decoding: each session feeds back its own argmax.
    let mut next_token: Vec<u32> = (0..SESSIONS).map(|s| (s * 17 % vocab) as u32).collect();
    let mut argmax_streams: Vec<Vec<u32>> = vec![Vec::new(); SESSIONS as usize];
    let mut latencies_us: Vec<f64> = Vec::with_capacity(waves * SESSIONS as usize);

    let submit = |engine: &Engine, session: u64, token: u32| loop {
        match engine.submit(session, token) {
            Ok(t) => break t,
            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("submit failed: {e}"),
        }
    };

    let wall_start = Instant::now();
    for _ in 0..waves {
        if pipelined {
            let mut tickets: Vec<(u64, Instant, Ticket)> = Vec::new();
            for session in 0..SESSIONS {
                let token = next_token[session as usize];
                let submitted = Instant::now();
                tickets.push((session, submitted, submit(&engine, session, token)));
            }
            for (session, submitted, ticket) in tickets {
                let out = ticket.wait().expect("decode step");
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
                let token = out.argmax();
                next_token[session as usize] = token;
                argmax_streams[session as usize].push(token);
            }
        } else {
            for session in 0..SESSIONS {
                let token = next_token[session as usize];
                let submitted = Instant::now();
                let out = submit(&engine, session, token).wait().expect("decode step");
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
                let token = out.argmax();
                next_token[session as usize] = token;
                argmax_streams[session as usize].push(token);
            }
        }
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    let total_tokens = (waves * SESSIONS as usize) as f64;

    engine.shutdown();
    let stats = engine.stats();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    RunResult {
        batch: max_batch,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        tokens_per_s: total_tokens / wall_s,
        mean_batch: stats.mean_batch(),
        pool_reuse_hits: stats.pool_reuse_hits,
        argmax_streams,
    }
}

/// Best-of-`repeats` over every configuration, with the repeats
/// *interleaved* (round-robin across configurations) so a slow stretch —
/// frequency scaling, a background task — degrades the baseline and the
/// batched runs alike instead of skewing their ratio. Every repeat of a
/// configuration must decode identical argmax streams (determinism is
/// not negotiable); the repeat with the highest throughput is kept,
/// which measures what each configuration *can* do, symmetrically.
fn run_best(configs: &[(usize, bool)], waves: usize, repeats: usize) -> Vec<RunResult> {
    let mut best: Vec<Option<RunResult>> = configs.iter().map(|_| None).collect();
    for _ in 0..repeats {
        for (slot, &(max_batch, pipelined)) in configs.iter().enumerate() {
            let r = run(max_batch, waves, pipelined);
            if let Some(b) = &best[slot] {
                assert_eq!(
                    r.argmax_streams, b.argmax_streams,
                    "max_batch {max_batch}: repeats decoded different streams"
                );
            }
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.tokens_per_s > b.tokens_per_s)
            {
                best[slot] = Some(r);
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("one repeat ran"))
        .collect()
}

// ────────────────────────── open-loop section ──────────────────────────

/// One scheduled request of the open-loop workload.
struct Arrival {
    /// Offset from the run's start at which this request arrives.
    at: Duration,
    session: u64,
    prompt: Vec<u32>,
    max_new: usize,
}

/// A seeded bursty-Poisson / heavy-tailed arrival schedule. Inter-arrival
/// gaps are exponential with the instantaneous rate swinging between
/// `0.4×` and `2.2×` the mean through a burst phase (two full bursts over
/// the schedule), and generation lengths follow a bounded Pareto
/// (`α = 1.4`) — most requests are short, a heavy tail is not. The same
/// schedule is replayed verbatim against every engine under test.
fn build_schedule(requests: usize, offered_tokens_per_s: f64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = hyper().vocab as u32;
    const LEN_MIN: f64 = 4.0;
    const LEN_MAX: f64 = 48.0;
    const ALPHA: f64 = 1.4;

    // Draw lengths first so the arrival rate can be set in *requests*/s
    // from the schedule's actual mean length.
    let lengths: Vec<usize> = (0..requests)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Bounded Pareto via inverse transform.
            let h = (LEN_MIN / LEN_MAX).powf(ALPHA);
            let x = LEN_MIN / (1.0 - u * (1.0 - h)).powf(1.0 / ALPHA);
            x.floor().clamp(LEN_MIN, LEN_MAX) as usize
        })
        .collect();
    let mean_len = lengths.iter().sum::<usize>() as f64 / requests as f64;
    let mean_rate = offered_tokens_per_s / mean_len; // requests per second

    let mut at = 0.0f64;
    let mut arrivals = Vec::with_capacity(requests);
    for (i, &len) in lengths.iter().enumerate() {
        // Burst modulation: rate swings through two full sine periods
        // over the schedule, clamped well away from zero.
        let phase = i as f64 / requests as f64 * 2.0 * std::f64::consts::TAU;
        let rate = mean_rate * (1.3 + 0.9 * phase.sin()).max(0.4);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        at += -u.ln() / rate; // exponential inter-arrival
        let prompt_len = rng.gen_range(1usize..=3);
        let prompt: Vec<u32> = (0..prompt_len).map(|_| rng.gen_range(0..vocab)).collect();
        arrivals.push(Arrival {
            at: Duration::from_secs_f64(at),
            // One fresh session per request: both schedulers start it
            // from zero state, so cross-mode streams are comparable.
            session: i as u64,
            prompt,
            max_new: len,
        });
    }
    arrivals
}

struct OpenLoopResult {
    mode: &'static str,
    offered_tokens_per_s: f64,
    goodput_tokens_per_s: f64,
    completed: u64,
    rejected: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    occupancy: f64,
    churn_per_step: f64,
    mean_batch: f64,
    /// argmax stream per completed session — the cross-mode fingerprint.
    streams: HashMap<u64, Vec<u32>>,
}

/// Replays `schedule` against a fresh engine in `mode`, open loop: one
/// driver thread submits each arrival at its scheduled time (never
/// earlier, never waiting for capacity) and polls all live streams
/// non-blockingly in between. Goodput counts only tokens that actually
/// reached a client.
fn run_open_loop(
    mode: BatchMode,
    mode_name: &'static str,
    schedule: &[Arrival],
    offered_tokens_per_s: f64,
) -> OpenLoopResult {
    let mut engine = Engine::start(
        hyper(),
        SEED,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 1,
            session_capacity: 64,
            mode,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");

    let mut live: Vec<(u64, StreamTicket)> = Vec::new();
    let mut streams: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut emitted_tokens = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut next_arrival = 0usize;

    let start = Instant::now();
    loop {
        // Submit every arrival whose time has come. Open loop: the
        // schedule does not slow down for the engine, and a rejection
        // (queue full) is lost goodput, not a retry.
        while next_arrival < schedule.len() && start.elapsed() >= schedule[next_arrival].at {
            let a = &schedule[next_arrival];
            next_arrival += 1;
            match engine.generate(GenRequest::new(a.session, a.prompt.clone(), a.max_new)) {
                Ok(ticket) => live.push((a.session, ticket)),
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("generate failed: {e}"),
            }
        }

        // Drain whatever every live stream has ready, without blocking:
        // one thread drives thousands of concurrent streams.
        let mut made_progress = false;
        let mut i = 0;
        while i < live.len() {
            let mut finished = false;
            loop {
                match live[i].1.poll() {
                    Popped::Item(StreamEvent::Token { token, .. }) => {
                        made_progress = true;
                        emitted_tokens += 1;
                        streams.entry(live[i].0).or_default().push(token);
                    }
                    Popped::Item(StreamEvent::Done { latency, .. }) => {
                        made_progress = true;
                        completed += 1;
                        latencies_us.push(latency.as_secs_f64() * 1e6);
                        finished = true;
                        break;
                    }
                    Popped::Item(StreamEvent::Error(e)) => {
                        panic!("stream for session {} errored: {e}", live[i].0)
                    }
                    Popped::TimedOut => break, // momentarily idle
                    Popped::Closed => {
                        finished = true;
                        break;
                    }
                }
            }
            if finished {
                live.swap_remove(i);
            } else {
                i += 1;
            }
        }

        if next_arrival == schedule.len() && live.is_empty() {
            break;
        }
        if !made_progress {
            // Nothing ready: yield briefly instead of spinning hot.
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    engine.shutdown();
    let stats = engine.stats();
    assert_eq!(stats.rejected, rejected, "engine agrees on rejections");
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    OpenLoopResult {
        mode: mode_name,
        offered_tokens_per_s,
        goodput_tokens_per_s: emitted_tokens as f64 / wall_s,
        completed,
        rejected,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        occupancy: stats.occupancy(),
        churn_per_step: stats.churn_per_step(),
        mean_batch: stats.mean_batch(),
        streams,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let waves = if quick { 150 } else { 500 };
    let open_requests = if quick { 250 } else { 800 };
    let repeats = 3;

    // ── Closed loop: wave-mode batch scaling (the PR-4 gate) ──────────
    // The gate baseline: a request-at-a-time server (no batching, one
    // request in flight), then the pipelined configurations batching
    // feeds on.
    let configs: Vec<(usize, bool)> = std::iter::once((1, false))
        .chain(BATCH_SIZES.iter().map(|&b| (b, true)))
        .collect();
    let mut all = run_best(&configs, waves, repeats);
    let single = all.remove(0);
    let results = all;

    // Numerics: all configurations must decode identical streams —
    // batching is bit-invisible, so greedy argmax feedback cannot drift.
    let bitexact = results
        .iter()
        .chain(std::iter::once(&single))
        .all(|r| r.argmax_streams == results[0].argmax_streams);
    assert!(
        bitexact,
        "argmax streams diverged across batch sizes — batching changed bits"
    );

    let rows: Vec<Vec<String>> = std::iter::once((&single, "B=1 single-req"))
        .chain(results.iter().map(|r| (r, "")))
        .map(|(r, tag)| {
            vec![
                if tag.is_empty() {
                    format!("B={}", r.batch)
                } else {
                    tag.to_string()
                },
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p95_us),
                format!("{:.0}", r.p99_us),
                format!("{:.0}", r.tokens_per_s),
                format!("{:.2}", r.mean_batch),
            ]
        })
        .collect();
    echo_repro::print_table(
        "closed-loop serving latency/throughput (wave scheduler)",
        &[
            "max_batch",
            "p50 us",
            "p95 us",
            "p99 us",
            "tokens/s",
            "mean batch",
        ],
        &rows,
    );

    let tput_single = single.tokens_per_s;
    let tput_8 = results[BATCH_SIZES.len() - 1].tokens_per_s;
    let scaling = tput_8 / tput_single;
    println!("throughput scaling B=8 vs single-request: {scaling:.2}x");

    // ── Open loop: continuous vs wave at fixed offered load ───────────
    // The offered load is calibrated *above* the wave engine's measured
    // closed-loop capacity at B=8, so the schedule genuinely stresses
    // both schedulers: the wave engine must shed or queue, while the
    // continuous engine's higher service rate keeps the backlog bounded.
    let offered_tokens_per_s = tput_8 * 1.25;
    let schedule = build_schedule(open_requests, offered_tokens_per_s, SEED ^ 0x5eed);
    let offered_tokens: usize = schedule.iter().map(|a| a.max_new).sum();
    let horizon = schedule.last().expect("non-empty schedule").at;

    let wave = run_open_loop(BatchMode::Wave, "wave", &schedule, offered_tokens_per_s);
    let continuous = run_open_loop(
        BatchMode::Continuous,
        "continuous",
        &schedule,
        offered_tokens_per_s,
    );

    // Cross-scheduler numerics: every session completed by both modes
    // must have decoded the identical argmax stream — the scheduler is
    // not allowed to change bits any more than the batch size is.
    let mut cross_checked = 0usize;
    for (session, wave_stream) in &wave.streams {
        if let Some(cont_stream) = continuous.streams.get(session) {
            assert_eq!(
                wave_stream, cont_stream,
                "session {session}: wave and continuous decoded different streams"
            );
            cross_checked += 1;
        }
    }
    assert!(
        cross_checked > 0,
        "no session completed under both schedulers — nothing was cross-checked"
    );

    let open_rows: Vec<Vec<String>> = [&wave, &continuous]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.0}", r.offered_tokens_per_s),
                format!("{:.0}", r.goodput_tokens_per_s),
                format!("{}", r.completed),
                format!("{}", r.rejected),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                format!("{:.2}", r.occupancy),
                format!("{:.2}", r.churn_per_step),
            ]
        })
        .collect();
    echo_repro::print_table(
        "open-loop offered load vs goodput (same schedule, both schedulers)",
        &[
            "scheduler",
            "offered tok/s",
            "goodput tok/s",
            "done",
            "shed",
            "p50 us",
            "p99 us",
            "occupancy",
            "churn/step",
        ],
        &open_rows,
    );
    let goodput_ratio = continuous.goodput_tokens_per_s / wave.goodput_tokens_per_s;
    println!(
        "continuous vs wave goodput at {:.0} offered tokens/s: {goodput_ratio:.2}x \
         (cross-checked {cross_checked} sessions bit-exact)",
        offered_tokens_per_s
    );

    let open_json = |r: &OpenLoopResult| {
        json!({
            "mode": r.mode,
            "goodput_tokens_per_s": r.goodput_tokens_per_s,
            "completed": r.completed,
            "rejected_requests": r.rejected,
            "p50_us": r.p50_us,
            "p95_us": r.p95_us,
            "p99_us": r.p99_us,
            "occupancy": r.occupancy,
            "churn_per_step": r.churn_per_step,
            "mean_batch": r.mean_batch,
        })
    };
    let out = json!({
        "harness": "bench_serve",
        "quick": quick,
        "model": {
            "vocab": hyper().vocab,
            "embed": hyper().embed,
            "hidden": hyper().hidden,
            "layers": hyper().layers,
        },
        "sessions": SESSIONS,
        "waves": waves,
        "bitexact_across_batch_sizes": bitexact,
        "throughput_scaling_b8_vs_single_request": scaling,
        "single_request": json!({
            "p50_us": single.p50_us,
            "p95_us": single.p95_us,
            "p99_us": single.p99_us,
            "tokens_per_s": single.tokens_per_s,
        }),
        "results": results.iter().map(|r| json!({
            "max_batch": r.batch,
            "p50_us": r.p50_us,
            "p95_us": r.p95_us,
            "p99_us": r.p99_us,
            "tokens_per_s": r.tokens_per_s,
            "mean_batch": r.mean_batch,
            "pool_reuse_hits": r.pool_reuse_hits,
        })).collect::<Vec<_>>(),
        "open_loop": json!({
            "requests": open_requests,
            "offered_tokens": offered_tokens,
            "offered_tokens_per_s": offered_tokens_per_s,
            "schedule_horizon_s": horizon.as_secs_f64(),
            "bitexact_across_schedulers": true,
            "cross_checked_sessions": cross_checked,
            "continuous_vs_wave_goodput": goodput_ratio,
            "wave": open_json(&wave),
            "continuous": open_json(&continuous),
        }),
    });

    // BENCH_serve.json lives at the repo root (not $ECHO_RESULTS_DIR):
    // it is the cross-PR serving baseline, versioned alongside the code.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("json"))
        .expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    if gate {
        assert!(
            scaling >= 3.0,
            "serve gate: B=8 throughput is only {scaling:.2}x single-request (need >= 3x)"
        );
        assert!(
            continuous.goodput_tokens_per_s > wave.goodput_tokens_per_s,
            "serve gate: continuous goodput {:.0} tok/s must beat wave {:.0} tok/s \
             at the same offered load",
            continuous.goodput_tokens_per_s,
            wave.goodput_tokens_per_s
        );
        assert!(
            continuous.p99_us <= wave.p99_us,
            "serve gate: continuous p99 {:.0}us must not exceed wave p99 {:.0}us",
            continuous.p99_us,
            wave.p99_us
        );
        println!(
            "serve gate passed: {scaling:.2}x >= 3x closed-loop, continuous beats wave \
             {goodput_ratio:.2}x open-loop, bit-exact everywhere"
        );
    }
}
