//! Serving benchmark: latency percentiles and throughput vs batch size.
//!
//! Drives the `echo-serve` engine with a fixed word-LM workload — eight
//! concurrent sessions, each streaming tokens wave by wave — at
//! `max_batch` ∈ {1, 2, 4, 8}, and reports per-request p50/p95/p99
//! latency plus end-to-end tokens/s for each setting. Writes
//! `BENCH_serve.json` at the repo root so every future PR can be compared
//! against this baseline.
//!
//! Flags:
//!
//! * `--quick` — fewer waves (the CI configuration);
//! * `--gate`  — exit non-zero unless B=8 throughput is at least 3× the
//!   single-request (B=1) throughput, and unless every batched
//!   configuration reproduced the B=1 logits bit-for-bit.
//!
//! Like `bench_kernels`, every run re-checks numerics: the argmax token
//! streams of all four configurations must be identical, because batching
//! is not allowed to change a single bit of any session's logits.

use echo_models::WordLmHyper;
use echo_rnn::LstmBackend;
use echo_serve::{Engine, ServeConfig, ServeError, Ticket};
use serde_json::json;
use std::time::{Duration, Instant};

const SEED: u64 = 23;
const SESSIONS: u64 = 16;
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// A deliberately *launch-bound* decode configuration: the unfused
/// backend with several narrow layers, so a step's cost is dominated by
/// its swarm of small kernel launches (the paper's Figure 7a regime)
/// rather than per-lane flops. That is exactly the regime where dynamic
/// batching pays: adding lanes to a step is nearly free, so throughput
/// scales with the batch size.
fn hyper() -> WordLmHyper {
    WordLmHyper {
        vocab: 50,
        embed: 4,
        hidden: 4,
        layers: 8,
        seq_len: 1,
        backend: LstmBackend::Default,
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

struct RunResult {
    batch: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    tokens_per_s: f64,
    mean_batch: f64,
    pool_reuse_hits: u64,
    /// Per-session greedy argmax streams — the numerics fingerprint.
    argmax_streams: Vec<Vec<u32>>,
}

/// One benchmark run against an engine capped at `max_batch`. With
/// `pipelined`, every session submits one token per wave before any reply
/// is awaited (the concurrent-clients load batching feeds on); without
/// it, exactly one request is in flight at a time — the request-at-a-time
/// server that is the gate's baseline. Latency is measured per request
/// from submit to reply.
fn run(max_batch: usize, waves: usize, pipelined: bool) -> RunResult {
    let mut engine = Engine::start(
        hyper(),
        SEED,
        ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(5),
            queue_capacity: 256,
            workers: 1,
            session_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");

    let vocab = hyper().vocab as u64;
    // Greedy decoding: each session feeds back its own argmax.
    let mut next_token: Vec<u32> = (0..SESSIONS).map(|s| (s * 17 % vocab) as u32).collect();
    let mut argmax_streams: Vec<Vec<u32>> = vec![Vec::new(); SESSIONS as usize];
    let mut latencies_us: Vec<f64> = Vec::with_capacity(waves * SESSIONS as usize);

    let submit = |engine: &Engine, session: u64, token: u32| loop {
        match engine.submit(session, token) {
            Ok(t) => break t,
            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("submit failed: {e}"),
        }
    };

    let wall_start = Instant::now();
    for _ in 0..waves {
        if pipelined {
            let mut tickets: Vec<(u64, Instant, Ticket)> = Vec::new();
            for session in 0..SESSIONS {
                let token = next_token[session as usize];
                let submitted = Instant::now();
                tickets.push((session, submitted, submit(&engine, session, token)));
            }
            for (session, submitted, ticket) in tickets {
                let out = ticket.wait().expect("decode step");
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
                let token = out.argmax();
                next_token[session as usize] = token;
                argmax_streams[session as usize].push(token);
            }
        } else {
            for session in 0..SESSIONS {
                let token = next_token[session as usize];
                let submitted = Instant::now();
                let out = submit(&engine, session, token).wait().expect("decode step");
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
                let token = out.argmax();
                next_token[session as usize] = token;
                argmax_streams[session as usize].push(token);
            }
        }
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    let total_tokens = (waves * SESSIONS as usize) as f64;

    engine.shutdown();
    let stats = engine.stats();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    RunResult {
        batch: max_batch,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        tokens_per_s: total_tokens / wall_s,
        mean_batch: stats.mean_batch(),
        pool_reuse_hits: stats.pool_reuse_hits,
        argmax_streams,
    }
}

/// Best-of-`repeats` over every configuration, with the repeats
/// *interleaved* (round-robin across configurations) so a slow stretch —
/// frequency scaling, a background task — degrades the baseline and the
/// batched runs alike instead of skewing their ratio. Every repeat of a
/// configuration must decode identical argmax streams (determinism is
/// not negotiable); the repeat with the highest throughput is kept,
/// which measures what each configuration *can* do, symmetrically.
fn run_best(configs: &[(usize, bool)], waves: usize, repeats: usize) -> Vec<RunResult> {
    let mut best: Vec<Option<RunResult>> = configs.iter().map(|_| None).collect();
    for _ in 0..repeats {
        for (slot, &(max_batch, pipelined)) in configs.iter().enumerate() {
            let r = run(max_batch, waves, pipelined);
            if let Some(b) = &best[slot] {
                assert_eq!(
                    r.argmax_streams, b.argmax_streams,
                    "max_batch {max_batch}: repeats decoded different streams"
                );
            }
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.tokens_per_s > b.tokens_per_s)
            {
                best[slot] = Some(r);
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("one repeat ran"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let waves = if quick { 150 } else { 500 };
    let repeats = 3;

    // The gate baseline: a request-at-a-time server (no batching, one
    // request in flight), then the pipelined configurations batching
    // feeds on.
    let configs: Vec<(usize, bool)> = std::iter::once((1, false))
        .chain(BATCH_SIZES.iter().map(|&b| (b, true)))
        .collect();
    let mut all = run_best(&configs, waves, repeats);
    let single = all.remove(0);
    let results = all;

    // Numerics: all configurations must decode identical streams —
    // batching is bit-invisible, so greedy argmax feedback cannot drift.
    let bitexact = results
        .iter()
        .chain(std::iter::once(&single))
        .all(|r| r.argmax_streams == results[0].argmax_streams);
    assert!(
        bitexact,
        "argmax streams diverged across batch sizes — batching changed bits"
    );

    let rows: Vec<Vec<String>> = std::iter::once((&single, "B=1 single-req"))
        .chain(results.iter().map(|r| (r, "")))
        .map(|(r, tag)| {
            vec![
                if tag.is_empty() {
                    format!("B={}", r.batch)
                } else {
                    tag.to_string()
                },
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p95_us),
                format!("{:.0}", r.p99_us),
                format!("{:.0}", r.tokens_per_s),
                format!("{:.2}", r.mean_batch),
            ]
        })
        .collect();
    echo_repro::print_table(
        "serving latency/throughput (word-LM decode)",
        &[
            "max_batch",
            "p50 us",
            "p95 us",
            "p99 us",
            "tokens/s",
            "mean batch",
        ],
        &rows,
    );

    let tput_single = single.tokens_per_s;
    let tput_8 = results[BATCH_SIZES.len() - 1].tokens_per_s;
    let scaling = tput_8 / tput_single;
    println!("throughput scaling B=8 vs single-request: {scaling:.2}x");

    let out = json!({
        "harness": "bench_serve",
        "quick": quick,
        "model": {
            "vocab": hyper().vocab,
            "embed": hyper().embed,
            "hidden": hyper().hidden,
            "layers": hyper().layers,
        },
        "sessions": SESSIONS,
        "waves": waves,
        "bitexact_across_batch_sizes": bitexact,
        "throughput_scaling_b8_vs_single_request": scaling,
        "single_request": json!({
            "p50_us": single.p50_us,
            "p95_us": single.p95_us,
            "p99_us": single.p99_us,
            "tokens_per_s": single.tokens_per_s,
        }),
        "results": results.iter().map(|r| json!({
            "max_batch": r.batch,
            "p50_us": r.p50_us,
            "p95_us": r.p95_us,
            "p99_us": r.p99_us,
            "tokens_per_s": r.tokens_per_s,
            "mean_batch": r.mean_batch,
            "pool_reuse_hits": r.pool_reuse_hits,
        })).collect::<Vec<_>>(),
    });

    // BENCH_serve.json lives at the repo root (not $ECHO_RESULTS_DIR):
    // it is the cross-PR serving baseline, versioned alongside the code.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("json"))
        .expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    if gate {
        assert!(
            scaling >= 3.0,
            "serve gate: B=8 throughput is only {scaling:.2}x single-request (need >= 3x)"
        );
        println!("serve gate passed: {scaling:.2}x >= 3x and bit-exact across batch sizes");
    }
}
